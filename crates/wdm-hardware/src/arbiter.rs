//! Round-robin arbitration for same-wavelength fairness (paper §III).
//!
//! "If there are more than one packets on this input wavelength, to ensure
//! fairness, a random selecting or a round-robin scheduling procedure should
//! be adopted as suggested in [7][8]" — the iSLIP-style rotating-priority
//! arbiter. One arbiter per input wavelength selects which *fiber*'s packet
//! takes a granted wavelength slot; the pointer advances past the grantee so
//! repeated contention is served in rotation.

use crate::register::BitRegister;

/// A bank of rotating-priority (round-robin) arbiters, one per input
/// wavelength, each arbitrating over `n` input fibers.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    pointers: Vec<usize>,
}

impl RoundRobinArbiter {
    /// A bank of `k` arbiters over `n` fibers, pointers at fiber 0.
    pub fn new(n: usize, k: usize) -> RoundRobinArbiter {
        RoundRobinArbiter { n, pointers: vec![0; k] }
    }

    /// Number of fibers arbitrated over.
    pub fn fibers(&self) -> usize {
        self.n
    }

    /// The current pointer of wavelength `w`'s arbiter.
    pub fn pointer(&self, w: usize) -> usize {
        self.pointers[w]
    }

    /// Grants one requester for wavelength `w`: the first set bit in
    /// `requesters` at or after the pointer, wrapping around. Advances the
    /// pointer one past the grantee (iSLIP update rule).
    ///
    /// Returns the granted fiber, or `None` if no bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or `requesters` is not `n` bits wide.
    pub fn grant(&mut self, w: usize, requesters: &BitRegister) -> Option<usize> {
        assert_eq!(requesters.width(), self.n, "requester register must be n bits");
        let ptr = self.pointers[w];
        let fiber = requesters.first_set_from(ptr).or_else(|| requesters.first_set())?;
        self.pointers[w] = (fiber + 1) % self.n;
        Some(fiber)
    }

    /// Resets every pointer to fiber 0.
    pub fn reset(&mut self) {
        self.pointers.iter_mut().for_each(|p| *p = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requesters(n: usize, bits: &[usize]) -> BitRegister {
        let mut r = BitRegister::new(n);
        for &b in bits {
            r.set(b);
        }
        r
    }

    #[test]
    fn rotates_among_persistent_requesters() {
        let mut arb = RoundRobinArbiter::new(4, 1);
        let reqs = requesters(4, &[0, 2, 3]);
        let grants: Vec<usize> = (0..6).map(|_| arb.grant(0, &reqs).unwrap()).collect();
        // Rotation: 0 → 2 → 3 → wrap 0 → 2 → 3.
        assert_eq!(grants, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn wraps_past_pointer() {
        let mut arb = RoundRobinArbiter::new(4, 1);
        let reqs = requesters(4, &[1]);
        assert_eq!(arb.grant(0, &reqs), Some(1));
        assert_eq!(arb.pointer(0), 2);
        // Only fiber 1 requests again; pointer is past it, must wrap.
        assert_eq!(arb.grant(0, &reqs), Some(1));
    }

    #[test]
    fn empty_requesters_yield_none() {
        let mut arb = RoundRobinArbiter::new(4, 2);
        assert_eq!(arb.grant(1, &BitRegister::new(4)), None);
        // Pointer unchanged on no grant.
        assert_eq!(arb.pointer(1), 0);
    }

    #[test]
    fn per_wavelength_pointers_are_independent() {
        let mut arb = RoundRobinArbiter::new(3, 2);
        let reqs = requesters(3, &[0, 1, 2]);
        assert_eq!(arb.grant(0, &reqs), Some(0));
        assert_eq!(arb.grant(0, &reqs), Some(1));
        // Wavelength 1's arbiter still starts at fiber 0.
        assert_eq!(arb.grant(1, &reqs), Some(0));
    }

    #[test]
    fn fairness_over_many_slots() {
        // Under persistent full load every fiber receives the same number of
        // grants (±1).
        let n = 5;
        let mut arb = RoundRobinArbiter::new(n, 1);
        let reqs = requesters(n, &[0, 1, 2, 3, 4]);
        let mut tally = vec![0usize; n];
        for _ in 0..5 * 100 {
            tally[arb.grant(0, &reqs).unwrap()] += 1;
        }
        assert!(tally.iter().all(|&t| t == 100), "tally: {tally:?}");
    }

    #[test]
    fn reset_restores_pointers() {
        let mut arb = RoundRobinArbiter::new(3, 1);
        let reqs = requesters(3, &[0, 1, 2]);
        let _ = arb.grant(0, &reqs);
        arb.reset();
        assert_eq!(arb.pointer(0), 0);
    }

    #[test]
    #[should_panic(expected = "n bits")]
    fn wrong_width_panics() {
        let mut arb = RoundRobinArbiter::new(3, 1);
        let _ = arb.grant(0, &BitRegister::new(4));
    }
}
