//! The Break and First Available hardware unit (paper §IV-B).
//!
//! "We can also implement this algorithm in parallel and time complexity
//! could be reduced to O(k), but we then need d units of hardware." This
//! module models exactly that: `d` First-Available sub-units, one per
//! candidate breaking edge, each scanning the `k−1` rotated output channels
//! in lock-step; a compare tree picks the largest result. Cycle counts are
//! reported both for the sequential configuration (one unit reused `d`
//! times, `O(dk)` cycles) and the parallel one (`d` units, `O(k)` cycles).
//!
//! Full-range conversion degenerates to a single scan with all-ones masks
//! (the trivial scheduler of §I).

use wdm_core::algorithms::Assignment;
use wdm_core::breaking::{reduced_span, SameWavelengthOrder};
use wdm_core::{ChannelMask, Conversion, ConversionKind, Error, RequestVector};

use crate::register::BitRegister;

/// The outcome of a Break-and-First-Available hardware run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakResult {
    /// Wavelength-level grants (including the breaking edge).
    pub assignments: Vec<Assignment>,
    /// Number of sub-units instantiated (= candidate breaking edges tried).
    pub units: usize,
    /// Cycles when the sub-units run one after another: `units · (k−1) + 1`.
    pub cycles_sequential: usize,
    /// Cycles when the sub-units run in parallel: `(k−1) + ceil(log2 units)`
    /// for the scan plus the compare tree.
    pub cycles_parallel: usize,
}

/// A cycle-counted Break and First Available scheduling unit for circular
/// conversion (full-range included).
#[derive(Debug, Clone)]
pub struct BreakFaUnit {
    conv: Conversion,
}

impl BreakFaUnit {
    /// Builds the unit. Returns an error unless the conversion is circular.
    pub fn new(conv: Conversion) -> Result<BreakFaUnit, Error> {
        if conv.kind() != ConversionKind::Circular {
            return Err(Error::UnsupportedConversion {
                algorithm: "Break and First Available hardware unit",
                requires: "circular conversion",
            });
        }
        Ok(BreakFaUnit { conv })
    }

    /// The conversion scheme.
    pub fn conversion(&self) -> &Conversion {
        &self.conv
    }

    /// Runs one slot.
    pub fn run(&self, requests: &RequestVector, mask: &ChannelMask) -> Result<BreakResult, Error> {
        self.conv.check_k(requests.k())?;
        self.conv.check_k(mask.k())?;
        let k = self.conv.k();

        if self.conv.is_full() {
            return Ok(self.run_full_range(requests, mask));
        }

        // Breaking wavelength: first pending wavelength with a free adjacent
        // channel (isolated wavelengths can never be granted).
        let breaking = requests
            .iter_nonzero()
            .map(|(w, _)| w)
            .find(|&w| self.conv.adjacency(w).iter(k).any(|u| mask.is_free(u)));
        let Some(w_i) = breaking else {
            return Ok(BreakResult {
                assignments: Vec::new(),
                units: 0,
                cycles_sequential: 1,
                cycles_parallel: 1,
            });
        };

        let mut best: Option<Vec<Assignment>> = None;
        let mut units = 0usize;
        for u in self.conv.adjacency(w_i).iter(k) {
            if !mask.is_free(u) {
                continue;
            }
            units += 1;
            let mut candidate = self.sub_unit_scan(requests, mask, w_i, u);
            candidate.push(Assignment { input: w_i, output: u });
            if best.as_ref().is_none_or(|b| candidate.len() > b.len()) {
                best = Some(candidate);
            }
        }
        let scan = k.saturating_sub(1);
        Ok(BreakResult {
            assignments: best.unwrap_or_default(),
            units,
            cycles_sequential: units * scan + 1,
            // Scan plus the depth of the compare tree, ceil(log2 units).
            cycles_parallel: scan + units.next_power_of_two().trailing_zeros() as usize,
        })
    }

    /// One sub-unit: scans the `k−1` rotated channels, each cycle priority-
    /// encoding the first pending wavelength whose *reduced* adjacency set
    /// (paper §IV-A, embedded combinationally) contains the channel.
    fn sub_unit_scan(
        &self,
        requests: &RequestVector,
        mask: &ChannelMask,
        w_i: usize,
        u: usize,
    ) -> Vec<Assignment> {
        let k = self.conv.k();
        let mut counters: Vec<usize> = requests.counts().to_vec();
        counters[w_i] -= 1; // the breaking vertex is granted separately
                            // Pending register in *rotated* wavelength order so that "first
                            // pending" means first in the reduced graph's left order.
        let mut pending = BitRegister::new(k);
        for off in 0..k {
            let w = (w_i + off) % k;
            if counters[w] > 0 {
                pending.set(off);
            }
        }

        let mut assignments = Vec::new();
        for r in 0..k - 1 {
            let x = (u + 1 + r) % k; // rotated output channel
            if !mask.is_free(x) {
                continue;
            }
            // Combinational mask: wavelengths whose reduced adjacency
            // contains x — a subset of the d wavelengths reaching x.
            let mut mask_reg = BitRegister::new(k);
            for w in self.conv.reachable_from(x).iter(k) {
                let span = reduced_span(&self.conv, w_i, u, w, SameWavelengthOrder::After);
                if span.contains(x, k) {
                    mask_reg.set((w + k - w_i) % k);
                }
            }
            mask_reg.and_with(&pending);
            if let Some(off) = mask_reg.first_set() {
                let w = (w_i + off) % k;
                assignments.push(Assignment { input: w, output: x });
                counters[w] -= 1;
                if counters[w] == 0 {
                    pending.clear(off);
                }
            }
        }
        assignments
    }

    /// Full-range degenerate case: one scan, all-ones conversion masks.
    fn run_full_range(&self, requests: &RequestVector, mask: &ChannelMask) -> BreakResult {
        let k = self.conv.k();
        let mut counters: Vec<usize> = requests.counts().to_vec();
        let mut pending = BitRegister::new(k);
        for (w, &c) in counters.iter().enumerate() {
            if c > 0 {
                pending.set(w);
            }
        }
        let mut assignments = Vec::new();
        for u in 0..k {
            if !mask.is_free(u) {
                continue;
            }
            if let Some(w) = pending.first_set() {
                assignments.push(Assignment { input: w, output: u });
                counters[w] -= 1;
                if counters[w] == 0 {
                    pending.clear(w);
                }
            }
        }
        BreakResult { assignments, units: 1, cycles_sequential: k, cycles_parallel: k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (k, e, f, counts, occupied-channels) test case.
    type OccupiedCase = (usize, usize, usize, Vec<usize>, Vec<usize>);
    use wdm_core::algorithms::{break_fa_schedule, validate_assignments};

    #[test]
    fn matches_software_bfa_on_paper_example() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        let rv = RequestVector::from_counts(vec![2, 1, 0, 1, 1, 2]).unwrap();
        let mask = ChannelMask::all_free(6);
        let unit = BreakFaUnit::new(conv).unwrap();
        let hw = unit.run(&rv, &mask).unwrap();
        assert_eq!(hw.assignments.len(), 6);
        validate_assignments(&conv, &rv, &mask, &hw.assignments).unwrap();
        assert_eq!(hw.units, 3);
        assert_eq!(hw.cycles_sequential, 3 * 5 + 1);
    }

    #[test]
    fn matches_software_bfa_size_on_battery() {
        let cases: Vec<OccupiedCase> = vec![
            (6, 1, 1, vec![2, 1, 0, 1, 1, 2], vec![]),
            (6, 1, 1, vec![0, 2, 3, 0, 1, 0], vec![]),
            (6, 1, 1, vec![2, 2, 2, 2, 2, 2], vec![0, 3]),
            (8, 2, 1, vec![1, 0, 4, 0, 0, 2, 0, 1], vec![5]),
            (5, 2, 2, vec![5, 0, 0, 0, 5], vec![]),
            (7, 3, 2, vec![1, 2, 3, 0, 0, 0, 1], vec![6]),
            (4, 1, 1, vec![4, 4, 4, 4], vec![]),
            (2, 0, 1, vec![3, 3], vec![]),
        ];
        for (k, e, f, counts, occupied) in cases {
            let conv = Conversion::circular(k, e, f).unwrap();
            let rv = RequestVector::from_counts(counts.clone()).unwrap();
            let mask = ChannelMask::with_occupied(k, &occupied).unwrap();
            let unit = BreakFaUnit::new(conv).unwrap();
            let hw = unit.run(&rv, &mask).unwrap();
            validate_assignments(&conv, &rv, &mask, &hw.assignments).unwrap();
            let sw = break_fa_schedule(&conv, &rv, &mask).unwrap();
            assert_eq!(
                hw.assignments.len(),
                sw.len(),
                "k={k} e={e} f={f} counts={counts:?} occupied={occupied:?}"
            );
        }
    }

    #[test]
    fn full_range_unit() {
        let conv = Conversion::full(6).unwrap();
        let rv = RequestVector::from_counts(vec![2, 1, 0, 1, 1, 2]).unwrap();
        let mask = ChannelMask::all_free(6);
        let unit = BreakFaUnit::new(conv).unwrap();
        let hw = unit.run(&rv, &mask).unwrap();
        assert_eq!(hw.assignments.len(), 6);
        assert_eq!(hw.units, 1);
        validate_assignments(&conv, &rv, &mask, &hw.assignments).unwrap();
    }

    #[test]
    fn parallel_cycles_are_independent_of_d() {
        // d = 3 vs d = 7 on k = 16: parallel cycle counts differ only by the
        // compare tree depth, not by a factor of d.
        let rv = RequestVector::from_counts(vec![2; 16]).unwrap();
        let mask = ChannelMask::all_free(16);
        let d3 = BreakFaUnit::new(Conversion::symmetric_circular(16, 3).unwrap())
            .unwrap()
            .run(&rv, &mask)
            .unwrap();
        let d7 = BreakFaUnit::new(Conversion::symmetric_circular(16, 7).unwrap())
            .unwrap()
            .run(&rv, &mask)
            .unwrap();
        assert_eq!(d3.units, 3);
        assert_eq!(d7.units, 7);
        assert!(d7.cycles_sequential > 2 * d3.cycles_sequential);
        assert!(d7.cycles_parallel <= d3.cycles_parallel + 2);
    }

    #[test]
    fn no_requests() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        let unit = BreakFaUnit::new(conv).unwrap();
        let hw = unit.run(&RequestVector::new(6), &ChannelMask::all_free(6)).unwrap();
        assert!(hw.assignments.is_empty());
        assert_eq!(hw.units, 0);
    }

    #[test]
    fn rejects_non_circular() {
        let conv = Conversion::non_circular(6, 1, 1).unwrap();
        assert!(BreakFaUnit::new(conv).is_err());
    }
}
