//! The First Available hardware unit (paper §III).
//!
//! One clock cycle per output channel: mask the pending-wavelength register
//! with the channel's conversion-range mask, priority-encode the first
//! pending convertible wavelength, grant it, decrement its counter. `k`
//! cycles per slot, independent of `N` and `d` — the paper's `O(k)` claim in
//! cycle-exact form.

use wdm_core::algorithms::Assignment;
use wdm_core::{ChannelMask, Conversion, ConversionKind, Error, RequestVector};

use crate::encoder::PriorityEncoder;
use crate::register::BitRegister;

/// The outcome of running a hardware unit for one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitResult {
    /// Wavelength-level grants, in the order they were latched.
    pub assignments: Vec<Assignment>,
    /// Clock cycles consumed.
    pub cycles: usize,
}

/// A cycle-counted First Available scheduling unit for non-circular
/// conversion.
#[derive(Debug, Clone)]
pub struct FirstAvailableUnit {
    conv: Conversion,
    encoder: PriorityEncoder,
}

impl FirstAvailableUnit {
    /// Builds the unit. Returns an error unless the conversion is
    /// non-circular (Theorem 1's precondition).
    pub fn new(conv: Conversion) -> Result<FirstAvailableUnit, Error> {
        if conv.kind() != ConversionKind::NonCircular {
            return Err(Error::UnsupportedConversion {
                algorithm: "First Available hardware unit",
                requires: "non-circular conversion",
            });
        }
        Ok(FirstAvailableUnit { encoder: PriorityEncoder::new(&conv), conv })
    }

    /// The conversion scheme.
    pub fn conversion(&self) -> &Conversion {
        &self.conv
    }

    /// Runs one slot: `k` cycles, one output channel per cycle.
    pub fn run(&self, requests: &RequestVector, mask: &ChannelMask) -> Result<UnitResult, Error> {
        self.conv.check_k(requests.k())?;
        self.conv.check_k(mask.k())?;
        let k = self.conv.k();

        // Pending-per-wavelength down counters plus the one-bit "has
        // pending" summary register the encoder looks at.
        let mut counters: Vec<usize> = requests.counts().to_vec();
        let mut nonzero = BitRegister::new(k);
        for (w, &c) in counters.iter().enumerate() {
            if c > 0 {
                nonzero.set(w);
            }
        }

        let mut assignments = Vec::new();
        let mut cycles = 0usize;
        for u in 0..k {
            cycles += 1;
            if !mask.is_free(u) {
                continue;
            }
            if let Some(w) = self.encoder.encode(u, &nonzero) {
                assignments.push(Assignment { input: w, output: u });
                counters[w] -= 1;
                if counters[w] == 0 {
                    nonzero.clear(w);
                }
            }
        }
        Ok(UnitResult { assignments, cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (k, e, f, counts, occupied-channels) test case.
    type OccupiedCase = (usize, usize, usize, Vec<usize>, Vec<usize>);
    use wdm_core::algorithms::{fa_schedule, validate_assignments};

    fn sorted(mut a: Vec<Assignment>) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = a.drain(..).map(|x| (x.input, x.output)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_software_fa_on_paper_example() {
        let conv = Conversion::non_circular(6, 1, 1).unwrap();
        let rv = RequestVector::from_counts(vec![2, 1, 0, 1, 1, 2]).unwrap();
        let mask = ChannelMask::all_free(6);
        let unit = FirstAvailableUnit::new(conv).unwrap();
        let hw = unit.run(&rv, &mask).unwrap();
        let sw = fa_schedule(&conv, &rv, &mask).unwrap();
        assert_eq!(sorted(hw.assignments.clone()), sorted(sw));
        assert_eq!(hw.cycles, 6, "exactly k cycles");
        validate_assignments(&conv, &rv, &mask, &hw.assignments).unwrap();
    }

    #[test]
    fn matches_software_fa_on_battery() {
        let cases: Vec<OccupiedCase> = vec![
            (6, 1, 1, vec![2, 1, 0, 1, 1, 2], vec![]),
            (6, 1, 1, vec![2, 1, 0, 1, 1, 2], vec![0, 3]),
            (8, 2, 1, vec![1, 0, 4, 0, 0, 2, 0, 1], vec![7]),
            (8, 0, 3, vec![3, 3, 3, 3, 0, 0, 0, 0], vec![1, 2]),
            (4, 1, 1, vec![9, 9, 9, 9], vec![]),
            (5, 2, 2, vec![0, 0, 0, 0, 0], vec![0, 1, 2, 3, 4]),
        ];
        for (k, e, f, counts, occupied) in cases {
            let conv = Conversion::non_circular(k, e, f).unwrap();
            let rv = RequestVector::from_counts(counts.clone()).unwrap();
            let mask = ChannelMask::with_occupied(k, &occupied).unwrap();
            let unit = FirstAvailableUnit::new(conv).unwrap();
            let hw = unit.run(&rv, &mask).unwrap();
            let sw = fa_schedule(&conv, &rv, &mask).unwrap();
            assert_eq!(
                sorted(hw.assignments),
                sorted(sw),
                "k={k} e={e} f={f} counts={counts:?} occupied={occupied:?}"
            );
            assert_eq!(hw.cycles, k);
        }
    }

    #[test]
    fn cycle_count_is_k_regardless_of_load() {
        let conv = Conversion::non_circular(16, 1, 1).unwrap();
        let unit = FirstAvailableUnit::new(conv).unwrap();
        let empty = unit.run(&RequestVector::new(16), &ChannelMask::all_free(16)).unwrap();
        let full = unit
            .run(&RequestVector::from_counts(vec![10; 16]).unwrap(), &ChannelMask::all_free(16))
            .unwrap();
        assert_eq!(empty.cycles, 16);
        assert_eq!(full.cycles, 16);
    }

    #[test]
    fn rejects_circular_conversion() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        assert!(FirstAvailableUnit::new(conv).is_err());
    }

    #[test]
    fn rejects_mismatched_dimensions() {
        let conv = Conversion::non_circular(6, 1, 1).unwrap();
        let unit = FirstAvailableUnit::new(conv).unwrap();
        assert!(unit.run(&RequestVector::new(5), &ChannelMask::all_free(6)).is_err());
        assert!(unit.run(&RequestVector::new(6), &ChannelMask::all_free(7)).is_err());
    }
}
