//! Priority encoders (paper §III).
//!
//! Each First Available step must "find the first input wavelength that has
//! at least one packet and can be converted to the current output
//! wavelength" in constant time. In hardware that is a masked priority
//! encoder: AND the pending-wavelength register with the conversion-range
//! mask of the current output channel, then encode the lowest set bit.
//! [`PriorityEncoder`] precomputes the per-output-channel masks so each
//! encode is one AND + find-first-set, mirroring the combinational circuit.

use wdm_core::Conversion;

use crate::register::BitRegister;

/// A masked priority encoder over the `k` input wavelengths.
///
/// Precomputes, for every output channel `u`, the mask of input wavelengths
/// convertible to `u` (the conversion edges "embedded in the circuit",
/// §II-B). `encode(u, pending)` then returns the first maskable wavelength.
#[derive(Debug, Clone)]
pub struct PriorityEncoder {
    k: usize,
    masks: Vec<BitRegister>,
}

impl PriorityEncoder {
    /// Builds the encoder for a conversion scheme.
    pub fn new(conv: &Conversion) -> PriorityEncoder {
        let k = conv.k();
        let masks = (0..k)
            .map(|u| {
                let mut mask = BitRegister::new(k);
                for w in conv.reachable_from(u).iter(k) {
                    mask.set(w);
                }
                mask
            })
            .collect();
        PriorityEncoder { k, masks }
    }

    /// Number of wavelengths.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The mask of input wavelengths convertible to output channel `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= k`.
    pub fn mask(&self, u: usize) -> &BitRegister {
        &self.masks[u]
    }

    /// One combinational step: the lowest input wavelength that is pending
    /// and convertible to output channel `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= k` or the pending register width is not `k`.
    pub fn encode(&self, u: usize, pending: &BitRegister) -> Option<usize> {
        assert_eq!(pending.width(), self.k, "pending register must be k bits");
        let mut masked = pending.clone();
        masked.and_with(&self.masks[u]);
        masked.first_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending_of(k: usize, bits: &[usize]) -> BitRegister {
        let mut r = BitRegister::new(k);
        for &b in bits {
            r.set(b);
        }
        r
    }

    #[test]
    fn masks_are_inverse_adjacency() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        let enc = PriorityEncoder::new(&conv);
        // Output λ0 is reachable from λ5, λ0, λ1 (e = f = 1).
        assert_eq!(enc.mask(0).iter_ones().collect::<Vec<_>>(), vec![0, 1, 5]);
        let nc = Conversion::non_circular(6, 1, 1).unwrap();
        let enc = PriorityEncoder::new(&nc);
        // No wrap: output λ0 reachable only from λ0, λ1.
        assert_eq!(enc.mask(0).iter_ones().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn encode_picks_first_convertible_pending() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        let enc = PriorityEncoder::new(&conv);
        let pending = pending_of(6, &[3, 5]);
        // Output 4 reachable from {3, 4, 5}: first pending is 3.
        assert_eq!(enc.encode(4, &pending), Some(3));
        // Output 0 reachable from {5, 0, 1}: first pending is 5.
        assert_eq!(enc.encode(0, &pending), Some(5));
        // Output 2 reachable from {1, 2, 3}: first pending is 3.
        assert_eq!(enc.encode(2, &pending), Some(3));
        // Output 1 reachable from {0, 1, 2}: none pending.
        assert_eq!(enc.encode(1, &pending), None);
    }

    #[test]
    #[should_panic(expected = "k bits")]
    fn wrong_width_panics() {
        let conv = Conversion::full(4).unwrap();
        let enc = PriorityEncoder::new(&conv);
        let _ = enc.encode(0, &BitRegister::new(5));
    }
}
