//! Qualitative traffic effects the simulator must reproduce: hotspot skew
//! concentrates loss on the hot fiber, multi-slot holds lose more than
//! packets at equal carried load, and with 1-slot packets the loss is
//! insensitive to temporal burst correlation (the per-slot request
//! distribution is all that matters to a memoryless per-slot scheduler).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wdm_core::Conversion;
use wdm_interconnect::InterconnectConfig;
use wdm_sim::engine::{Simulation, SimulationConfig};
use wdm_sim::experiment::{run_sweep, DegreeSpec, SweepConfig, Workload};
use wdm_sim::traffic::{BernoulliUniform, BurstyOnOff, DurationModel};

#[test]
fn hotspot_traffic_loses_more_than_uniform() {
    let mut uniform = SweepConfig::uniform_packets(8, 8, vec![DegreeSpec::Circular(3)], vec![0.6]);
    uniform.sim = SimulationConfig { warmup_slots: 200, measure_slots: 4_000, seed: 17 };
    let mut hotspot = uniform.clone();
    hotspot.workload = Workload::Hotspot { fraction: 0.5 };
    let u = run_sweep(&uniform).unwrap();
    let h = run_sweep(&hotspot).unwrap();
    assert!(
        h[0].loss > u[0].loss + 0.01,
        "hotspot loss {} must exceed uniform loss {}",
        h[0].loss,
        u[0].loss
    );
    assert!(h[0].throughput < u[0].throughput);
}

#[test]
fn bursty_packet_loss_matches_bernoulli_at_equal_load() {
    // With 1-slot packets every slot is scheduled independently and no
    // occupancy carries over, so loss depends only on the single-slot
    // distribution of requests. A stationary on/off process whose ON
    // fraction equals the Bernoulli rate (destinations uniform in both)
    // has the *same* single-slot distribution — temporal burst correlation
    // is invisible to a memoryless per-slot maximum-matching scheduler.
    // This cross-validates the two traffic models against each other;
    // burstiness only matters through occupancy memory, which
    // `longer_holds_increase_loss_at_equal_carried_load` covers.
    let (n, k) = (8usize, 8usize);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let sim = SimulationConfig { warmup_slots: 500, measure_slots: 8_000, seed: 23 };
    let load = 0.7;

    let bern = Simulation::new(
        InterconnectConfig::packet_switch(n, conv),
        BernoulliUniform::new(n, k, load, DurationModel::Deterministic(1)),
        sim,
    )
    .unwrap()
    .run()
    .unwrap();

    // Mean burst length 8 at the same stationary load.
    let p_off = 1.0 / 8.0;
    let p_on = load * p_off / (1.0 - load);
    let bursty = Simulation::new(
        InterconnectConfig::packet_switch(n, conv),
        BurstyOnOff::new(n, k, p_on, p_off, DurationModel::Deterministic(1)),
        sim,
    )
    .unwrap()
    .run()
    .unwrap();

    let measured_load =
        bursty.metrics.offered() as f64 / (sim.measure_slots as f64 * (n * k) as f64);
    assert!((measured_load - load).abs() < 0.05, "bursty load calibration off: {measured_load}");
    let (b, u) = (bursty.loss_probability(), bern.loss_probability());
    assert!(
        (b - u).abs() < 0.01,
        "1-slot packet loss must be insensitive to burst correlation: bursty {b} vs Bernoulli {u}"
    );
}

#[test]
fn longer_holds_increase_loss_at_equal_carried_load() {
    let (n, k) = (8usize, 8usize);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let sim = SimulationConfig { warmup_slots: 500, measure_slots: 8_000, seed: 29 };
    let target = 0.7;
    let loss_at = |mean_hold: f64| {
        let p = target / mean_hold;
        Simulation::new(
            InterconnectConfig::packet_switch(n, conv),
            BernoulliUniform::new(n, k, p, DurationModel::Geometric { mean: mean_hold }),
            sim,
        )
        .unwrap()
        .run()
        .unwrap()
        .loss_probability()
    };
    let short = loss_at(1.0);
    let long = loss_at(8.0);
    assert!(long > short, "8-slot holds ({long}) should lose more than packets ({short})");
}
