//! Qualitative traffic effects the simulator must reproduce: hotspot skew
//! concentrates loss on the hot fiber, and bursty multi-slot traffic loses
//! more than smooth packet traffic at equal carried load.

use wdm_core::Conversion;
use wdm_interconnect::InterconnectConfig;
use wdm_sim::engine::{Simulation, SimulationConfig};
use wdm_sim::experiment::{run_sweep, DegreeSpec, SweepConfig, Workload};
use wdm_sim::traffic::{BernoulliUniform, BurstyOnOff, DurationModel};

#[test]
fn hotspot_traffic_loses_more_than_uniform() {
    let mut uniform = SweepConfig::uniform_packets(
        8,
        8,
        vec![DegreeSpec::Circular(3)],
        vec![0.6],
    );
    uniform.sim = SimulationConfig { warmup_slots: 200, measure_slots: 4_000, seed: 17 };
    let mut hotspot = uniform.clone();
    hotspot.workload = Workload::Hotspot { fraction: 0.5 };
    let u = run_sweep(&uniform).unwrap();
    let h = run_sweep(&hotspot).unwrap();
    assert!(
        h[0].loss > u[0].loss + 0.01,
        "hotspot loss {} must exceed uniform loss {}",
        h[0].loss,
        u[0].loss
    );
    assert!(h[0].throughput < u[0].throughput);
}

#[test]
fn bursty_arrivals_lose_more_than_bernoulli_at_equal_load() {
    let (n, k) = (8usize, 8usize);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let sim = SimulationConfig { warmup_slots: 500, measure_slots: 8_000, seed: 23 };
    let load = 0.7;

    let bern = Simulation::new(
        InterconnectConfig::packet_switch(n, conv),
        BernoulliUniform::new(n, k, load, DurationModel::Deterministic(1)),
        sim,
    )
    .unwrap()
    .run()
    .unwrap();

    // Bursty with mean burst length 8 and the same stationary load: while
    // ON, every packet of a burst aims at the same destination, creating
    // correlated contention.
    let p_off = 1.0 / 8.0;
    let p_on = load * p_off / (1.0 - load);
    let bursty = Simulation::new(
        InterconnectConfig::packet_switch(n, conv),
        BurstyOnOff::new(n, k, p_on, p_off, DurationModel::Deterministic(1)),
        sim,
    )
    .unwrap()
    .run()
    .unwrap();

    let measured_load =
        bursty.metrics.offered() as f64 / (sim.measure_slots as f64 * (n * k) as f64);
    assert!(
        (measured_load - load).abs() < 0.05,
        "bursty load calibration off: {measured_load}"
    );
    assert!(
        bursty.loss_probability() > bern.loss_probability(),
        "bursty loss {} must exceed Bernoulli loss {}",
        bursty.loss_probability(),
        bern.loss_probability()
    );
}

#[test]
fn longer_holds_increase_loss_at_equal_carried_load() {
    let (n, k) = (8usize, 8usize);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let sim = SimulationConfig { warmup_slots: 500, measure_slots: 8_000, seed: 29 };
    let target = 0.7;
    let loss_at = |mean_hold: f64| {
        let p = target / mean_hold;
        Simulation::new(
            InterconnectConfig::packet_switch(n, conv),
            BernoulliUniform::new(n, k, p, DurationModel::Geometric { mean: mean_hold }),
            sim,
        )
        .unwrap()
        .run()
        .unwrap()
        .loss_probability()
    };
    let short = loss_at(1.0);
    let long = loss_at(8.0);
    assert!(
        long > short,
        "8-slot holds ({long}) should lose more than packets ({short})"
    );
}
