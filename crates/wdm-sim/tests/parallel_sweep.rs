//! Determinism of the parallel experiment layer: a sweep's rows and a
//! simulation's `Report` must be bit-identical regardless of how many
//! worker threads computed them.
//!
//! Two layers of parallelism are covered:
//!
//! * **Inside one interconnect** — `InterconnectConfig::with_threads`
//!   splits per-fiber scheduling across workers; a full `Simulation` run
//!   on 1 vs 8 threads must produce the same `Report`.
//! * **Across grid points** — `run_sweep_with_threads` farms whole grid
//!   points out to `std::thread::scope` workers; the rows must match the
//!   sequential `run_sweep` exactly, in grid order, because both derive
//!   each point's seed with [`point_seed`].

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wdm_core::{Conversion, Policy};
use wdm_interconnect::{HoldPolicy, InterconnectConfig};
use wdm_sim::experiment::{point_seed, run_sweep, run_sweep_with_threads, DegreeSpec, SweepConfig};
use wdm_sim::{BernoulliUniform, DurationModel, Simulation, SimulationConfig};

fn small_sweep() -> SweepConfig {
    let mut config = SweepConfig::uniform_packets(
        4,
        8,
        vec![
            DegreeSpec::None,
            DegreeSpec::Circular(3),
            DegreeSpec::NonCircular(3),
            DegreeSpec::Full,
        ],
        vec![0.3, 0.6, 0.9],
    );
    config.sim.warmup_slots = 50;
    config.sim.measure_slots = 300;
    config.sim.seed = 0xABCD;
    config
}

/// JSON is the canonical serialized form of a report/row set; comparing the
/// serialization compares every field bit for bit (f64s included).
fn canonical<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap()
}

#[test]
fn sequential_and_parallel_sweeps_are_bit_identical() {
    let config = small_sweep();
    let sequential = run_sweep(&config).unwrap();
    assert_eq!(sequential.len(), config.degrees.len() * config.loads.len());
    for threads in [2, 3, 8, 64] {
        let parallel = run_sweep_with_threads(&config, threads).unwrap();
        assert_eq!(
            canonical(&sequential),
            canonical(&parallel),
            "rows diverged at {threads} worker threads"
        );
    }
}

#[test]
fn simulation_report_is_thread_count_invariant() {
    let conv = Conversion::symmetric_circular(8, 3).unwrap();
    let sim_config = SimulationConfig { warmup_slots: 50, measure_slots: 500, seed: 42 };
    let run = |threads: usize| {
        let ic = InterconnectConfig::packet_switch(4, conv)
            .with_policy(Policy::Auto)
            .with_hold(HoldPolicy::NonDisturb)
            .with_threads(threads);
        let traffic = BernoulliUniform::new(4, 8, 0.7, DurationModel::Deterministic(1));
        Simulation::new(ic, traffic, sim_config).unwrap().run().unwrap()
    };
    let single = run(1);
    let eight = run(8);
    assert_eq!(canonical(&single), canonical(&eight), "Report diverged between 1 and 8 threads");
}

#[test]
fn point_seeds_are_distinct_and_stable() {
    let base = 0x5eed;
    let seeds: Vec<u64> = (0..64).map(|i| point_seed(base, i)).collect();
    for (i, &a) in seeds.iter().enumerate() {
        assert_eq!(a, point_seed(base, i), "point_seed must be a pure function");
        for (j, &b) in seeds.iter().enumerate().skip(i + 1) {
            assert_ne!(a, b, "points {i} and {j} share a seed");
        }
    }
    // Different base seeds decorrelate the whole grid.
    assert_ne!(point_seed(1, 0), point_seed(2, 0));
}

#[test]
fn more_threads_than_grid_points_is_fine() {
    let mut config = small_sweep();
    config.degrees = vec![DegreeSpec::Circular(3)];
    config.loads = vec![0.5];
    config.sim.measure_slots = 100;
    let rows = run_sweep_with_threads(&config, 16).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(canonical(&rows), canonical(&run_sweep(&config).unwrap()));
}
