//! Exhaustive loom models of the sweep coordination protocol.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS=--cfg loom` — run via
//! `cargo xtask loom`. Each model spawns the worker protocol from
//! [`wdm_sim::sweep_sync`] inside `loom::model`, which executes it once per
//! distinct sequentially consistent interleaving of the cursor and slot
//! operations, asserting in every one of them:
//!
//! * **no double-claim** — [`SlotBoard::put`] never sees a filled slot
//!   (two workers never hold the same grid index);
//! * **no lost slot** — after all workers are joined, every slot holds a
//!   result (every index was claimed by someone);
//! * **written-before-joined** — the assertions read the board *after*
//!   `join`, so any interleaving in which a worker could be joined before
//!   its writes landed would surface as a missing slot.

#![cfg(loom)]

use std::sync::Arc;

use wdm_sim::sweep_sync::{ChunkCursor, SlotBoard};

/// Runs `workers` model threads over a `len`-point grid with the given
/// chunk size and checks the full protocol in every interleaving.
fn check_sweep_protocol(workers: usize, len: usize, chunk: usize) {
    loom::model(move || {
        let cursor = Arc::new(ChunkCursor::new(len, chunk));
        let board: Arc<SlotBoard<usize>> = Arc::new(SlotBoard::new(len));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let cursor = Arc::clone(&cursor);
                let board = Arc::clone(&board);
                loom::thread::spawn(move || {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            // Workers write `w`, so a double-claim is also
                            // visible as a slot refusing a second writer.
                            assert!(board.put(i, w), "slot {i} double-claimed");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let board = Arc::into_inner(board).expect("workers are joined, board is unshared");
        let rows = board.into_rows();
        assert_eq!(rows.len(), len);
        for (i, row) in rows.into_iter().enumerate() {
            assert!(row.is_some(), "slot {i} lost (claimed by nobody)");
        }
    });
}

/// The acceptance-bar model: 3 workers racing over a 4-point grid,
/// single-index chunks (maximal cursor contention).
#[test]
fn three_workers_four_points_chunked_one() {
    check_sweep_protocol(3, 4, 1);
}

/// Clipped final chunk: chunk 2 over 5 points exercises the `min(len)`
/// boundary in every interleaving.
#[test]
fn three_workers_five_points_chunked_two() {
    check_sweep_protocol(3, 5, 2);
}

/// More workers than grid points: the surplus workers must shut down
/// cleanly on an exhausted cursor in every interleaving.
#[test]
fn more_workers_than_points() {
    check_sweep_protocol(4, 2, 1);
}

/// Empty grid: every worker's first claim is `None`; nothing is written.
#[test]
fn empty_grid() {
    loom::model(|| {
        let cursor = Arc::new(ChunkCursor::new(0, 1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                loom::thread::spawn(move || assert!(cursor.claim().is_none()))
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
}
