//! Differential and disruption-timeline tests for the scenario engine.
//!
//! The load-bearing guarantees:
//!
//! * a constant-rate, uniform-destination, no-disruption scenario is not
//!   merely statistically similar to the legacy [`BernoulliUniform`]
//!   workload — it draws the **bit-identical** request stream from the
//!   same seed (and likewise for the hotspot and bursty variants), so
//!   every existing experiment is reproducible as a scenario file;
//! * disruption events land at exactly their planned slots: a converter
//!   failure at slot `s` shrinks the fiber's effective degree before slot
//!   `s` is scheduled (dropping infeasible in-flight connections rather
//!   than silently keeping them), and recovery restores the baseline;
//! * scenario runs replay bit-identically.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use wdm_interconnect::{ConnectionRequest, Interconnect, InterconnectConfig};
use wdm_scenario::{load_plan, CompiledPlan, DisruptionChange};
use wdm_sim::scenario::{run_scenario, ScenarioTraffic};
use wdm_sim::traffic::{BernoulliUniform, BurstyOnOff, DurationModel, Hotspot, TrafficModel};

const N: usize = 4;
const K: usize = 8;
const SEED: u64 = 0xd1ff;
const SLOTS: u64 = 400;

fn plan(doc: &str) -> CompiledPlan {
    load_plan(doc).unwrap()
}

fn stream<T: TrafficModel>(mut model: T, slots: u64) -> Vec<Vec<ConnectionRequest>> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..slots).map(|slot| model.generate(&mut rng, slot)).collect()
}

fn scenario_stream(doc: &str, slots: u64) -> Vec<Vec<ConnectionRequest>> {
    stream(ScenarioTraffic::new(Arc::new(plan(doc))), slots)
}

const UNIFORM: &str = r#"
schema = 1

[interconnect]
n = 4
k = 8
degree = 3
kind = "circular"

[run]
slots = 400
seed = 53279

[traffic]
load = 0.6
duration = { model = "geometric", mean = 4.0 }
"#;

#[test]
fn uniform_scenario_is_bit_identical_to_bernoulli_uniform() {
    let legacy =
        stream(BernoulliUniform::new(N, K, 0.6, DurationModel::Geometric { mean: 4.0 }), SLOTS);
    assert_eq!(scenario_stream(UNIFORM, SLOTS), legacy);
}

#[test]
fn hotspot_scenario_is_bit_identical_to_hotspot_model() {
    let doc = format!("{UNIFORM}\n[traffic.hotspot]\nfiber = 2\nfraction = 0.4\n");
    let legacy =
        stream(Hotspot::new(N, K, 0.6, 2, 0.4, DurationModel::Geometric { mean: 4.0 }), SLOTS);
    assert_eq!(scenario_stream(&doc, SLOTS), legacy);
}

#[test]
fn bursty_scenario_is_bit_identical_to_bursty_model() {
    let doc = format!("{UNIFORM}\n[traffic.bursty]\np_on = 0.05\np_off = 0.2\n");
    let legacy =
        stream(BurstyOnOff::new(N, K, 0.05, 0.2, DurationModel::Geometric { mean: 4.0 }), SLOTS);
    assert_eq!(scenario_stream(&doc, SLOTS), legacy);
}

#[test]
fn phase_rates_change_the_stream_only_inside_their_phase() {
    // Rate 1.0 in the first phase: identical draws to the flat scenario
    // there; the 0.25-rate second phase must then diverge.
    let doc = UNIFORM.replacen(
        "[traffic]",
        "[[phases]]\nname = \"flat\"\nslots = 200\nrate = 1.0\n\n[[phases]]\nname = \"quiet\"\nslots = 200\nrate = 0.25\n\n[traffic]",
        1,
    );
    let flat = scenario_stream(UNIFORM, SLOTS);
    let phased = scenario_stream(&doc, SLOTS);
    assert_eq!(phased[..200], flat[..200], "identical until the rate changes");
    assert_ne!(phased[200..], flat[200..], "the quiet phase must thin the stream");
    let flat_tail: usize = flat[200..].iter().map(Vec::len).sum();
    let quiet_tail: usize = phased[200..].iter().map(Vec::len).sum();
    assert!(
        quiet_tail * 2 < flat_tail,
        "quarter rate should offer far fewer requests: {quiet_tail} vs {flat_tail}"
    );
}

/// Replays a plan's disruption timeline against a live interconnect,
/// checking the state transitions at exactly the planned slots.
#[test]
fn converter_failure_shrinks_effective_degree_exactly_at_its_slot() {
    let doc = format!(
        "{UNIFORM}
[[disruptions]]
at = 100
fiber = 1
kind = \"converter-failure\"
degree = 1
until = 250
"
    );
    let p = plan(&doc);
    let config = InterconnectConfig::packet_switch(p.n(), p.conversion());
    let mut interconnect = Interconnect::new(config).unwrap();
    let mut traffic = ScenarioTraffic::new(Arc::new(p.clone()));
    let mut rng = StdRng::seed_from_u64(p.seed());
    let events = p.events();
    let mut cursor = 0usize;
    let mut requests = Vec::new();
    let mut result = wdm_interconnect::SlotResult::default();
    let mut dropped_at_strike = 0usize;
    for slot in 0..p.total_slots() {
        // Before applying this slot's events the fiber still runs the
        // scheme of the previous slot.
        let degree_before = interconnect.fiber_conversion(1).unwrap().degree();
        match slot {
            0..=99 => assert_eq!(degree_before, 3, "baseline until the strike"),
            100..=249 => {
                if slot > 100 {
                    assert_eq!(degree_before, 1, "degraded from slot 100");
                }
            }
            _ => {
                if slot > 250 {
                    assert_eq!(degree_before, 3, "restored from slot 250");
                }
            }
        }
        while cursor < events.len() && events[cursor].slot == slot {
            let event = events[cursor];
            cursor += 1;
            let impact = match event.change {
                DisruptionChange::ConverterFailure { conversion, .. } => {
                    interconnect.shrink_conversion(event.fiber, conversion).unwrap()
                }
                DisruptionChange::ConverterRecovery => {
                    interconnect.restore_conversion(event.fiber).unwrap()
                }
                DisruptionChange::Outage => interconnect.fail_fiber(event.fiber).unwrap(),
                DisruptionChange::Rejoin => interconnect.rejoin_fiber(event.fiber).unwrap(),
            };
            if slot == 100 {
                dropped_at_strike = impact.dropped_connections;
                // Multi-slot geometric holds at load 0.6: the strike must
                // catch off-diagonal in-flight connections, and they are
                // dropped, never silently kept on a now-infeasible channel.
                assert!(impact.dropped_connections > 0, "strike caught no active holds");
            }
            // The change is visible the moment it applies.
            let expected = match event.change {
                DisruptionChange::ConverterFailure { degree, .. } => degree,
                _ => 3,
            };
            assert_eq!(interconnect.fiber_conversion(event.fiber).unwrap().degree(), expected);
        }
        traffic.generate_into(&mut rng, slot, &mut requests);
        interconnect.advance_slot_into(&requests, &mut result).unwrap();
        // Invariant the shrink must uphold every slot: no active
        // connection on fiber 1 uses a conversion its current scheme
        // cannot perform (checked implicitly by advance_slot_into's debug
        // asserts; the drop count above proves the strike pruned).
    }
    assert_eq!(cursor, events.len(), "both events consumed");
    assert!(dropped_at_strike > 0);
}

#[test]
fn outage_cancels_reservations_and_recovery_restores_capacity() {
    let doc = format!(
        "{UNIFORM}
[[disruptions]]
at = 50
fiber = 0
kind = \"outage\"
until = 60
"
    );
    let p = plan(&doc);
    let report = run_scenario(&p).unwrap();
    assert_eq!(report.during.slots, 10);
    // While fiber 0 is dark, every request destined there is lost, so the
    // during-window loss rate must sit well above the steady baseline.
    assert!(
        report.during.loss_probability() > report.before.loss_probability(),
        "during {:.4} vs before {:.4}",
        report.during.loss_probability(),
        report.before.loss_probability()
    );
    // After rejoin the loss rate comes back down to the baseline ballpark.
    assert!(
        (report.after.loss_probability() - report.before.loss_probability()).abs() < 0.05,
        "after {:.4} vs before {:.4}",
        report.after.loss_probability(),
        report.before.loss_probability()
    );
}

#[test]
fn disruption_scenario_replays_bit_identically() {
    let doc = format!(
        "{UNIFORM}
[[phases]]
name = \"day\"
slots = 200
rate = 1.0

[[phases]]
name = \"peak\"
slots = 200
rate = 1.4
ramp = true

[[disruptions]]
at = 120
fiber = 2
kind = \"converter-failure\"
degree = 1
until = 180

[[disruptions]]
at = 260
fiber = 3
kind = \"outage\"
until = 300

[fallback]
policy = \"auto\"
on_disruption = true
"
    );
    let p = plan(&doc);
    let a = run_scenario(&p).unwrap();
    let b = run_scenario(&p).unwrap();
    let to_json = |r: &wdm_sim::scenario::ScenarioReport| serde_json::to_string(r).unwrap();
    assert_eq!(to_json(&a), to_json(&b), "same plan, same bits");
    assert!(a.dropped_connections > 0 || a.cancelled_reservations > 0 || a.during.slots > 0);
    assert!(a.fallback.engagements >= 1, "on_disruption fallback must engage");
    assert_eq!(a.fallback.engagements, a.fallback.reverts, "every engagement reverts");
}
