//! E17 — reservation blocking probability and cell throughput vs hold
//! duration (EXPERIMENTS.md).
//!
//! Mixes the §V advance-reservation arrival process into a Bernoulli cell
//! workload and sweeps the booked hold duration: longer holds occupy more
//! future slot-capacity per admission, so the ledger denies more bookings
//! (blocking probability rises) while the cell path loses source channels
//! to active holds (carried cell throughput falls).
//!
//! Run: `cargo run --release -p wdm-sim --example e17_reservation_blocking`

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wdm_core::{Conversion, Policy};
use wdm_interconnect::InterconnectConfig;
use wdm_sim::{BernoulliUniform, DurationModel, ReservationTraffic, Simulation, SimulationConfig};

const N: usize = 4;
const K: usize = 16;
const DEGREE: usize = 3;
const RESERVATION_RATE: f64 = 0.5;
const MAX_LEAD: u32 = 8;

fn main() {
    println!("# E17: N={N} K={K} circular d={DEGREE}, BFA, reservation rate {RESERVATION_RATE}/slot, lead 1..={MAX_LEAD}");
    println!("load,hold_duration,blocking_probability,admitted,denied_capacity,denied_horizon,grants,expiries,cell_throughput_per_slot,cell_loss_probability,utilization");
    for load in [0.3, 0.6] {
        for hold in [2u32, 4, 8, 16] {
            let conv = Conversion::symmetric_circular(K, DEGREE).unwrap();
            let cells = BernoulliUniform::new(N, K, load, DurationModel::Geometric { mean: 2.0 });
            let reservations = ReservationTraffic::new(
                N,
                K,
                RESERVATION_RATE,
                MAX_LEAD,
                DurationModel::Deterministic(hold),
            );
            let sim = Simulation::new(
                InterconnectConfig::packet_switch(N, conv).with_policy(Policy::BreakFirstAvailable),
                cells,
                SimulationConfig { warmup_slots: 500, measure_slots: 20_000, seed: 17 },
            )
            .unwrap()
            .with_reservations(reservations);
            let report = sim.run().unwrap();
            let r = report.reservations;
            println!(
                "{load},{hold},{:.4},{},{},{},{},{},{:.3},{:.4},{:.4}",
                r.blocking_probability(),
                r.admitted,
                r.denied_capacity,
                r.denied_horizon,
                r.grants,
                r.expiries,
                report.metrics.throughput_per_slot(),
                report.metrics.loss_probability(),
                report.metrics.utilization(N, K),
            );
        }
    }
}
