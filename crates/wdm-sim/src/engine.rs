//! The simulation engine: interconnect + traffic + clock.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use wdm_core::Error;
use wdm_interconnect::{Interconnect, InterconnectConfig};

use crate::metrics::{Metrics, SlotObservation};
use crate::traffic::ReservationTraffic;
use crate::traffic::TrafficModel;

/// Run lengths and seeding for one simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Slots to run before measurement starts (reach steady state).
    pub warmup_slots: u64,
    /// Slots measured.
    pub measure_slots: u64,
    /// RNG seed (simulations are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig { warmup_slots: 500, measure_slots: 5_000, seed: 0x5eed }
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Interconnect size `N`.
    pub n: usize,
    /// Wavelengths per fiber `k`.
    pub k: usize,
    /// Conversion degree `d`.
    pub degree: usize,
    /// Offered per-channel load of the traffic model.
    pub offered_load: f64,
    /// Measured metrics.
    pub metrics: Metrics,
    /// Advance-reservation outcomes (all-zero when the run had no
    /// reservation process attached).
    pub reservations: ReservationSummary,
    /// Warm-start scheduling outcomes summed over every fiber scheduler and
    /// the whole run (warmup included).
    pub warm: WarmSummary,
}

/// How the per-fiber schedulers computed their slots over one run: repaired
/// from the previous slot's matching, fell back to from-scratch dispatch
/// when the repair budget tripped, or ran cold. The serializable counterpart
/// of [`wdm_core::WarmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmSummary {
    /// Per-fiber slots repaired from the previous matching.
    pub repaired: u64,
    /// Per-fiber slots where repair tripped its budget and dispatch re-ran.
    pub fallback: u64,
    /// Per-fiber slots scheduled with no warm state.
    pub cold: u64,
}

impl WarmSummary {
    /// Fraction of per-fiber slots served by the warm repair path.
    pub fn repair_rate(&self) -> f64 {
        let total = self.repaired + self.fallback + self.cold;
        if total == 0 {
            0.0
        } else {
            self.repaired as f64 / total as f64
        }
    }
}

impl From<wdm_core::WarmStats> for WarmSummary {
    fn from(stats: wdm_core::WarmStats) -> WarmSummary {
        WarmSummary { repaired: stats.repaired, fallback: stats.fallback, cold: stats.cold }
    }
}

/// What happened to the advance reservations of one simulation run,
/// counted over the whole run (warmup included — a reservation admitted
/// during warmup can activate inside the measured window, so splitting
/// the ledger at the warmup boundary would miscount).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationSummary {
    /// Reservations the process generated.
    pub requested: u64,
    /// Admitted into the capacity ledger.
    pub admitted: u64,
    /// Denied: no slot capacity along the requested hold.
    pub denied_capacity: u64,
    /// Denied: start slot beyond the admission horizon.
    pub denied_horizon: u64,
    /// Holds that activated into granted connections.
    pub grants: u64,
    /// Holds that expired at their start slot (source busy or output
    /// contention at activation — timeout expiry, never retried).
    pub expiries: u64,
}

impl ReservationSummary {
    /// Blocking probability over resolved reservations: denied or expired
    /// out of everything that reached a verdict (admission deny counts as
    /// blocking; still-pending holds at run end are excluded).
    pub fn blocking_probability(&self) -> f64 {
        let resolved = self.denied_capacity + self.denied_horizon + self.grants + self.expiries;
        if resolved == 0 {
            return 0.0;
        }
        (resolved - self.grants) as f64 / resolved as f64
    }
}

impl Report {
    /// Normalized throughput: granted requests per slot divided by the
    /// interconnect's channel count `n·k` (1.0 = every channel busy with a
    /// fresh grant every slot).
    pub fn normalized_throughput(&self) -> f64 {
        self.metrics.throughput_per_slot() / (self.n * self.k) as f64
    }

    /// Packet-loss probability due to output contention.
    pub fn loss_probability(&self) -> f64 {
        self.metrics.loss_probability()
    }
}

/// A runnable simulation: one interconnect driven by one traffic model,
/// optionally mixed with an advance-reservation arrival process.
pub struct Simulation<T: TrafficModel> {
    interconnect: Interconnect,
    traffic: T,
    reservations: Option<ReservationTraffic>,
    rng: StdRng,
    config: SimulationConfig,
}

// Manual impl: deriving would require `T: Debug`, which traffic models
// need not provide.
impl<T: TrafficModel> std::fmt::Debug for Simulation<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.interconnect.n())
            .field("k", &self.interconnect.k())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<T: TrafficModel> Simulation<T> {
    /// Builds the simulation, checking that the traffic model matches the
    /// interconnect dimensions.
    pub fn new(
        interconnect_config: InterconnectConfig,
        traffic: T,
        config: SimulationConfig,
    ) -> Result<Simulation<T>, Error> {
        let interconnect = Interconnect::new(interconnect_config)?;
        if traffic.n() != interconnect.n() {
            return Err(Error::LengthMismatch { expected: interconnect.n(), actual: traffic.n() });
        }
        if traffic.k() != interconnect.k() {
            return Err(Error::WavelengthCountMismatch {
                expected: interconnect.k(),
                actual: traffic.k(),
            });
        }
        Ok(Simulation {
            interconnect,
            traffic,
            reservations: None,
            rng: StdRng::seed_from_u64(config.seed),
            config,
        })
    }

    /// Mixes an advance-reservation arrival process into the run. Each
    /// slot its requests are admitted against the capacity ledger before
    /// the slot's cell traffic is scheduled.
    pub fn with_reservations(mut self, reservations: ReservationTraffic) -> Self {
        self.reservations = Some(reservations);
        self
    }

    /// Runs warmup + measurement and returns the report.
    pub fn run(mut self) -> Result<Report, Error> {
        let mut metrics = Metrics::new();
        let mut summary = ReservationSummary::default();
        let total = self.config.warmup_slots + self.config.measure_slots;
        // One request buffer and one result for the whole run: the slot loop
        // reuses them, so steady-state simulation is allocation-free.
        let mut requests = Vec::new();
        let mut arrivals = Vec::new();
        let mut result = wdm_interconnect::SlotResult::default();
        for slot in 0..total {
            if let Some(process) = self.reservations.as_mut() {
                process.generate_into(&mut self.rng, slot, &mut arrivals);
                for request in &arrivals {
                    summary.requested += 1;
                    match self.interconnect.reserve(*request) {
                        Ok(_) => summary.admitted += 1,
                        Err(Error::ReservationCapacityExhausted { .. }) => {
                            summary.denied_capacity += 1;
                        }
                        Err(Error::ReservationHorizonExceeded { .. }) => {
                            summary.denied_horizon += 1;
                        }
                        // The generator only emits future, in-range
                        // requests; anything else is a bug worth stopping
                        // the run for.
                        Err(other) => return Err(other),
                    }
                }
            }
            self.traffic.generate_into(&mut self.rng, slot, &mut requests);
            self.interconnect.advance_slot_into(&requests, &mut result)?;
            summary.grants += result.reservation_grants.len() as u64;
            summary.expiries += result.reservation_expired.len() as u64;
            if slot >= self.config.warmup_slots {
                metrics.record_slot(SlotObservation {
                    offered: result.offered(),
                    granted: result.grants.len(),
                    contention_losses: result.contention_losses(),
                    source_busy: result.source_busy_losses(),
                    completed: result.completed,
                    rearranged: result.rearranged,
                    active_now: self.interconnect.active_connections(),
                });
            }
        }
        Ok(Report {
            n: self.interconnect.n(),
            k: self.interconnect.k(),
            degree: self.interconnect.conversion().degree(),
            offered_load: self.traffic.offered_load(),
            metrics,
            reservations: summary,
            warm: self.interconnect.warm_stats().into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{BernoulliUniform, DurationModel};
    use wdm_core::Conversion;

    fn quick(n: usize, k: usize, conv: Conversion, p: f64) -> Report {
        let traffic = BernoulliUniform::new(n, k, p, DurationModel::Deterministic(1));
        let cfg = SimulationConfig { warmup_slots: 50, measure_slots: 500, seed: 1 };
        Simulation::new(InterconnectConfig::packet_switch(n, conv), traffic, cfg)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn zero_load_zero_everything() {
        let conv = Conversion::symmetric_circular(8, 3).unwrap();
        let report = quick(4, 8, conv, 0.0);
        assert_eq!(report.metrics.offered(), 0);
        assert_eq!(report.metrics.granted(), 0);
        assert_eq!(report.loss_probability(), 0.0);
    }

    #[test]
    fn low_load_is_nearly_lossless() {
        let conv = Conversion::symmetric_circular(8, 3).unwrap();
        let report = quick(4, 8, conv, 0.05);
        assert!(report.loss_probability() < 0.02, "loss {}", report.loss_probability());
    }

    #[test]
    fn conservation_offered_equals_granted_plus_lost() {
        let conv = Conversion::symmetric_circular(8, 3).unwrap();
        let report = quick(4, 8, conv, 0.7);
        let m = &report.metrics;
        assert_eq!(m.offered(), m.granted() + m.contention_losses() + m.source_busy());
    }

    #[test]
    fn more_conversion_never_hurts() {
        // The headline qualitative result: throughput is monotone in d.
        let k = 8;
        let loss_of = |conv: Conversion| quick(4, k, conv, 0.9).loss_probability();
        let none = loss_of(Conversion::none(k).unwrap());
        let d3 = loss_of(Conversion::symmetric_circular(k, 3).unwrap());
        let full = loss_of(Conversion::full(k).unwrap());
        assert!(d3 <= none + 0.02, "d=3 {d3} vs none {none}");
        assert!(full <= d3 + 0.02, "full {full} vs d=3 {d3}");
        assert!(none > full, "conversion must help at 0.9 load");
    }

    #[test]
    fn deterministic_given_seed() {
        let conv = Conversion::symmetric_circular(4, 3).unwrap();
        let run = || {
            let traffic = BernoulliUniform::new(2, 4, 0.5, DurationModel::Deterministic(1));
            let cfg = SimulationConfig { warmup_slots: 10, measure_slots: 100, seed: 99 };
            Simulation::new(InterconnectConfig::packet_switch(2, conv), traffic, cfg)
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.granted(), b.metrics.granted());
        assert_eq!(a.metrics.offered(), b.metrics.offered());
    }

    #[test]
    fn coherent_traffic_runs_mostly_on_the_repair_path() {
        use crate::traffic::CoherentStreams;
        let (n, k) = (4, 16);
        let conv = Conversion::symmetric_circular(k, 3).unwrap();
        let traffic = CoherentStreams::new(n, k, 0.6, 32.0);
        let cfg = SimulationConfig { warmup_slots: 100, measure_slots: 1000, seed: 11 };
        let report = Simulation::new(InterconnectConfig::packet_switch(n, conv), traffic, cfg)
            .unwrap()
            .run()
            .unwrap();
        // Long-lived streams mean the slot-to-slot request diff is tiny, so
        // nearly every fiber slot after the first should repair in budget.
        assert!(
            report.warm.repair_rate() > 0.8,
            "repair rate {:.3} (warm {:?})",
            report.warm.repair_rate(),
            report.warm
        );
        assert!(report.metrics.granted() > 0);
    }

    #[test]
    fn incoherent_traffic_still_reports_warm_counters() {
        let conv = Conversion::symmetric_circular(8, 3).unwrap();
        let report = quick(4, 8, conv, 0.5);
        let w = report.warm;
        // Every per-fiber slot lands in exactly one bucket.
        assert_eq!(w.repaired + w.fallback + w.cold, (550 * 4) as u64);
    }

    #[test]
    fn mixed_reservation_run_accounts_for_every_hold() {
        use crate::traffic::ReservationTraffic;
        let conv = Conversion::symmetric_circular(8, 3).unwrap();
        let traffic = BernoulliUniform::new(4, 8, 0.3, DurationModel::Deterministic(1));
        let process = ReservationTraffic::new(4, 8, 1.0, 5, DurationModel::Geometric { mean: 3.0 });
        let cfg = SimulationConfig { warmup_slots: 50, measure_slots: 1000, seed: 7 };
        let report = Simulation::new(InterconnectConfig::packet_switch(4, conv), traffic, cfg)
            .unwrap()
            .with_reservations(process)
            .run()
            .unwrap();
        let r = &report.reservations;
        assert!(r.requested > 900, "rate 1.0 over 1050 slots: {} requested", r.requested);
        assert_eq!(r.requested, r.admitted + r.denied_capacity + r.denied_horizon);
        assert!(r.grants > 0, "holds must activate under 0.3 cell load");
        // Holds whose start slot lies beyond the run's end stay pending.
        assert!(r.grants + r.expiries <= r.admitted);
        assert!(r.admitted - (r.grants + r.expiries) <= 10, "only tail holds stay pending");
        let b = r.blocking_probability();
        assert!((0.0..1.0).contains(&b), "blocking {b}");
    }

    #[test]
    fn reservation_run_deterministic_given_seed() {
        use crate::traffic::ReservationTraffic;
        let conv = Conversion::symmetric_circular(4, 3).unwrap();
        let run = || {
            let traffic = BernoulliUniform::new(2, 4, 0.4, DurationModel::Deterministic(1));
            let process = ReservationTraffic::new(2, 4, 0.5, 4, DurationModel::Deterministic(3));
            let cfg = SimulationConfig { warmup_slots: 10, measure_slots: 300, seed: 99 };
            Simulation::new(InterconnectConfig::packet_switch(2, conv), traffic, cfg)
                .unwrap()
                .with_reservations(process)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.reservations, b.reservations);
        assert_eq!(a.metrics.granted(), b.metrics.granted());
    }

    #[test]
    fn no_reservation_process_reports_zeros() {
        let conv = Conversion::full(4).unwrap();
        let report = quick(4, 4, conv, 0.2);
        assert_eq!(report.reservations, ReservationSummary::default());
        assert_eq!(report.reservations.blocking_probability(), 0.0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let conv = Conversion::full(4).unwrap();
        let traffic = BernoulliUniform::new(3, 4, 0.5, DurationModel::Deterministic(1));
        assert!(Simulation::new(
            InterconnectConfig::packet_switch(2, conv),
            traffic,
            SimulationConfig::default()
        )
        .is_err());
        let traffic = BernoulliUniform::new(2, 5, 0.5, DurationModel::Deterministic(1));
        assert!(Simulation::new(
            InterconnectConfig::packet_switch(2, conv),
            traffic,
            SimulationConfig::default()
        )
        .is_err());
    }
}
