//! Sweep coordination primitives, model-checkable under loom.
//!
//! [`experiment::run_sweep_with_threads`](crate::experiment::run_sweep_with_threads)
//! coordinates its persistent workers with exactly two shared structures,
//! both defined here so the protocol is isolated from the simulation code
//! and small enough to model-check exhaustively:
//!
//! * [`ChunkCursor`] — a single atomic cursor over the grid; each
//!   [`ChunkCursor::claim`] hands the calling worker a contiguous chunk of
//!   indices that no other worker can observe (the `fetch_add` is the
//!   linearization point);
//! * [`SlotBoard`] — one result slot per grid index; each worker writes the
//!   slot for every index it claimed, and the board is drained only after
//!   all workers have been joined.
//!
//! Under `--cfg loom` (set by `cargo xtask loom` via `RUSTFLAGS`), the
//! atomics and mutexes below come from the in-tree `loom` shim instead of
//! `std`, and `wdm-sim/tests/loom_sweep.rs` explores **every** sequentially
//! consistent interleaving of the worker protocol, proving:
//!
//! 1. **no double-claim** — the claimed chunks are pairwise disjoint;
//! 2. **no lost slot** — the claimed chunks cover the whole grid;
//! 3. **written-before-joined** — after the join, every slot holds a result.
//!
//! The loom shim explores sequentially consistent interleavings only; the
//! ThreadSanitizer CI job (`cargo xtask tsan`) complements it on real
//! weak-memory hardware.

use core::ops::Range;

#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::Mutex;

/// A shared work cursor handing out contiguous index chunks of a fixed-size
/// grid. Cheap enough to sit in the sweep's inner loop: one `fetch_add` per
/// chunk, not per index.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// A cursor over `0..len` handing out chunks of at most `chunk`
    /// indices (`chunk` is clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> ChunkCursor {
        ChunkCursor { next: AtomicUsize::new(0), len, chunk: chunk.max(1) }
    }

    /// The chunk size used by the sweep: a few chunks per worker balances
    /// claim overhead against cost skew between grid points (a full-range
    /// point finishes long before a circular one at the same load).
    pub fn balanced_chunk(len: usize, workers: usize) -> usize {
        len.div_ceil(workers.max(1) * 4).max(1)
    }

    /// Claims the next chunk, or `None` once the grid is exhausted.
    ///
    /// The single `fetch_add` is the linearization point: two claimants can
    /// never observe overlapping ranges, and every index below `len` is
    /// covered by exactly one returned range. `Relaxed` suffices because
    /// the cursor orders nothing but itself — result visibility is carried
    /// by the [`SlotBoard`] locks and the thread join.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Number of indices the cursor hands out in total.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cursor has nothing to hand out at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One write-once result slot per grid index.
///
/// Workers fill disjoint slot sets (the indices they claimed from the
/// [`ChunkCursor`]), so the per-slot mutexes are never contended; they exist
/// to make the cross-thread writes safe without `unsafe` code, and their
/// cost is irrelevant next to a simulation run. Results leave the board only
/// through [`SlotBoard::into_rows`], which consumes it — the caller must
/// have joined the workers to get the board back by value, which is exactly
/// the written-before-joined discipline the loom model checks.
#[derive(Debug)]
pub struct SlotBoard<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> SlotBoard<T> {
    /// A board of `len` empty slots.
    pub fn new(len: usize) -> SlotBoard<T> {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || Mutex::new(None));
        SlotBoard { slots }
    }

    /// Writes the result for slot `index`; returns `false` if the slot was
    /// already filled (a protocol violation — the caller asserts on it).
    pub fn put(&self, index: usize, value: T) -> bool {
        let Ok(mut slot) = self.slots[index].lock() else {
            // Poisoned: a sibling worker panicked mid-write. The sweep is
            // already failing; refuse the slot so the caller's assert trips.
            return false;
        };
        if slot.is_some() {
            return false;
        }
        *slot = Some(value);
        true
    }

    /// Drains the board into grid order. Call after joining the workers;
    /// unfilled slots come out as `None`.
    pub fn into_rows(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(|m| m.into_inner().unwrap_or(None)).collect()
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::{ChunkCursor, SlotBoard};

    #[test]
    fn claims_are_ordered_disjoint_and_exhaustive() {
        let cursor = ChunkCursor::new(10, 3);
        assert_eq!(cursor.claim(), Some(0..3));
        assert_eq!(cursor.claim(), Some(3..6));
        assert_eq!(cursor.claim(), Some(6..9));
        assert_eq!(cursor.claim(), Some(9..10), "final chunk is clipped to len");
        assert_eq!(cursor.claim(), None);
        assert_eq!(cursor.claim(), None, "exhaustion is sticky");
    }

    #[test]
    fn empty_grid_claims_nothing() {
        let cursor = ChunkCursor::new(0, 4);
        assert!(cursor.is_empty());
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn zero_chunk_is_clamped_to_one() {
        let cursor = ChunkCursor::new(2, 0);
        assert_eq!(cursor.claim(), Some(0..1));
        assert_eq!(cursor.claim(), Some(1..2));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn balanced_chunk_gives_a_few_chunks_per_worker() {
        assert_eq!(ChunkCursor::balanced_chunk(64, 4), 4);
        assert_eq!(ChunkCursor::balanced_chunk(3, 8), 1, "never zero");
        assert_eq!(ChunkCursor::balanced_chunk(0, 4), 1, "empty grid still valid");
        assert_eq!(ChunkCursor::balanced_chunk(64, 0), 16, "workers clamped to one");
    }

    #[test]
    fn slot_board_rejects_double_writes_and_drains_in_order() {
        let board: SlotBoard<&str> = SlotBoard::new(3);
        assert!(board.put(1, "b"));
        assert!(!board.put(1, "b again"), "second write to a slot is refused");
        assert!(board.put(0, "a"));
        assert_eq!(board.into_rows(), vec![Some("a"), Some("b"), None]);
    }

    #[test]
    fn threaded_claims_partition_the_grid() {
        // Deterministic-outcome concurrency smoke test (the exhaustive
        // version lives in tests/loom_sweep.rs): whatever the interleaving,
        // the claims must partition 0..len and every slot must get written.
        let len = 23;
        let cursor = ChunkCursor::new(len, 2);
        let board: SlotBoard<usize> = SlotBoard::new(len);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(range) = cursor.claim() {
                        for i in range {
                            assert!(board.put(i, i), "slot {i} claimed twice");
                        }
                    }
                });
            }
        });
        let rows = board.into_rows();
        assert_eq!(rows.len(), len);
        for (i, row) in rows.into_iter().enumerate() {
            assert_eq!(row, Some(i), "slot {i} lost");
        }
    }
}
