//! Record/replay session traces — the differential contract between the
//! `wdm-serve` daemon and the offline engine.
//!
//! A [`SessionTrace`] captures, per slot, exactly the request list the
//! daemon's coordinator fed to its engine (in coordinator processing order)
//! plus the grant stream it served back (fiber order, resolver order within
//! a fiber, numbered by per-slot sequence). Because the daemon and
//! [`Interconnect`] run the *same* `FiberUnit` decision path, replaying the
//! recorded inputs through a fresh offline engine must reproduce the grant
//! stream bit for bit; [`SessionTrace::replay`] asserts that and reports the
//! first divergence otherwise. This is the server's differential test — a
//! shard-ordering bug, a dropped request, or a resolver-state leak all show
//! up as a [`ReplayError`].

use core::fmt;

use serde::{Deserialize, Serialize};
use wdm_core::{Conversion, Error, Policy};
use wdm_interconnect::{
    ConnectionRequest, Grant, Interconnect, InterconnectConfig, PreemptionPolicy, Reservation,
    ReservationGrant, ReservationRequest, DEFAULT_RESERVATION_HORIZON,
};

/// The engine configuration a trace was recorded under — everything needed
/// to rebuild an identical [`Interconnect`] offline.
///
/// `Deserialize` is hand-written: the reservation fields default when
/// absent so pre-reservation (protocol v1 era) traces still parse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceConfig {
    /// Number of input = output fibers (`N`).
    pub n: usize,
    /// Wavelengths per fiber (`k`).
    pub k: usize,
    /// Wavelengths convertible on the "minus" side.
    pub e: usize,
    /// Wavelengths convertible on the "plus" side.
    pub f: usize,
    /// Conversion kind: `"circular"`, `"non_circular"`, or `"full"`.
    pub kind: String,
    /// Scheduling policy short name ([`Policy::name`]).
    pub policy: String,
    /// Advance-reservation admission horizon in slots (defaults keep
    /// pre-reservation traces parseable).
    pub reservation_horizon: u64,
    /// Preemption policy short name: `"reserved_first"` or `"compete"`.
    pub preemption: String,
}

fn default_horizon() -> u64 {
    DEFAULT_RESERVATION_HORIZON
}

fn default_preemption() -> String {
    "reserved_first".to_owned()
}

/// Looks up an optional struct field in a decoded map.
fn optional_field<'v>(
    entries: &'v [(String, serde::Value)],
    name: &str,
) -> Option<&'v serde::Value> {
    entries.iter().find(|(key, _)| key == name).map(|(_, value)| value)
}

impl serde::Deserialize for TraceConfig {
    fn from_value(value: &serde::Value) -> Result<TraceConfig, serde::DeError> {
        let Some(entries) = value.as_map() else {
            return Err(serde::DeError::expected("map", "TraceConfig", value));
        };
        Ok(TraceConfig {
            n: serde::Deserialize::from_value(serde::struct_field(entries, "n", "TraceConfig")?)?,
            k: serde::Deserialize::from_value(serde::struct_field(entries, "k", "TraceConfig")?)?,
            e: serde::Deserialize::from_value(serde::struct_field(entries, "e", "TraceConfig")?)?,
            f: serde::Deserialize::from_value(serde::struct_field(entries, "f", "TraceConfig")?)?,
            kind: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "kind",
                "TraceConfig",
            )?)?,
            policy: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "policy",
                "TraceConfig",
            )?)?,
            reservation_horizon: optional_field(entries, "reservation_horizon")
                .map(serde::Deserialize::from_value)
                .transpose()?
                .unwrap_or_else(default_horizon),
            preemption: optional_field(entries, "preemption")
                .map(serde::Deserialize::from_value)
                .transpose()?
                .unwrap_or_else(default_preemption),
        })
    }
}

impl TraceConfig {
    /// Describes a circular-conversion engine.
    pub fn circular(n: usize, k: usize, e: usize, f: usize, policy: Policy) -> TraceConfig {
        TraceConfig {
            n,
            k,
            e,
            f,
            kind: "circular".to_owned(),
            policy: policy.name().to_owned(),
            reservation_horizon: default_horizon(),
            preemption: default_preemption(),
        }
    }

    /// Describes a non-circular-conversion engine.
    pub fn non_circular(n: usize, k: usize, e: usize, f: usize, policy: Policy) -> TraceConfig {
        TraceConfig {
            n,
            k,
            e,
            f,
            kind: "non_circular".to_owned(),
            policy: policy.name().to_owned(),
            reservation_horizon: default_horizon(),
            preemption: default_preemption(),
        }
    }

    /// The preemption policy this trace was recorded under.
    pub fn preemption_policy(&self) -> Result<PreemptionPolicy, Error> {
        match self.preemption.as_str() {
            "reserved_first" => Ok(PreemptionPolicy::ReservedFirst),
            "compete" => Ok(PreemptionPolicy::Compete),
            other => Err(Error::UnknownPolicy { name: format!("preemption policy `{other}`") }),
        }
    }

    /// The conversion scheme this trace was recorded under.
    pub fn conversion(&self) -> Result<Conversion, Error> {
        match self.kind.as_str() {
            "circular" => Conversion::circular(self.k, self.e, self.f),
            "non_circular" => Conversion::non_circular(self.k, self.e, self.f),
            "full" => Conversion::full(self.k),
            other => Err(Error::UnknownPolicy { name: format!("conversion kind `{other}`") }),
        }
    }

    /// Builds a fresh offline engine matching this configuration.
    pub fn build_engine(&self) -> Result<Interconnect, Error> {
        let conversion = self.conversion()?;
        let policy: Policy = self.policy.parse()?;
        Interconnect::new(
            InterconnectConfig::packet_switch(self.n, conversion)
                .with_policy(policy)
                .with_reservation_horizon(self.reservation_horizon)
                .with_preemption(self.preemption_policy()?),
        )
    }
}

/// One connection request as recorded on the wire (a serializable mirror of
/// [`ConnectionRequest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Wavelength the request arrives on.
    pub src_wavelength: usize,
    /// Destination output fiber.
    pub dst_fiber: usize,
    /// Slots the connection holds once granted.
    pub duration: u32,
}

impl From<ConnectionRequest> for TraceRequest {
    fn from(r: ConnectionRequest) -> TraceRequest {
        TraceRequest {
            src_fiber: r.src_fiber,
            src_wavelength: r.src_wavelength,
            dst_fiber: r.dst_fiber,
            duration: r.duration,
        }
    }
}

impl From<TraceRequest> for ConnectionRequest {
    fn from(r: TraceRequest) -> ConnectionRequest {
        ConnectionRequest {
            src_fiber: r.src_fiber,
            src_wavelength: r.src_wavelength,
            dst_fiber: r.dst_fiber,
            duration: r.duration,
        }
    }
}

/// One served grant: the per-slot sequence number the daemon stamped on the
/// GRANT frame, the granted request, and the assigned output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGrant {
    /// Position in the slot's grant stream (0-based).
    pub seq: u64,
    /// The granted request.
    pub request: TraceRequest,
    /// The output wavelength channel assigned on `request.dst_fiber`.
    pub output_wavelength: usize,
}

/// One admitted advance reservation as recorded (a serializable mirror of
/// [`Reservation`], with the store-assigned id the replay must reproduce).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReservation {
    /// The store-assigned reservation id at admission.
    pub id: u64,
    /// Source input fiber.
    pub src_fiber: usize,
    /// Wavelength the connection arrives on.
    pub src_wavelength: usize,
    /// Destination output fiber.
    pub dst_fiber: usize,
    /// Absolute slot the hold activates.
    pub start_slot: u64,
    /// Slots the connection holds once activated.
    pub duration: u32,
}

impl From<Reservation> for TraceReservation {
    fn from(r: Reservation) -> TraceReservation {
        TraceReservation {
            id: r.id,
            src_fiber: r.request.src_fiber,
            src_wavelength: r.request.src_wavelength,
            dst_fiber: r.request.dst_fiber,
            start_slot: r.request.start_slot,
            duration: r.request.duration,
        }
    }
}

impl TraceReservation {
    /// The store-facing request this record was admitted from.
    pub fn request(&self) -> ReservationRequest {
        ReservationRequest {
            src_fiber: self.src_fiber,
            src_wavelength: self.src_wavelength,
            dst_fiber: self.dst_fiber,
            start_slot: self.start_slot,
            duration: self.duration,
        }
    }
}

/// One reservation-ledger mutation, in the order the coordinator applied
/// it. Order matters: a release freeing capacity before a reserve in the
/// same slot window changes the admission verdict, so the two event kinds
/// share one ordered list. Only *successful* admissions and cancellations
/// are recorded — denied requests leave no ledger state behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceReservationEvent {
    /// A reservation was admitted into the ledger.
    Reserve(TraceReservation),
    /// A pending reservation was cancelled.
    Release {
        /// The store-assigned id being cancelled.
        id: u64,
    },
}

/// One activated reservation's grant: which reservation, and the output
/// channel its hold received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReservationGrant {
    /// The store-assigned reservation id.
    pub reservation: u64,
    /// The output wavelength channel assigned on the destination fiber.
    pub output_wavelength: usize,
}

/// Everything one slot did: the coordinator's input list (processing order,
/// *before* source-busy admission — the engine re-derives rejections) and
/// the grant stream served back.
///
/// `Deserialize` is hand-written: the reservation vectors default to empty
/// when absent so pre-reservation traces still parse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceSlot {
    /// Slot number (0-based, dense).
    pub slot: u64,
    /// Requests fed to the engine this slot, in coordinator order.
    pub inputs: Vec<TraceRequest>,
    /// Grants served this slot, in sequence order.
    pub grants: Vec<TraceGrant>,
    /// Reservation-ledger mutations applied during this slot window (after
    /// slot `slot - 1` ran, before this slot), in application order.
    pub reservations: Vec<TraceReservationEvent>,
    /// Reservations that activated and were granted this slot, in stream
    /// order. (Expiries are re-derived on replay, like cell rejections.)
    pub reservation_grants: Vec<TraceReservationGrant>,
}

impl serde::Deserialize for TraceSlot {
    fn from_value(value: &serde::Value) -> Result<TraceSlot, serde::DeError> {
        let Some(entries) = value.as_map() else {
            return Err(serde::DeError::expected("map", "TraceSlot", value));
        };
        Ok(TraceSlot {
            slot: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "slot",
                "TraceSlot",
            )?)?,
            inputs: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "inputs",
                "TraceSlot",
            )?)?,
            grants: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "grants",
                "TraceSlot",
            )?)?,
            reservations: optional_field(entries, "reservations")
                .map(serde::Deserialize::from_value)
                .transpose()?
                .unwrap_or_default(),
            reservation_grants: optional_field(entries, "reservation_grants")
                .map(serde::Deserialize::from_value)
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

/// A recorded daemon session: configuration plus the per-slot input/grant
/// streams, replayable offline bit for bit.
///
/// Serialization is hand-written: only `config` and `slots` cross the
/// JSON boundary; the pending-event buffer is transient recording state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTrace {
    /// The engine configuration the session ran under.
    pub config: TraceConfig,
    /// The recorded slots, in slot order.
    pub slots: Vec<TraceSlot>,
    /// Ledger mutations seen since the last [`Self::record_slot`], waiting
    /// to be flushed into the next recorded slot.
    pending_reservations: Vec<TraceReservationEvent>,
}

impl Serialize for SessionTrace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("config".to_owned(), self.config.to_value()),
            ("slots".to_owned(), self.slots.to_value()),
        ])
    }
}

impl Deserialize for SessionTrace {
    fn from_value(value: &serde::Value) -> Result<SessionTrace, serde::DeError> {
        let Some(entries) = value.as_map() else {
            return Err(serde::DeError::expected("map", "SessionTrace", value));
        };
        Ok(SessionTrace {
            config: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "config",
                "SessionTrace",
            )?)?,
            slots: serde::Deserialize::from_value(serde::struct_field(
                entries,
                "slots",
                "SessionTrace",
            )?)?,
            pending_reservations: Vec::new(),
        })
    }
}

/// Summary of a successful replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct ReplayReport {
    /// Slots replayed.
    pub slots: usize,
    /// Grants compared (all bit-identical).
    pub grants: usize,
    /// Reservation grants compared (all bit-identical).
    pub reservation_grants: usize,
}

/// Why a replay diverged from the recorded session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace's configuration could not rebuild an engine, or a recorded
    /// input was invalid for it.
    Setup(Error),
    /// A slot granted a different number of requests than recorded.
    GrantCountMismatch {
        /// The diverging slot.
        slot: u64,
        /// Grants in the recorded stream.
        recorded: usize,
        /// Grants the offline engine produced.
        replayed: usize,
    },
    /// A grant differs from the recorded one at the same sequence number.
    GrantMismatch {
        /// The diverging slot.
        slot: u64,
        /// The recorded grant.
        recorded: TraceGrant,
        /// What the offline engine produced at that sequence number.
        replayed: TraceGrant,
    },
    /// A recorded reservation admission diverged: replay denied it, or
    /// assigned a different ledger id.
    ReservationAdmissionDiverged {
        /// The slot window the admission was recorded in.
        slot: u64,
        /// The recorded ledger id.
        recorded: u64,
        /// The id replay assigned (`None` = replay denied admission).
        replayed: Option<u64>,
    },
    /// A recorded cancellation found nothing to cancel on replay.
    ReservationReleaseDiverged {
        /// The slot window the cancellation was recorded in.
        slot: u64,
        /// The ledger id that was cancelled at recording time.
        id: u64,
    },
    /// The reservation-grant stream differs from the recorded one.
    ReservationGrantMismatch {
        /// The diverging slot.
        slot: u64,
        /// Stream position of the first divergence.
        index: usize,
        /// The recorded grant at that position (`None` = replay produced
        /// extra grants).
        recorded: Option<TraceReservationGrant>,
        /// What replay produced there (`None` = replay granted fewer).
        replayed: Option<TraceReservationGrant>,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Setup(e) => write!(out, "trace cannot rebuild its engine: {e}"),
            ReplayError::GrantCountMismatch { slot, recorded, replayed } => write!(
                out,
                "slot {slot}: recorded {recorded} grants but replay produced {replayed}"
            ),
            ReplayError::GrantMismatch { slot, recorded, replayed } => write!(
                out,
                "slot {slot} seq {}: recorded {recorded:?} but replay produced {replayed:?}",
                recorded.seq
            ),
            ReplayError::ReservationAdmissionDiverged { slot, recorded, replayed } => write!(
                out,
                "slot {slot}: recorded reservation admission with id {recorded}, \
                 but replay produced {replayed:?}"
            ),
            ReplayError::ReservationReleaseDiverged { slot, id } => write!(
                out,
                "slot {slot}: recorded release of reservation {id} found nothing on replay"
            ),
            ReplayError::ReservationGrantMismatch { slot, index, recorded, replayed } => write!(
                out,
                "slot {slot} reservation-grant {index}: recorded {recorded:?} \
                 but replay produced {replayed:?}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<Error> for ReplayError {
    fn from(e: Error) -> ReplayError {
        ReplayError::Setup(e)
    }
}

impl SessionTrace {
    /// An empty trace for the given configuration.
    pub fn new(config: TraceConfig) -> SessionTrace {
        SessionTrace { config, slots: Vec::new(), pending_reservations: Vec::new() }
    }

    /// Records a successful reservation admission. Buffered until the next
    /// [`Self::record_slot`] flushes it, preserving its order relative to
    /// releases in the same slot window.
    pub fn record_reservation(&mut self, reservation: Reservation) {
        self.pending_reservations.push(TraceReservationEvent::Reserve(reservation.into()));
    }

    /// Records a successful cancellation of a pending reservation.
    pub fn record_release(&mut self, id: u64) {
        self.pending_reservations.push(TraceReservationEvent::Release { id });
    }

    /// Appends one slot: the engine inputs in coordinator order and the
    /// grant stream served back (sequence numbers are assigned here, in
    /// stream order).
    pub fn record_slot(&mut self, inputs: &[ConnectionRequest], grants: &[Grant]) {
        self.record_slot_full(inputs, grants, &[]);
    }

    /// Appends one slot including its activated-reservation grant stream;
    /// buffered ledger events since the previous slot flush into it.
    #[wdm_attr::allow_reach(
        hot_path,
        reason = "session tracing is opt-in diagnostics (engine trace: Option, None by default); benched and served configurations never reach it"
    )]
    pub fn record_slot_full(
        &mut self,
        inputs: &[ConnectionRequest],
        grants: &[Grant],
        reservation_grants: &[ReservationGrant],
    ) {
        let slot = self.slots.len() as u64;
        self.slots.push(TraceSlot {
            slot,
            inputs: inputs.iter().map(|&r| TraceRequest::from(r)).collect(),
            grants: grants
                .iter()
                .enumerate()
                .map(|(seq, g)| TraceGrant {
                    seq: seq as u64,
                    request: TraceRequest::from(g.request),
                    output_wavelength: g.output_wavelength,
                })
                .collect(),
            reservations: core::mem::take(&mut self.pending_reservations),
            reservation_grants: reservation_grants
                .iter()
                .map(|g| TraceReservationGrant {
                    reservation: g.reservation,
                    output_wavelength: g.grant.output_wavelength,
                })
                .collect(),
        });
    }

    /// Total grants recorded across all slots.
    pub fn grant_count(&self) -> usize {
        self.slots.iter().map(|s| s.grants.len()).sum()
    }

    /// Replays the recorded inputs through a fresh offline engine and
    /// compares the resulting grant stream bit for bit against the recorded
    /// one. Returns the first divergence, if any.
    pub fn replay(&self) -> Result<ReplayReport, ReplayError> {
        let mut engine = self.config.build_engine()?;
        let mut inputs: Vec<ConnectionRequest> = Vec::new();
        let mut grants = 0usize;
        let mut reservation_grants = 0usize;
        for recorded in &self.slots {
            for event in &recorded.reservations {
                match event {
                    TraceReservationEvent::Reserve(r) => {
                        let replayed = engine.reserve(r.request()).ok();
                        if replayed != Some(r.id) {
                            return Err(ReplayError::ReservationAdmissionDiverged {
                                slot: recorded.slot,
                                recorded: r.id,
                                replayed,
                            });
                        }
                    }
                    TraceReservationEvent::Release { id } => {
                        if !engine.cancel_reservation(*id) {
                            return Err(ReplayError::ReservationReleaseDiverged {
                                slot: recorded.slot,
                                id: *id,
                            });
                        }
                    }
                }
            }
            inputs.clear();
            inputs.extend(recorded.inputs.iter().map(|&r| ConnectionRequest::from(r)));
            let result = engine.advance_slot(&inputs)?;
            let replayed_rg: Vec<TraceReservationGrant> = result
                .reservation_grants
                .iter()
                .map(|g| TraceReservationGrant {
                    reservation: g.reservation,
                    output_wavelength: g.grant.output_wavelength,
                })
                .collect();
            for index in 0..recorded.reservation_grants.len().max(replayed_rg.len()) {
                let rec = recorded.reservation_grants.get(index).copied();
                let got = replayed_rg.get(index).copied();
                if rec != got {
                    return Err(ReplayError::ReservationGrantMismatch {
                        slot: recorded.slot,
                        index,
                        recorded: rec,
                        replayed: got,
                    });
                }
                reservation_grants += 1;
            }
            if result.grants.len() != recorded.grants.len() {
                return Err(ReplayError::GrantCountMismatch {
                    slot: recorded.slot,
                    recorded: recorded.grants.len(),
                    replayed: result.grants.len(),
                });
            }
            for (seq, (rec, got)) in recorded.grants.iter().zip(&result.grants).enumerate() {
                let got = TraceGrant {
                    seq: seq as u64,
                    request: TraceRequest::from(got.request),
                    output_wavelength: got.output_wavelength,
                };
                if *rec != got {
                    return Err(ReplayError::GrantMismatch {
                        slot: recorded.slot,
                        recorded: *rec,
                        replayed: got,
                    });
                }
                grants += 1;
            }
        }
        Ok(ReplayReport { slots: self.slots.len(), grants, reservation_grants })
    }

    /// Serializes the trace to pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace from JSON.
    pub fn from_json(text: &str) -> Result<SessionTrace, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded_session(policy: Policy) -> SessionTrace {
        let config = TraceConfig::circular(4, 6, 1, 1, policy);
        let mut engine = config.build_engine().unwrap();
        let mut trace = SessionTrace::new(config);
        for slot in 0..20u64 {
            let inputs: Vec<ConnectionRequest> = (0..4usize)
                .flat_map(|fiber| {
                    (0..6usize).filter_map(move |w| {
                        let h = fiber * 13 + w * 5 + slot as usize * 11;
                        (h % 3 == 0).then(|| {
                            ConnectionRequest::burst(fiber, w, (fiber + w) % 4, 1 + (h % 3) as u32)
                        })
                    })
                })
                .collect();
            let result = engine.advance_slot(&inputs).unwrap();
            trace.record_slot(&inputs, &result.grants);
        }
        trace
    }

    #[test]
    fn replay_matches_recording() {
        for policy in [Policy::BreakFirstAvailable, Policy::Approximate, Policy::Auto] {
            let trace = recorded_session(policy);
            assert!(trace.grant_count() > 0);
            let report = trace.replay().unwrap();
            assert_eq!(report.slots, 20);
            assert_eq!(report.grants, trace.grant_count());
        }
    }

    #[test]
    fn tampered_grant_detected() {
        let mut trace = recorded_session(Policy::Auto);
        let slot = trace.slots.iter_mut().find(|s| !s.grants.is_empty()).unwrap();
        slot.grants[0].output_wavelength ^= 1;
        assert!(matches!(trace.replay(), Err(ReplayError::GrantMismatch { .. })));
    }

    #[test]
    fn dropped_grant_detected() {
        let mut trace = recorded_session(Policy::Auto);
        let slot = trace.slots.iter_mut().find(|s| !s.grants.is_empty()).unwrap();
        slot.grants.pop();
        assert!(matches!(trace.replay(), Err(ReplayError::GrantCountMismatch { .. })));
    }

    #[test]
    fn json_round_trip() {
        let trace = recorded_session(Policy::BreakFirstAvailable);
        let json = trace.to_json().unwrap();
        let back = SessionTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        let _ = back.replay().unwrap();
    }

    #[test]
    fn bad_config_is_setup_error() {
        let mut trace = recorded_session(Policy::Auto);
        trace.config.policy = "nonsense".to_owned();
        assert!(matches!(trace.replay(), Err(ReplayError::Setup(_))));
    }

    fn reservation_session() -> SessionTrace {
        let config = TraceConfig::circular(4, 6, 1, 1, Policy::Auto);
        let mut engine = config.build_engine().unwrap();
        let mut trace = SessionTrace::new(config);
        for slot in 0..20u64 {
            // A reservation every third slot, four slots ahead; cancel every
            // ninth slot's reservation two slots later (before it starts).
            if slot % 3 == 0 {
                let req = ReservationRequest {
                    src_fiber: (slot as usize / 3) % 4,
                    src_wavelength: (slot as usize) % 6,
                    dst_fiber: (slot as usize / 2) % 4,
                    start_slot: slot + 4,
                    duration: 2,
                };
                let id = engine.reserve(req).unwrap();
                trace.record_reservation(Reservation { id, request: req });
                if slot % 9 == 0 {
                    assert!(engine.cancel_reservation(id));
                    trace.record_release(id);
                }
            }
            let inputs: Vec<ConnectionRequest> = (0..4usize)
                .filter_map(|fiber| {
                    let h = fiber * 13 + slot as usize * 7;
                    (h % 2 == 0).then(|| ConnectionRequest::packet(fiber, h % 6, (fiber + 1) % 4))
                })
                .collect();
            let result = engine.advance_slot(&inputs).unwrap();
            trace.record_slot_full(&inputs, &result.grants, &result.reservation_grants);
        }
        trace
    }

    #[test]
    fn reservation_session_replays_bit_identically() {
        let trace = reservation_session();
        assert!(trace.slots.iter().any(|s| !s.reservations.is_empty()));
        assert!(trace.slots.iter().any(|s| !s.reservation_grants.is_empty()));
        let report = trace.replay().unwrap();
        assert_eq!(report.slots, 20);
        assert!(report.reservation_grants > 0);
    }

    #[test]
    fn tampered_reservation_grant_detected() {
        let mut trace = reservation_session();
        let slot = trace.slots.iter_mut().find(|s| !s.reservation_grants.is_empty()).unwrap();
        slot.reservation_grants[0].output_wavelength ^= 1;
        assert!(matches!(trace.replay(), Err(ReplayError::ReservationGrantMismatch { .. })));
    }

    #[test]
    fn tampered_reservation_id_detected() {
        let mut trace = reservation_session();
        let ev = trace
            .slots
            .iter_mut()
            .flat_map(|s| s.reservations.iter_mut())
            .find(|e| matches!(e, TraceReservationEvent::Reserve(_)))
            .unwrap();
        let TraceReservationEvent::Reserve(r) = ev else { unreachable!() };
        r.id += 100;
        assert!(matches!(trace.replay(), Err(ReplayError::ReservationAdmissionDiverged { .. })));
    }

    #[test]
    fn phantom_release_detected() {
        let mut trace = reservation_session();
        trace.slots[0].reservations.push(TraceReservationEvent::Release { id: 999 });
        assert!(matches!(
            trace.replay(),
            Err(ReplayError::ReservationReleaseDiverged { id: 999, .. })
        ));
    }

    #[test]
    fn pre_reservation_trace_json_still_parses() {
        // A v1-era trace has no reservation fields at all; defaults fill in.
        let json = r#"{
            "config": {"n": 2, "k": 4, "e": 1, "f": 1, "kind": "circular", "policy": "auto"},
            "slots": [{"slot": 0, "inputs": [], "grants": []}]
        }"#;
        let trace = SessionTrace::from_json(json).unwrap();
        assert_eq!(trace.config.reservation_horizon, DEFAULT_RESERVATION_HORIZON);
        assert_eq!(trace.config.preemption, "reserved_first");
        let report = trace.replay().unwrap();
        assert_eq!(report.slots, 1);
    }

    #[test]
    fn non_circular_config_builds() {
        let config = TraceConfig::non_circular(2, 8, 1, 1, Policy::FirstAvailable);
        let mut engine = config.build_engine().unwrap();
        let r = engine.advance_slot(&[ConnectionRequest::packet(0, 3, 1)]).unwrap();
        assert_eq!(r.grants.len(), 1);
    }
}
