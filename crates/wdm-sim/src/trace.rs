//! Record/replay session traces — the differential contract between the
//! `wdm-serve` daemon and the offline engine.
//!
//! A [`SessionTrace`] captures, per slot, exactly the request list the
//! daemon's coordinator fed to its engine (in coordinator processing order)
//! plus the grant stream it served back (fiber order, resolver order within
//! a fiber, numbered by per-slot sequence). Because the daemon and
//! [`Interconnect`] run the *same* `FiberUnit` decision path, replaying the
//! recorded inputs through a fresh offline engine must reproduce the grant
//! stream bit for bit; [`SessionTrace::replay`] asserts that and reports the
//! first divergence otherwise. This is the server's differential test — a
//! shard-ordering bug, a dropped request, or a resolver-state leak all show
//! up as a [`ReplayError`].

use core::fmt;

use serde::{Deserialize, Serialize};
use wdm_core::{Conversion, Error, Policy};
use wdm_interconnect::{ConnectionRequest, Grant, Interconnect, InterconnectConfig};

/// The engine configuration a trace was recorded under — everything needed
/// to rebuild an identical [`Interconnect`] offline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of input = output fibers (`N`).
    pub n: usize,
    /// Wavelengths per fiber (`k`).
    pub k: usize,
    /// Wavelengths convertible on the "minus" side.
    pub e: usize,
    /// Wavelengths convertible on the "plus" side.
    pub f: usize,
    /// Conversion kind: `"circular"`, `"non_circular"`, or `"full"`.
    pub kind: String,
    /// Scheduling policy short name ([`Policy::name`]).
    pub policy: String,
}

impl TraceConfig {
    /// Describes a circular-conversion engine.
    pub fn circular(n: usize, k: usize, e: usize, f: usize, policy: Policy) -> TraceConfig {
        TraceConfig { n, k, e, f, kind: "circular".to_owned(), policy: policy.name().to_owned() }
    }

    /// Describes a non-circular-conversion engine.
    pub fn non_circular(n: usize, k: usize, e: usize, f: usize, policy: Policy) -> TraceConfig {
        TraceConfig {
            n,
            k,
            e,
            f,
            kind: "non_circular".to_owned(),
            policy: policy.name().to_owned(),
        }
    }

    /// The conversion scheme this trace was recorded under.
    pub fn conversion(&self) -> Result<Conversion, Error> {
        match self.kind.as_str() {
            "circular" => Conversion::circular(self.k, self.e, self.f),
            "non_circular" => Conversion::non_circular(self.k, self.e, self.f),
            "full" => Conversion::full(self.k),
            other => Err(Error::UnknownPolicy { name: format!("conversion kind `{other}`") }),
        }
    }

    /// Builds a fresh offline engine matching this configuration.
    pub fn build_engine(&self) -> Result<Interconnect, Error> {
        let conversion = self.conversion()?;
        let policy: Policy = self.policy.parse()?;
        Interconnect::new(InterconnectConfig::packet_switch(self.n, conversion).with_policy(policy))
    }
}

/// One connection request as recorded on the wire (a serializable mirror of
/// [`ConnectionRequest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Wavelength the request arrives on.
    pub src_wavelength: usize,
    /// Destination output fiber.
    pub dst_fiber: usize,
    /// Slots the connection holds once granted.
    pub duration: u32,
}

impl From<ConnectionRequest> for TraceRequest {
    fn from(r: ConnectionRequest) -> TraceRequest {
        TraceRequest {
            src_fiber: r.src_fiber,
            src_wavelength: r.src_wavelength,
            dst_fiber: r.dst_fiber,
            duration: r.duration,
        }
    }
}

impl From<TraceRequest> for ConnectionRequest {
    fn from(r: TraceRequest) -> ConnectionRequest {
        ConnectionRequest {
            src_fiber: r.src_fiber,
            src_wavelength: r.src_wavelength,
            dst_fiber: r.dst_fiber,
            duration: r.duration,
        }
    }
}

/// One served grant: the per-slot sequence number the daemon stamped on the
/// GRANT frame, the granted request, and the assigned output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceGrant {
    /// Position in the slot's grant stream (0-based).
    pub seq: u64,
    /// The granted request.
    pub request: TraceRequest,
    /// The output wavelength channel assigned on `request.dst_fiber`.
    pub output_wavelength: usize,
}

/// Everything one slot did: the coordinator's input list (processing order,
/// *before* source-busy admission — the engine re-derives rejections) and
/// the grant stream served back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSlot {
    /// Slot number (0-based, dense).
    pub slot: u64,
    /// Requests fed to the engine this slot, in coordinator order.
    pub inputs: Vec<TraceRequest>,
    /// Grants served this slot, in sequence order.
    pub grants: Vec<TraceGrant>,
}

/// A recorded daemon session: configuration plus the per-slot input/grant
/// streams, replayable offline bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// The engine configuration the session ran under.
    pub config: TraceConfig,
    /// The recorded slots, in slot order.
    pub slots: Vec<TraceSlot>,
}

/// Summary of a successful replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[must_use]
pub struct ReplayReport {
    /// Slots replayed.
    pub slots: usize,
    /// Grants compared (all bit-identical).
    pub grants: usize,
}

/// Why a replay diverged from the recorded session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The trace's configuration could not rebuild an engine, or a recorded
    /// input was invalid for it.
    Setup(Error),
    /// A slot granted a different number of requests than recorded.
    GrantCountMismatch {
        /// The diverging slot.
        slot: u64,
        /// Grants in the recorded stream.
        recorded: usize,
        /// Grants the offline engine produced.
        replayed: usize,
    },
    /// A grant differs from the recorded one at the same sequence number.
    GrantMismatch {
        /// The diverging slot.
        slot: u64,
        /// The recorded grant.
        recorded: TraceGrant,
        /// What the offline engine produced at that sequence number.
        replayed: TraceGrant,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Setup(e) => write!(out, "trace cannot rebuild its engine: {e}"),
            ReplayError::GrantCountMismatch { slot, recorded, replayed } => write!(
                out,
                "slot {slot}: recorded {recorded} grants but replay produced {replayed}"
            ),
            ReplayError::GrantMismatch { slot, recorded, replayed } => write!(
                out,
                "slot {slot} seq {}: recorded {recorded:?} but replay produced {replayed:?}",
                recorded.seq
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<Error> for ReplayError {
    fn from(e: Error) -> ReplayError {
        ReplayError::Setup(e)
    }
}

impl SessionTrace {
    /// An empty trace for the given configuration.
    pub fn new(config: TraceConfig) -> SessionTrace {
        SessionTrace { config, slots: Vec::new() }
    }

    /// Appends one slot: the engine inputs in coordinator order and the
    /// grant stream served back (sequence numbers are assigned here, in
    /// stream order).
    pub fn record_slot(&mut self, inputs: &[ConnectionRequest], grants: &[Grant]) {
        let slot = self.slots.len() as u64;
        self.slots.push(TraceSlot {
            slot,
            inputs: inputs.iter().map(|&r| TraceRequest::from(r)).collect(),
            grants: grants
                .iter()
                .enumerate()
                .map(|(seq, g)| TraceGrant {
                    seq: seq as u64,
                    request: TraceRequest::from(g.request),
                    output_wavelength: g.output_wavelength,
                })
                .collect(),
        });
    }

    /// Total grants recorded across all slots.
    pub fn grant_count(&self) -> usize {
        self.slots.iter().map(|s| s.grants.len()).sum()
    }

    /// Replays the recorded inputs through a fresh offline engine and
    /// compares the resulting grant stream bit for bit against the recorded
    /// one. Returns the first divergence, if any.
    pub fn replay(&self) -> Result<ReplayReport, ReplayError> {
        let mut engine = self.config.build_engine()?;
        let mut inputs: Vec<ConnectionRequest> = Vec::new();
        let mut grants = 0usize;
        for recorded in &self.slots {
            inputs.clear();
            inputs.extend(recorded.inputs.iter().map(|&r| ConnectionRequest::from(r)));
            let result = engine.advance_slot(&inputs)?;
            if result.grants.len() != recorded.grants.len() {
                return Err(ReplayError::GrantCountMismatch {
                    slot: recorded.slot,
                    recorded: recorded.grants.len(),
                    replayed: result.grants.len(),
                });
            }
            for (seq, (rec, got)) in recorded.grants.iter().zip(&result.grants).enumerate() {
                let got = TraceGrant {
                    seq: seq as u64,
                    request: TraceRequest::from(got.request),
                    output_wavelength: got.output_wavelength,
                };
                if *rec != got {
                    return Err(ReplayError::GrantMismatch {
                        slot: recorded.slot,
                        recorded: *rec,
                        replayed: got,
                    });
                }
                grants += 1;
            }
        }
        Ok(ReplayReport { slots: self.slots.len(), grants })
    }

    /// Serializes the trace to pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace from JSON.
    pub fn from_json(text: &str) -> Result<SessionTrace, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded_session(policy: Policy) -> SessionTrace {
        let config = TraceConfig::circular(4, 6, 1, 1, policy);
        let mut engine = config.build_engine().unwrap();
        let mut trace = SessionTrace::new(config);
        for slot in 0..20u64 {
            let inputs: Vec<ConnectionRequest> = (0..4usize)
                .flat_map(|fiber| {
                    (0..6usize).filter_map(move |w| {
                        let h = fiber * 13 + w * 5 + slot as usize * 11;
                        (h % 3 == 0).then(|| {
                            ConnectionRequest::burst(fiber, w, (fiber + w) % 4, 1 + (h % 3) as u32)
                        })
                    })
                })
                .collect();
            let result = engine.advance_slot(&inputs).unwrap();
            trace.record_slot(&inputs, &result.grants);
        }
        trace
    }

    #[test]
    fn replay_matches_recording() {
        for policy in [Policy::BreakFirstAvailable, Policy::Approximate, Policy::Auto] {
            let trace = recorded_session(policy);
            assert!(trace.grant_count() > 0);
            let report = trace.replay().unwrap();
            assert_eq!(report.slots, 20);
            assert_eq!(report.grants, trace.grant_count());
        }
    }

    #[test]
    fn tampered_grant_detected() {
        let mut trace = recorded_session(Policy::Auto);
        let slot = trace.slots.iter_mut().find(|s| !s.grants.is_empty()).unwrap();
        slot.grants[0].output_wavelength ^= 1;
        assert!(matches!(trace.replay(), Err(ReplayError::GrantMismatch { .. })));
    }

    #[test]
    fn dropped_grant_detected() {
        let mut trace = recorded_session(Policy::Auto);
        let slot = trace.slots.iter_mut().find(|s| !s.grants.is_empty()).unwrap();
        slot.grants.pop();
        assert!(matches!(trace.replay(), Err(ReplayError::GrantCountMismatch { .. })));
    }

    #[test]
    fn json_round_trip() {
        let trace = recorded_session(Policy::BreakFirstAvailable);
        let json = trace.to_json().unwrap();
        let back = SessionTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        let _ = back.replay().unwrap();
    }

    #[test]
    fn bad_config_is_setup_error() {
        let mut trace = recorded_session(Policy::Auto);
        trace.config.policy = "nonsense".to_owned();
        assert!(matches!(trace.replay(), Err(ReplayError::Setup(_))));
    }

    #[test]
    fn non_circular_config_builds() {
        let config = TraceConfig::non_circular(2, 8, 1, 1, Policy::FirstAvailable);
        let mut engine = config.build_engine().unwrap();
        let r = engine.advance_slot(&[ConnectionRequest::packet(0, 3, 1)]).unwrap();
        assert_eq!(r.grants.len(), 1);
    }
}
