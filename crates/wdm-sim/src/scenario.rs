//! Scenario-driven simulation: a [`wdm_scenario::CompiledPlan`] executed
//! end to end — phased workload, mid-run disruptions, degraded-mode policy
//! fallback — with per-phase and before/during/after-disruption breakdowns.
//!
//! Two pieces:
//!
//! * [`ScenarioTraffic`] — a [`TrafficModel`] reading the plan's per-slot
//!   tables. For a constant-rate, uniform-destination, non-bursty plan its
//!   RNG draw order is **bit-identical** to
//!   [`BernoulliUniform`](crate::traffic::BernoulliUniform) at the same
//!   seed (verified by `tests/scenario_differential.rs`), so scenarios are
//!   a strict superset of the legacy workloads, not a parallel universe.
//! * [`run_scenario`] — the slot loop: applies the plan's disruption
//!   timeline to the live [`Interconnect`] (capacity shrink/restore,
//!   outage/rejoin) exactly at their slots, steps the fallback controller,
//!   and tallies each measured slot into its phase and disruption window.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use wdm_core::Error;
use wdm_interconnect::{ConnectionRequest, Interconnect, InterconnectConfig, SlotResult};
use wdm_scenario::{CompiledPlan, DisruptionChange, DurationSpec};

use crate::engine::WarmSummary;
use crate::metrics::{Metrics, SlotObservation};
use crate::traffic::{DurationModel, TrafficModel};

/// Converts a plan's declarative holding-time spec into the simulator's
/// sampling model.
pub fn duration_model(spec: DurationSpec) -> DurationModel {
    match spec {
        DurationSpec::Deterministic { slots } => DurationModel::Deterministic(slots),
        DurationSpec::Geometric { mean } => DurationModel::Geometric { mean },
        DurationSpec::Pareto { min, shape } => DurationModel::Pareto { min, shape },
    }
}

/// A [`TrafficModel`] driven by a compiled scenario plan: per-slot phase
/// rates, optional hotspot destination skew, optional bursty on/off
/// sources, and any [`DurationSpec`] holding-time model.
#[derive(Debug, Clone)]
pub struct ScenarioTraffic {
    plan: Arc<CompiledPlan>,
    duration: DurationModel,
    /// Per input channel: the destination of the current burst, if ON.
    /// Empty unless the plan has `[traffic.bursty]`.
    burst_state: Vec<Option<usize>>,
}

impl ScenarioTraffic {
    /// Builds the traffic model for a compiled plan.
    pub fn new(plan: Arc<CompiledPlan>) -> ScenarioTraffic {
        let state_len = if plan.bursty().is_some() { plan.n() * plan.k() } else { 0 };
        ScenarioTraffic {
            duration: duration_model(plan.duration()),
            burst_state: vec![None; state_len],
            plan,
        }
    }

    fn draw_destination(&self, rng: &mut StdRng) -> usize {
        // Same draw order as `Hotspot`: one Bernoulli for the skew, then
        // the uniform fiber draw only on the cold branch.
        if let Some(h) = self.plan.hotspot() {
            if rng.gen_bool(h.fraction) {
                return h.fiber;
            }
        }
        rng.gen_range(0..self.plan.n())
    }
}

impl TrafficModel for ScenarioTraffic {
    fn n(&self) -> usize {
        self.plan.n()
    }

    fn k(&self) -> usize {
        self.plan.k()
    }

    fn generate_into(&mut self, rng: &mut StdRng, slot: u64, out: &mut Vec<ConnectionRequest>) {
        out.clear();
        let n = self.plan.n();
        let k = self.plan.k();
        if let Some(b) = self.plan.bursty() {
            // Two-state on/off channels (same chain as `BurstyOnOff`), with
            // the phase rate multiplier modulating the turn-on probability:
            // high-rate phases birth bursts faster, burst length is shaped
            // by p_off alone.
            let p_on = (b.p_on * self.plan.rate_multiplier(slot)).clamp(0.0, 1.0);
            for fiber in 0..n {
                for w in 0..k {
                    let idx = fiber * k + w;
                    match self.burst_state[idx] {
                        Some(dst) => {
                            out.push(ConnectionRequest::burst(
                                fiber,
                                w,
                                dst,
                                self.duration.sample(rng),
                            ));
                            if rng.gen_bool(b.p_off) {
                                self.burst_state[idx] = None;
                            }
                        }
                        None => {
                            if rng.gen_bool(p_on) {
                                self.burst_state[idx] = Some(self.draw_destination(rng));
                            }
                        }
                    }
                }
            }
        } else {
            // Bernoulli arrivals at the plan's per-slot offered load. With
            // no hotspot this is draw-for-draw the `BernoulliUniform` loop.
            let p = self.plan.offered_load(slot);
            for fiber in 0..n {
                for w in 0..k {
                    if rng.gen_bool(p) {
                        let dst = self.draw_destination(rng);
                        out.push(ConnectionRequest::burst(
                            fiber,
                            w,
                            dst,
                            self.duration.sample(rng),
                        ));
                    }
                }
            }
        }
    }

    fn offered_load(&self) -> f64 {
        // The plan's base load; per-slot values vary with the phase rate.
        self.plan.offered_load(0)
    }
}

/// Per-slot tallies aggregated over one contiguous or scattered slot set
/// (a phase, or a disruption window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct WindowStats {
    /// Measured slots in the window.
    pub slots: u64,
    /// Requests offered.
    pub offered: u64,
    /// Requests granted.
    pub granted: u64,
    /// Requests lost to output contention.
    pub contention_losses: u64,
    /// Requests suppressed because the source channel was busy.
    pub source_busy: u64,
}

impl WindowStats {
    fn record(&mut self, result: &SlotResult) {
        self.slots += 1;
        self.offered += result.offered() as u64;
        self.granted += result.grants.len() as u64;
        self.contention_losses += result.contention_losses() as u64;
        self.source_busy += result.source_busy_losses() as u64;
    }

    /// Loss probability over the window's offered requests.
    pub fn loss_probability(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.contention_losses as f64 / self.offered as f64
        }
    }

    /// Granted requests per slot.
    pub fn throughput_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.granted as f64 / self.slots as f64
        }
    }
}

/// One phase's measured tallies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PhaseReport {
    /// Phase name from the scenario file.
    pub name: String,
    /// Its tallies over measured slots.
    pub stats: WindowStats,
}

/// What the degraded-mode fallback controller did over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FallbackReport {
    /// Times the fallback policy engaged.
    pub engagements: u64,
    /// Times it reverted to the baseline policy.
    pub reverts: u64,
    /// Slots run under the fallback policy (warmup included).
    pub engaged_slots: u64,
}

/// The result of a scenario run.
#[must_use = "a scenario run is pure computation; the report is its only product"]
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Interconnect size `N`.
    pub n: usize,
    /// Wavelengths per fiber `k`.
    pub k: usize,
    /// Baseline conversion degree `d`.
    pub degree: usize,
    /// The seed the run derived from.
    pub seed: u64,
    /// Whole-run measured metrics (batch means, utilization, …).
    pub metrics: Metrics,
    /// Warm-start scheduling outcomes over the whole run.
    pub warm: WarmSummary,
    /// Per-phase breakdown, in timeline order.
    pub phases: Vec<PhaseReport>,
    /// Measured slots before the first disruption strikes.
    pub before: WindowStats,
    /// Measured slots with at least one disruption active.
    pub during: WindowStats,
    /// Measured slots after the first strike with no disruption active.
    pub after: WindowStats,
    /// Live connections dropped by disruption events.
    pub dropped_connections: u64,
    /// Pending reservations cancelled by fiber outages.
    pub cancelled_reservations: u64,
    /// Degraded-mode fallback activity.
    pub fallback: FallbackReport,
}

impl ScenarioReport {
    /// Normalized throughput over the whole measured window.
    pub fn normalized_throughput(&self) -> f64 {
        self.metrics.throughput_per_slot() / (self.n * self.k) as f64
    }
}

/// Runs a compiled scenario to completion.
///
/// The run is a pure function of the plan: the RNG seeds from
/// [`CompiledPlan::seed`], disruption events apply at exactly their
/// planned slots (before the slot is scheduled), and the fallback
/// controller steps on planned quantities only — so replaying the same
/// plan is bit-identical.
pub fn run_scenario(plan: &CompiledPlan) -> Result<ScenarioReport, Error> {
    let plan = Arc::new(plan.clone());
    let config = InterconnectConfig::packet_switch(plan.n(), plan.conversion())
        .with_policy(plan.policy())
        .with_threads(plan.threads());
    let mut interconnect = Interconnect::new(config)?;
    let mut traffic = ScenarioTraffic::new(Arc::clone(&plan));
    let mut rng = StdRng::seed_from_u64(plan.seed());

    let mut metrics = Metrics::new();
    let mut phases: Vec<PhaseReport> = plan
        .phases()
        .iter()
        .map(|p| PhaseReport { name: p.name.clone(), stats: WindowStats::default() })
        .collect();
    let (mut before, mut during, mut after) =
        (WindowStats::default(), WindowStats::default(), WindowStats::default());
    let mut fallback = FallbackReport::default();
    let (mut dropped, mut cancelled) = (0u64, 0u64);

    let events = plan.events();
    let first_strike = events.first().map(|e| e.slot);
    let mut cursor = 0usize;
    let mut engaged = false;

    let warmup = plan.warmup();
    let total = plan.total_slots();
    // One request buffer and one result for the whole run, as in the
    // plain engine: the steady-state slot loop allocates nothing.
    let mut requests = Vec::new();
    let mut result = SlotResult::default();

    for slot in 0..total {
        // 1. Disruption timeline: every event planned for this slot lands
        //    before the slot is scheduled.
        while cursor < events.len() && events[cursor].slot == slot {
            let event = events[cursor];
            cursor += 1;
            let impact = match event.change {
                DisruptionChange::ConverterFailure { conversion, .. } => {
                    interconnect.shrink_conversion(event.fiber, conversion)?
                }
                DisruptionChange::ConverterRecovery => {
                    interconnect.restore_conversion(event.fiber)?
                }
                DisruptionChange::Outage => interconnect.fail_fiber(event.fiber)?,
                DisruptionChange::Rejoin => interconnect.rejoin_fiber(event.fiber)?,
            };
            dropped += impact.dropped_connections as u64;
            cancelled += impact.cancelled_reservations as u64;
        }

        // 2. Degraded-mode controller (sim side: no slot lag, the loop is
        //    the clock).
        if let Some(rule) = plan.fallback() {
            let next = rule.decide(engaged, plan.offered_load(slot), plan.is_disrupted(slot), 0);
            if next != engaged {
                let policy = if next { rule.policy } else { plan.policy() };
                interconnect.set_policy_all(policy)?;
                if next {
                    fallback.engagements += 1;
                } else {
                    fallback.reverts += 1;
                }
                engaged = next;
            }
            if engaged {
                fallback.engaged_slots += 1;
            }
        }

        // 3. The slot itself.
        traffic.generate_into(&mut rng, slot, &mut requests);
        interconnect.advance_slot_into(&requests, &mut result)?;

        // 4. Measurement.
        if slot >= warmup {
            metrics.record_slot(SlotObservation {
                offered: result.offered(),
                granted: result.grants.len(),
                contention_losses: result.contention_losses(),
                source_busy: result.source_busy_losses(),
                completed: result.completed,
                rearranged: result.rearranged,
                active_now: interconnect.active_connections(),
            });
            if let Some(phase) = phases.get_mut(plan.phase_index(slot)) {
                phase.stats.record(&result);
            }
            let window = if plan.is_disrupted(slot) {
                &mut during
            } else if first_strike.is_none_or(|f| slot < f) {
                &mut before
            } else {
                &mut after
            };
            window.record(&result);
        }
    }

    Ok(ScenarioReport {
        name: plan.name().to_owned(),
        n: plan.n(),
        k: plan.k(),
        degree: plan.conversion().degree(),
        seed: plan.seed(),
        metrics,
        warm: interconnect.warm_stats().into(),
        phases,
        before,
        during,
        after,
        dropped_connections: dropped,
        cancelled_reservations: cancelled,
        fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_scenario::load_plan;

    fn plan(doc: &str) -> CompiledPlan {
        load_plan(doc).unwrap()
    }

    const BASE: &str = r#"
schema = 1
name = "unit"

[interconnect]
n = 4
k = 8
degree = 3
kind = "circular"
policy = "bfa"

[run]
warmup = 20
slots = 300
seed = 11

[traffic]
load = 0.5
duration = { model = "deterministic", slots = 1 }
"#;

    #[test]
    fn steady_scenario_reports_one_phase_all_before() {
        let report = run_scenario(&plan(BASE)).unwrap();
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].name, "steady");
        assert_eq!(report.phases[0].stats.slots, 300);
        assert_eq!(report.before.slots, 300);
        assert_eq!(report.during.slots + report.after.slots, 0);
        assert_eq!(report.dropped_connections + report.cancelled_reservations, 0);
        assert_eq!(report.fallback, FallbackReport::default());
        assert!(report.metrics.granted() > 0);
        // The windows partition the measured slots exactly.
        assert_eq!(report.before.offered, report.metrics.offered() as u64);
    }

    #[test]
    fn disruption_windows_partition_measured_slots() {
        let doc = format!(
            "{BASE}
[[disruptions]]
at = 120
fiber = 1
kind = \"outage\"
until = 200
"
        );
        let report = run_scenario(&plan(&doc)).unwrap();
        assert_eq!(report.before.slots, 100, "measured slots 20..120");
        assert_eq!(report.during.slots, 80, "slots 120..200");
        assert_eq!(report.after.slots, 120, "slots 200..320");
        // The dark output fiber shifts losses up while it is out.
        assert!(report.during.loss_probability() > report.before.loss_probability());
        // Cell traffic can't drop connections on a deterministic-1 workload
        // unless the outage caught some active hold; with 1-slot packets
        // the drop count is whatever was in flight at the strike slot.
        assert!(report.during.offered > 0);
    }

    #[test]
    fn fallback_engages_and_reverts_over_a_load_hump() {
        let doc = BASE.replacen(
            "[traffic]",
            r#"[[phases]]
name = "calm"
slots = 100
rate = 0.5

[[phases]]
name = "rush"
slots = 100
rate = 2.0

[[phases]]
name = "calm2"
slots = 120
rate = 0.5

[fallback]
policy = "approx"
load_threshold = 0.8
revert_margin = 0.05

[traffic]"#,
            1,
        );
        let report = run_scenario(&plan(&doc)).unwrap();
        assert_eq!(report.fallback.engagements, 1, "{:?}", report.fallback);
        assert_eq!(report.fallback.reverts, 1);
        // Engaged exactly during the rush phase (slots 100..200).
        assert_eq!(report.fallback.engaged_slots, 100);
        assert_eq!(report.phases.len(), 3);
        assert!(report.phases[1].stats.offered > report.phases[0].stats.offered);
    }

    #[test]
    fn scenario_runs_are_replay_identical() {
        let doc = format!(
            "{BASE}
[[disruptions]]
at = 100
fiber = 0
kind = \"converter-failure\"
degree = 1
until = 150
"
        );
        let p = plan(&doc);
        let a = run_scenario(&p).unwrap();
        let b = run_scenario(&p).unwrap();
        assert_eq!(a.metrics.granted(), b.metrics.granted());
        assert_eq!(a.metrics.offered(), b.metrics.offered());
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.before, b.before);
        assert_eq!(a.during, b.during);
        assert_eq!(a.after, b.after);
        assert_eq!(a.dropped_connections, b.dropped_connections);
    }

    #[test]
    fn bursty_scenario_rate_scales_burst_births() {
        let doc = BASE
            .replacen(
                "[traffic]",
                r#"[[phases]]
name = "low"
slots = 160
rate = 0.2

[[phases]]
name = "high"
slots = 160
rate = 3.0

[traffic]"#,
                1,
            )
            .replacen(
                "duration = { model = \"deterministic\", slots = 1 }",
                "duration = { model = \"deterministic\", slots = 1 }\n\n[traffic.bursty]\np_on = 0.05\np_off = 0.3",
                1,
            );
        let report = run_scenario(&plan(&doc)).unwrap();
        let low = &report.phases[0].stats;
        let high = &report.phases[1].stats;
        assert!(
            high.offered > low.offered,
            "3x burst-birth rate must offer more: {high:?} vs {low:?}"
        );
    }
}
