//! Parameter-sweep experiment runner.
//!
//! Produces the data series behind EXPERIMENTS.md: throughput and loss
//! versus offered load for a set of conversion geometries and scheduling
//! policies, as serializable rows plus CSV output.

use serde::{Deserialize, Serialize};
use wdm_core::{Conversion, Error, Policy};
use wdm_interconnect::{HoldPolicy, InterconnectConfig};

use crate::engine::{Simulation, SimulationConfig};
use crate::sweep_sync::{ChunkCursor, SlotBoard};
use crate::traffic::{BernoulliUniform, CoherentStreams, DurationModel, Hotspot};

/// A conversion geometry under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegreeSpec {
    /// No conversion (`d = 1`).
    None,
    /// Circular symmetrical conversion with odd degree `d`.
    Circular(usize),
    /// Non-circular symmetrical conversion with odd degree `d`.
    NonCircular(usize),
    /// Full-range conversion (`d = k`).
    Full,
}

impl DegreeSpec {
    /// Resolves the spec to a conversion scheme for `k` wavelengths.
    pub fn to_conversion(self, k: usize) -> Result<Conversion, Error> {
        match self {
            DegreeSpec::None => Conversion::none(k),
            DegreeSpec::Circular(d) => Conversion::symmetric_circular(k, d),
            DegreeSpec::NonCircular(d) => Conversion::symmetric_non_circular(k, d),
            DegreeSpec::Full => Conversion::full(k),
        }
    }

    /// A short label for tables.
    pub fn label(&self) -> String {
        match self {
            DegreeSpec::None => "d=1".to_string(),
            DegreeSpec::Circular(d) => format!("circ d={d}"),
            DegreeSpec::NonCircular(d) => format!("non-circ d={d}"),
            DegreeSpec::Full => "full".to_string(),
        }
    }
}

/// The workload shape of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Bernoulli arrivals, uniform destinations.
    Uniform,
    /// Bernoulli arrivals; the given fraction targets output fiber 0.
    Hotspot {
        /// Fraction of traffic aimed at the hotspot.
        fraction: f64,
    },
    /// Long-lived per-channel streams re-requesting every slot
    /// ([`crate::traffic::CoherentStreams`]) — the warm-start workload.
    Coherent {
        /// Mean stream length in slots (departure rate `1/mean_hold`).
        mean_hold: f64,
    },
}

/// One experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Interconnect size `N`.
    pub n: usize,
    /// Wavelengths per fiber `k`.
    pub k: usize,
    /// Conversion geometries to compare.
    pub degrees: Vec<DegreeSpec>,
    /// Offered per-channel loads to sweep.
    pub loads: Vec<f64>,
    /// Scheduling policy.
    pub policy: Policy,
    /// Holding policy.
    pub hold: HoldPolicy,
    /// Holding-time model.
    pub duration: DurationModel,
    /// Workload shape.
    pub workload: Workload,
    /// Run lengths and seed.
    pub sim: SimulationConfig,
}

impl SweepConfig {
    /// A packet-switching uniform-traffic sweep with sensible defaults.
    pub fn uniform_packets(n: usize, k: usize, degrees: Vec<DegreeSpec>, loads: Vec<f64>) -> Self {
        SweepConfig {
            n,
            k,
            degrees,
            loads,
            policy: Policy::Auto,
            hold: HoldPolicy::NonDisturb,
            duration: DurationModel::Deterministic(1),
            workload: Workload::Uniform,
            sim: SimulationConfig::default(),
        }
    }
}

/// One measured point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Conversion geometry label.
    pub degree: String,
    /// Nominal conversion degree `d`.
    pub d: usize,
    /// Offered per-channel load.
    pub load: f64,
    /// Granted requests per slot.
    pub throughput: f64,
    /// Normalized throughput (per channel).
    pub normalized_throughput: f64,
    /// Output-contention loss probability.
    pub loss: f64,
    /// 95% half-interval on per-slot throughput (batch means), if available.
    pub throughput_ci95: Option<f64>,
}

/// Derives the simulation seed of grid point `index` from the sweep's base
/// seed (a splitmix64 step).
///
/// Both the sequential and the parallel runner seed point `index` with this
/// value, so a sweep's rows are bit-identical regardless of how many worker
/// threads computed them — and each grid point is statistically independent
/// instead of replaying the base seed's arrival pattern at every load.
pub fn point_seed(base: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one grid point with its derived per-point seed.
fn run_point(
    config: &SweepConfig,
    spec: DegreeSpec,
    conversion: Conversion,
    load: f64,
    seed: u64,
) -> Result<SweepPoint, Error> {
    let ic = InterconnectConfig::packet_switch(config.n, conversion)
        .with_policy(config.policy)
        .with_hold(config.hold);
    let sim = SimulationConfig { seed, ..config.sim };
    let report = match config.workload {
        Workload::Uniform => {
            let t = BernoulliUniform::new(config.n, config.k, load, config.duration);
            Simulation::new(ic, t, sim)?.run()?
        }
        Workload::Hotspot { fraction } => {
            let t = Hotspot::new(config.n, config.k, load, 0, fraction, config.duration);
            Simulation::new(ic, t, sim)?.run()?
        }
        Workload::Coherent { mean_hold } => {
            let t = CoherentStreams::new(config.n, config.k, load, mean_hold);
            Simulation::new(ic, t, sim)?.run()?
        }
    };
    Ok(SweepPoint {
        degree: spec.label(),
        d: conversion.degree(),
        load,
        throughput: report.metrics.throughput_per_slot(),
        normalized_throughput: report.normalized_throughput(),
        loss: report.loss_probability(),
        throughput_ci95: report.metrics.throughput_ci95(20),
    })
}

/// Runs the sweep sequentially, returning one row per (degree, load) pair,
/// in grid order. Equivalent to [`run_sweep_with_threads`] with one thread.
pub fn run_sweep(config: &SweepConfig) -> Result<Vec<SweepPoint>, Error> {
    run_sweep_with_threads(config, 1)
}

/// Runs the sweep across up to `threads` worker threads.
///
/// The workers are *persistent*: each is spawned once under
/// [`std::thread::scope`] and pulls small contiguous chunks of grid indices
/// off a shared [`ChunkCursor`] until the grid is exhausted. Dynamic
/// chunking keeps all workers busy even when grid points have wildly
/// different costs (a full-range point finishes long before a circular one
/// at the same load), which is what static per-worker partitioning got
/// wrong.
///
/// Each point is seeded with [`point_seed`]`(config.sim.seed, index)` and
/// completed rows are written into the indexed [`SlotBoard`], so the output
/// is bit-identical to the sequential runner's regardless of worker count
/// or completion order. `threads <= 1` runs inline without spawning. The
/// cursor/board protocol is model-checked exhaustively under loom — see
/// [`crate::sweep_sync`].
pub fn run_sweep_with_threads(
    config: &SweepConfig,
    threads: usize,
) -> Result<Vec<SweepPoint>, Error> {
    // Resolve conversions up front: configuration errors surface before any
    // simulation runs, on every code path.
    let mut grid = Vec::with_capacity(config.degrees.len() * config.loads.len());
    for &spec in &config.degrees {
        let conversion = spec.to_conversion(config.k)?;
        for &load in &config.loads {
            grid.push((spec, conversion, load));
        }
    }
    let workers = threads.max(1).min(grid.len().max(1));
    if workers <= 1 {
        return grid
            .iter()
            .enumerate()
            .map(|(i, &(spec, conversion, load))| {
                run_point(config, spec, conversion, load, point_seed(config.sim.seed, i))
            })
            .collect();
    }

    let cursor = ChunkCursor::new(grid.len(), ChunkCursor::balanced_chunk(grid.len(), workers));
    let board: SlotBoard<Result<SweepPoint, Error>> = SlotBoard::new(grid.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                while let Some(range) = cursor.claim() {
                    for (i, &(spec, conversion, load)) in
                        grid[range.clone()].iter().enumerate().map(|(j, g)| (range.start + j, g))
                    {
                        let seed = point_seed(config.sim.seed, i);
                        let point = run_point(config, spec, conversion, load, seed);
                        let fresh = board.put(i, point);
                        debug_assert!(fresh, "grid index {i} claimed by two workers");
                    }
                }
            });
        }
    });
    board
        .into_rows()
        .into_iter()
        .map(|r| match r {
            Some(point) => point,
            None => unreachable!("every grid index is claimed by exactly one cursor chunk"),
        })
        .collect()
}

/// Renders sweep rows as CSV (with header).
pub fn to_csv(rows: &[SweepPoint]) -> String {
    let mut out =
        String::from("degree,d,load,throughput,normalized_throughput,loss,throughput_ci95\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{}\n",
            r.degree,
            r.d,
            r.load,
            r.throughput,
            r.normalized_throughput,
            r.loss,
            r.throughput_ci95.map_or(String::new(), |c| format!("{c:.6}")),
        ));
    }
    out
}

/// Renders sweep rows as a fixed-width table for terminal output.
pub fn to_table(rows: &[SweepPoint]) -> String {
    let mut out = format!(
        "{:<14} {:>3} {:>6} {:>12} {:>10} {:>10}\n",
        "degree", "d", "load", "throughput", "norm.tput", "loss"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>3} {:>6.2} {:>12.3} {:>10.4} {:>10.5}\n",
            r.degree, r.d, r.load, r.throughput, r.normalized_throughput, r.loss
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sim() -> SimulationConfig {
        SimulationConfig { warmup_slots: 20, measure_slots: 200, seed: 3 }
    }

    #[test]
    fn sweep_produces_rows_in_order() {
        let mut cfg = SweepConfig::uniform_packets(
            2,
            4,
            vec![DegreeSpec::None, DegreeSpec::Full],
            vec![0.2, 0.8],
        );
        cfg.sim = tiny_sim();
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].degree, "d=1");
        assert_eq!(rows[0].load, 0.2);
        assert_eq!(rows[3].degree, "full");
        assert_eq!(rows[3].load, 0.8);
        // Full conversion at the same load loses no more than d = 1.
        assert!(rows[3].loss <= rows[1].loss + 0.02);
    }

    #[test]
    fn csv_and_table_rendering() {
        let rows = vec![SweepPoint {
            degree: "circ d=3".into(),
            d: 3,
            load: 0.5,
            throughput: 3.2,
            normalized_throughput: 0.4,
            loss: 0.01,
            throughput_ci95: Some(0.05),
        }];
        let csv = to_csv(&rows);
        assert!(csv.starts_with("degree,"));
        assert!(csv.contains("circ d=3,3,0.5"));
        let table = to_table(&rows);
        assert!(table.contains("circ d=3"));
    }

    #[test]
    fn hotspot_workload_runs() {
        let mut cfg = SweepConfig::uniform_packets(3, 4, vec![DegreeSpec::Circular(3)], vec![0.5]);
        cfg.workload = Workload::Hotspot { fraction: 0.6 };
        cfg.sim = tiny_sim();
        let rows = run_sweep(&cfg).unwrap();
        assert_eq!(rows.len(), 1);
        // Hotspot contention at fiber 0 should produce nonzero loss.
        assert!(rows[0].loss > 0.0);
    }

    #[test]
    fn degree_spec_resolution() {
        assert!(DegreeSpec::Circular(3).to_conversion(8).unwrap().is_circular());
        assert!(DegreeSpec::Full.to_conversion(8).unwrap().is_full());
        assert_eq!(DegreeSpec::None.to_conversion(8).unwrap().degree(), 1);
        assert!(DegreeSpec::Circular(4).to_conversion(8).is_err(), "even degree");
        assert!(DegreeSpec::Circular(9).to_conversion(4).is_err(), "degree > k");
        assert_eq!(DegreeSpec::NonCircular(5).label(), "non-circ d=5");
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = SweepConfig::uniform_packets(2, 4, vec![DegreeSpec::Full], vec![0.5]);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SweepConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n, 2);
        assert_eq!(back.degrees, vec![DegreeSpec::Full]);
    }
}
