//! Synthetic traffic models.
//!
//! All models generate, per slot, at most one request per input channel
//! (an input wavelength channel physically carries one signal). Destinations
//! are unicast. Holding times come from a [`DurationModel`].

use rand::rngs::StdRng;
use rand::Rng;
use wdm_interconnect::{ConnectionRequest, ReservationRequest};

/// Connection holding times (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DurationModel {
    /// Every connection holds exactly this many slots (1 = optical packets).
    Deterministic(u32),
    /// Geometric holding times with the given mean (≥ 1): each slot the
    /// connection ends with probability `1/mean`.
    Geometric {
        /// Mean holding time in slots.
        mean: f64,
    },
    /// Heavy-tailed (Pareto) holding times: most holds are near `min`
    /// slots, a few are very long — the burst/batch-size distribution
    /// measured on real datacenter traffic. `shape` must exceed 1 for a
    /// finite mean (`min · shape / (shape − 1)`).
    Pareto {
        /// Minimum holding time in slots (the Pareto scale, ≥ 1).
        min: f64,
        /// Tail exponent (the Pareto shape).
        shape: f64,
    },
}

impl DurationModel {
    /// Samples a holding time.
    #[allow(clippy::cast_possible_truncation)] // clamped to u32's range below
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            DurationModel::Deterministic(d) => d.max(1),
            DurationModel::Geometric { mean } => {
                let mean = mean.max(1.0);
                let p = 1.0 / mean;
                // Geometric on {1, 2, …} via inversion.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let d = (u.ln() / (1.0 - p).ln()).ceil();
                if d.is_finite() {
                    d.clamp(1.0, f64::from(u32::MAX)) as u32
                } else {
                    1
                }
            }
            DurationModel::Pareto { min, shape } => {
                let min = min.max(1.0);
                let shape = shape.max(1.0 + f64::EPSILON);
                // Pareto via inversion: one uniform draw, like Geometric,
                // so every model consumes the same RNG stream shape.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let d = (min / u.powf(1.0 / shape)).ceil();
                if d.is_finite() {
                    d.clamp(1.0, f64::from(u32::MAX)) as u32
                } else {
                    1
                }
            }
        }
    }

    /// The mean holding time of the model.
    pub fn mean(&self) -> f64 {
        match *self {
            DurationModel::Deterministic(d) => d.max(1) as f64,
            DurationModel::Geometric { mean } => mean.max(1.0),
            DurationModel::Pareto { min, shape } => {
                let min = min.max(1.0);
                let shape = shape.max(1.0 + f64::EPSILON);
                min * shape / (shape - 1.0)
            }
        }
    }
}

/// A per-slot arrival process for an `n × n` interconnect with `k`
/// wavelengths per fiber.
pub trait TrafficModel {
    /// Number of input fibers.
    fn n(&self) -> usize;
    /// Number of wavelengths per fiber.
    fn k(&self) -> usize;
    /// Generates the requests arriving at the given slot into `out`, which
    /// is cleared first. Implementations must not allocate beyond growing
    /// `out` — the engine reuses one buffer across every slot.
    fn generate_into(&mut self, rng: &mut StdRng, slot: u64, out: &mut Vec<ConnectionRequest>);

    /// Convenience wrapper around [`Self::generate_into`] returning a fresh
    /// vector.
    fn generate(&mut self, rng: &mut StdRng, slot: u64) -> Vec<ConnectionRequest> {
        let mut out = Vec::new();
        self.generate_into(rng, slot, &mut out);
        out
    }
    /// The offered load per input channel (probability a channel carries a
    /// new request in a slot, ignoring source-busy suppression).
    fn offered_load(&self) -> f64;
}

/// I.i.d. Bernoulli arrivals with uniform destinations — the standard
/// synchronous-switch workload: each input channel independently carries a
/// packet with probability `p`, destined to a uniformly random output fiber.
#[derive(Debug, Clone)]
pub struct BernoulliUniform {
    n: usize,
    k: usize,
    p: f64,
    duration: DurationModel,
}

impl BernoulliUniform {
    /// Creates the model with per-channel load `p` (clamped to `[0, 1]`).
    pub fn new(n: usize, k: usize, p: f64, duration: DurationModel) -> BernoulliUniform {
        BernoulliUniform { n, k, p: p.clamp(0.0, 1.0), duration }
    }
}

impl TrafficModel for BernoulliUniform {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn generate_into(&mut self, rng: &mut StdRng, _slot: u64, out: &mut Vec<ConnectionRequest>) {
        out.clear();
        for fiber in 0..self.n {
            for w in 0..self.k {
                if rng.gen_bool(self.p) {
                    out.push(ConnectionRequest::burst(
                        fiber,
                        w,
                        rng.gen_range(0..self.n),
                        self.duration.sample(rng),
                    ));
                }
            }
        }
    }

    fn offered_load(&self) -> f64 {
        self.p
    }
}

/// A per-slot advance-reservation arrival process (paper §V multi-slot
/// connections booked ahead of time): each slot it emits `⌊rate⌋`
/// reservations plus one more with probability `rate − ⌊rate⌋`, each from
/// a uniformly random input channel to a uniformly random output fiber,
/// starting a uniform `1..=max_lead` slots in the future and holding for a
/// [`DurationModel`] draw clamped to ≥ 2 slots (a reservation for a
/// single-slot hold is just a delayed packet — the clamp keeps every
/// generated hold genuinely multi-slot).
///
/// Conflicting emissions (two reservations booking the same input channel
/// at overlapping slots) are deliberate: admission-ledger denials are part
/// of the workload being modeled, and the deny stream is as deterministic
/// as the grant stream given the seed.
#[derive(Debug, Clone)]
pub struct ReservationTraffic {
    n: usize,
    k: usize,
    rate: f64,
    max_lead: u32,
    duration: DurationModel,
}

impl ReservationTraffic {
    /// Creates the process. `rate` is the mean reservations per slot
    /// (clamped non-negative); `max_lead` is clamped to ≥ 1.
    pub fn new(n: usize, k: usize, rate: f64, max_lead: u32, duration: DurationModel) -> Self {
        ReservationTraffic { n, k, rate: rate.max(0.0), max_lead: max_lead.max(1), duration }
    }

    /// Mean reservations generated per slot.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Generates the reservation requests arriving at slot `now` into
    /// `out` (cleared first), with start slots strictly after `now`.
    pub fn generate_into(&mut self, rng: &mut StdRng, now: u64, out: &mut Vec<ReservationRequest>) {
        out.clear();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // rate is clamped ≥ 0
        let mut count = self.rate.floor() as u64;
        let fraction = self.rate.fract();
        if fraction > 0.0 && rng.gen_bool(fraction) {
            count += 1;
        }
        for _ in 0..count {
            let lead = rng.gen_range(1..=self.max_lead);
            out.push(ReservationRequest {
                src_fiber: rng.gen_range(0..self.n),
                src_wavelength: rng.gen_range(0..self.k),
                dst_fiber: rng.gen_range(0..self.n),
                start_slot: now + u64::from(lead),
                duration: self.duration.sample(rng).max(2),
            });
        }
    }
}

/// Bernoulli arrivals with a hotspot destination: with probability
/// `hotspot_fraction` a packet goes to `hotspot_fiber`, otherwise to a
/// uniformly random fiber. Models client–server traffic skew.
#[derive(Debug, Clone)]
pub struct Hotspot {
    n: usize,
    k: usize,
    p: f64,
    hotspot_fiber: usize,
    hotspot_fraction: f64,
    duration: DurationModel,
}

impl Hotspot {
    /// Creates the model. `hotspot_fraction` is clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `hotspot_fiber >= n`.
    pub fn new(
        n: usize,
        k: usize,
        p: f64,
        hotspot_fiber: usize,
        hotspot_fraction: f64,
        duration: DurationModel,
    ) -> Hotspot {
        assert!(hotspot_fiber < n, "hotspot fiber out of range");
        Hotspot {
            n,
            k,
            p: p.clamp(0.0, 1.0),
            hotspot_fiber,
            hotspot_fraction: hotspot_fraction.clamp(0.0, 1.0),
            duration,
        }
    }
}

impl TrafficModel for Hotspot {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn generate_into(&mut self, rng: &mut StdRng, _slot: u64, out: &mut Vec<ConnectionRequest>) {
        out.clear();
        for fiber in 0..self.n {
            for w in 0..self.k {
                if rng.gen_bool(self.p) {
                    let dst = if rng.gen_bool(self.hotspot_fraction) {
                        self.hotspot_fiber
                    } else {
                        rng.gen_range(0..self.n)
                    };
                    out.push(ConnectionRequest::burst(fiber, w, dst, self.duration.sample(rng)));
                }
            }
        }
    }

    fn offered_load(&self) -> f64 {
        self.p
    }
}

/// Two-state (on/off) Markov-modulated arrivals per input channel: while ON
/// a channel emits one packet per slot toward a destination fixed for the
/// burst; OFF channels are silent. Models correlated optical-burst traffic.
#[derive(Debug, Clone)]
pub struct BurstyOnOff {
    n: usize,
    k: usize,
    /// P(OFF → ON) per slot.
    p_on: f64,
    /// P(ON → OFF) per slot.
    p_off: f64,
    duration: DurationModel,
    /// Per input channel: the destination of the current burst, if ON.
    state: Vec<Option<usize>>,
}

impl BurstyOnOff {
    /// Creates the model. The stationary per-channel load is
    /// `p_on / (p_on + p_off)`; the mean burst length is `1 / p_off` slots.
    pub fn new(n: usize, k: usize, p_on: f64, p_off: f64, duration: DurationModel) -> BurstyOnOff {
        BurstyOnOff {
            n,
            k,
            p_on: p_on.clamp(0.0, 1.0),
            p_off: p_off.clamp(f64::EPSILON, 1.0),
            duration,
            state: vec![None; n * k],
        }
    }

    /// Mean burst length in slots.
    pub fn mean_burst_length(&self) -> f64 {
        1.0 / self.p_off
    }
}

impl TrafficModel for BurstyOnOff {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn generate_into(&mut self, rng: &mut StdRng, _slot: u64, out: &mut Vec<ConnectionRequest>) {
        out.clear();
        for fiber in 0..self.n {
            for w in 0..self.k {
                let idx = fiber * self.k + w;
                // Emit while ON, then update the chain at slot end: this
                // makes the stationary emission probability exactly
                // p_on / (p_on + p_off) and the mean burst length 1/p_off.
                match self.state[idx] {
                    Some(dst) => {
                        out.push(ConnectionRequest::burst(
                            fiber,
                            w,
                            dst,
                            self.duration.sample(rng),
                        ));
                        if rng.gen_bool(self.p_off) {
                            self.state[idx] = None;
                        }
                    }
                    None => {
                        if rng.gen_bool(self.p_on) {
                            // The burst starts emitting next slot, toward a
                            // destination fixed now.
                            self.state[idx] = Some(rng.gen_range(0..self.n));
                        }
                    }
                }
            }
        }
    }

    fn offered_load(&self) -> f64 {
        self.p_on / (self.p_on + self.p_off)
    }
}

/// Coherent steady-stream arrivals — the warm-start scheduling workload.
///
/// Each input channel hosts at most one long-lived *stream*: while live it
/// emits one single-slot packet per slot toward a destination fixed at
/// stream birth, so consecutive slots present nearly identical per-fiber
/// request vectors and the scheduler's warm repair path sees only the
/// births and departures as deltas. Streams depart with probability
/// `1/mean_hold` per slot (the departure rate) and are born at exactly the
/// rate that makes the stationary per-channel load equal `load`.
///
/// This differs from [`BurstyOnOff`] in its parameterization — `(load,
/// mean_hold)` instead of raw chain probabilities — and in pinning the
/// packet duration to one slot: the slot-to-slot coherence comes from the
/// stream re-requesting every slot, not from multi-slot channel holds.
#[derive(Debug, Clone)]
pub struct CoherentStreams {
    n: usize,
    k: usize,
    /// P(idle channel births a stream) per slot.
    birth: f64,
    /// P(live stream departs) per slot = `1/mean_hold`.
    departure: f64,
    /// Per input channel: the destination of the live stream, if any.
    state: Vec<Option<usize>>,
}

impl CoherentStreams {
    /// Creates the model. `load` is clamped to `[0, 0.99]` (a load of 1
    /// would need an infinite birth rate); `mean_hold` — the mean stream
    /// length in slots — is clamped to ≥ 1.
    pub fn new(n: usize, k: usize, load: f64, mean_hold: f64) -> CoherentStreams {
        let load = load.clamp(0.0, 0.99);
        let departure = 1.0 / mean_hold.max(1.0);
        // Stationary live probability of the two-state chain is
        // birth / (birth + departure); solve for the requested load.
        let birth = (load * departure / (1.0 - load)).clamp(0.0, 1.0);
        CoherentStreams { n, k, birth, departure, state: vec![None; n * k] }
    }

    /// Mean stream length in slots.
    pub fn mean_hold(&self) -> f64 {
        1.0 / self.departure
    }

    /// Per-slot departure probability of a live stream.
    pub fn departure_rate(&self) -> f64 {
        self.departure
    }
}

impl TrafficModel for CoherentStreams {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn generate_into(&mut self, rng: &mut StdRng, _slot: u64, out: &mut Vec<ConnectionRequest>) {
        out.clear();
        for fiber in 0..self.n {
            for w in 0..self.k {
                let idx = fiber * self.k + w;
                // Emit while live, then update the chain at slot end (the
                // same emit-then-transition order as [`BurstyOnOff`], giving
                // the stationary load birth / (birth + departure) exactly).
                match self.state[idx] {
                    Some(dst) => {
                        out.push(ConnectionRequest::packet(fiber, w, dst));
                        if rng.gen_bool(self.departure) {
                            self.state[idx] = None;
                        }
                    }
                    None => {
                        if rng.gen_bool(self.birth) {
                            self.state[idx] = Some(rng.gen_range(0..self.n));
                        }
                    }
                }
            }
        }
    }

    fn offered_load(&self) -> f64 {
        self.birth / (self.birth + self.departure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn bernoulli_respects_dimensions_and_load() {
        let mut model = BernoulliUniform::new(4, 8, 0.5, DurationModel::Deterministic(1));
        let mut r = rng();
        let mut total = 0usize;
        for slot in 0..500 {
            let reqs = model.generate(&mut r, slot);
            total += reqs.len();
            for q in &reqs {
                q.validate(4, 8).unwrap();
                assert_eq!(q.duration, 1);
            }
            // At most one request per input channel.
            let mut seen = std::collections::HashSet::new();
            for q in &reqs {
                assert!(seen.insert((q.src_fiber, q.src_wavelength)));
            }
        }
        let expected = 500.0 * 4.0 * 8.0 * 0.5;
        assert!((total as f64) > 0.9 * expected && (total as f64) < 1.1 * expected);
    }

    #[test]
    fn hotspot_skews_destinations() {
        let mut model = Hotspot::new(8, 4, 1.0, 3, 0.5, DurationModel::Deterministic(1));
        let mut r = rng();
        let mut hot = 0usize;
        let mut total = 0usize;
        for slot in 0..200 {
            for q in model.generate(&mut r, slot) {
                total += 1;
                if q.dst_fiber == 3 {
                    hot += 1;
                }
            }
        }
        // P(hotspot) = 0.5 + 0.5/8 = 0.5625.
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.52 && frac < 0.61, "hotspot fraction {frac}");
    }

    #[test]
    fn bursty_produces_runs() {
        let mut model = BurstyOnOff::new(1, 1, 0.05, 0.2, DurationModel::Deterministic(1));
        assert!((model.offered_load() - 0.2).abs() < 1e-9);
        assert!((model.mean_burst_length() - 5.0).abs() < 1e-9);
        let mut r = rng();
        // Consecutive packets of one burst share a destination.
        let mut last_dst: Option<usize> = None;
        let mut active: Vec<(u64, usize)> = Vec::new();
        for slot in 0..2000 {
            let reqs = model.generate(&mut r, slot);
            assert!(reqs.len() <= 1);
            if let Some(q) = reqs.first() {
                active.push((slot, q.dst_fiber));
                last_dst = Some(q.dst_fiber);
            }
        }
        assert!(last_dst.is_some(), "the source turned on at least once");
        // Load roughly matches the stationary distribution.
        let load = active.len() as f64 / 2000.0;
        assert!(load > 0.1 && load < 0.3, "measured load {load}");
    }

    #[test]
    fn coherent_streams_hit_the_requested_load() {
        let mut model = CoherentStreams::new(4, 8, 0.6, 16.0);
        assert!((model.offered_load() - 0.6).abs() < 1e-9);
        assert!((model.mean_hold() - 16.0).abs() < 1e-9);
        assert!((model.departure_rate() - 1.0 / 16.0).abs() < 1e-9);
        let mut r = rng();
        let mut total = 0usize;
        let slots = 4000u64;
        for slot in 0..slots {
            let reqs = model.generate(&mut r, slot);
            for q in &reqs {
                q.validate(4, 8).unwrap();
                assert_eq!(q.duration, 1, "streams emit single-slot packets");
            }
            // Skip the ramp-up from the all-idle start.
            if slot >= 200 {
                total += reqs.len();
            }
        }
        let load = total as f64 / ((slots - 200) as f64 * 32.0);
        assert!(load > 0.54 && load < 0.66, "measured load {load}");
    }

    #[test]
    fn coherent_streams_persist_slot_to_slot() {
        use std::collections::HashSet;
        // Long holds: the overlap between consecutive slots' request sets
        // must be near-total — the property the warm repair path exploits.
        let mut model = CoherentStreams::new(4, 16, 0.7, 64.0);
        let mut r = rng();
        let mut prev: HashSet<(usize, usize, usize)> = HashSet::new();
        let (mut shared, mut union) = (0usize, 0usize);
        for slot in 0..2000u64 {
            let cur: HashSet<(usize, usize, usize)> = model
                .generate(&mut r, slot)
                .iter()
                .map(|q| (q.src_fiber, q.src_wavelength, q.dst_fiber))
                .collect();
            if slot >= 200 {
                shared += cur.intersection(&prev).count();
                union += cur.union(&prev).count();
            }
            prev = cur;
        }
        let jaccard = shared as f64 / union as f64;
        assert!(jaccard > 0.9, "slot-to-slot overlap {jaccard} too low for mean_hold 64");
    }

    #[test]
    fn coherent_streams_keep_destination_for_stream_lifetime() {
        // Eight single-wavelength input channels. Destinations can repeat
        // by chance across rebirths, so track runs per channel: within one
        // uninterrupted run of emissions the destination may never change.
        let n = 8;
        let mut model = CoherentStreams::new(n, 1, 0.5, 8.0);
        let mut r = rng();
        let mut run_dst: Vec<Option<usize>> = vec![None; n];
        let mut changes_within_run = 0usize;
        for slot in 0..4000u64 {
            let reqs = model.generate(&mut r, slot);
            assert!(reqs.len() <= n);
            let mut emitted = vec![false; n];
            for q in &reqs {
                if let Some(d) = run_dst[q.src_fiber] {
                    if d != q.dst_fiber {
                        changes_within_run += 1;
                    }
                }
                run_dst[q.src_fiber] = Some(q.dst_fiber);
                emitted[q.src_fiber] = true;
            }
            for (fiber, hit) in emitted.iter().enumerate() {
                if !hit {
                    run_dst[fiber] = None;
                }
            }
        }
        assert_eq!(changes_within_run, 0, "a stream's destination is fixed at birth");
    }

    #[test]
    fn geometric_durations_have_the_right_mean() {
        let model = DurationModel::Geometric { mean: 8.0 };
        let mut r = rng();
        let total: u64 = (0..20_000).map(|_| model.sample(&mut r) as u64).sum();
        let mean = total as f64 / 20_000.0;
        assert!(mean > 7.5 && mean < 8.5, "measured mean {mean}");
        assert_eq!(model.mean(), 8.0);
    }

    #[test]
    fn pareto_durations_are_heavy_tailed() {
        let model = DurationModel::Pareto { min: 1.0, shape: 2.5 };
        // E[X] = min·shape/(shape−1) = 5/3 for the continuous variable.
        assert!((model.mean() - 5.0 / 3.0).abs() < 1e-9);
        let mut r = rng();
        let samples: Vec<u32> = (0..20_000).map(|_| model.sample(&mut r)).collect();
        assert!(samples.iter().all(|&d| d >= 1));
        // ceil() shifts the sampled mean up by at most one slot.
        let mean = samples.iter().map(|&d| u64::from(d)).sum::<u64>() as f64 / 20_000.0;
        assert!(mean > 1.6 && mean < 2.7, "measured mean {mean}");
        // Heavy tail: P(X > 15) ≈ 1/871, so 20k draws all but surely
        // contain holds an order of magnitude past the mean.
        assert!(samples.iter().copied().max().unwrap_or(0) > 15);
    }

    #[test]
    fn deterministic_durations() {
        let model = DurationModel::Deterministic(5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(model.sample(&mut r), 5);
        }
        // Zero durations are clamped to one slot.
        assert_eq!(DurationModel::Deterministic(0).sample(&mut r), 1);
        assert_eq!(DurationModel::Deterministic(0).mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "hotspot fiber out of range")]
    fn hotspot_bounds_checked() {
        let _ = Hotspot::new(4, 4, 0.5, 4, 0.5, DurationModel::Deterministic(1));
    }

    #[test]
    fn reservation_traffic_emits_in_range_multi_slot_holds() {
        let mut model =
            ReservationTraffic::new(4, 8, 1.5, 6, DurationModel::Geometric { mean: 3.0 });
        let mut r = rng();
        let mut out = Vec::new();
        let mut total = 0usize;
        for now in 0..1000u64 {
            model.generate_into(&mut r, now, &mut out);
            total += out.len();
            for q in &out {
                assert!(q.src_fiber < 4 && q.src_wavelength < 8 && q.dst_fiber < 4);
                assert!(q.start_slot > now && q.start_slot <= now + 6, "lead in 1..=6");
                assert!(q.duration >= 2, "reservation holds are multi-slot");
            }
        }
        // Mean arrivals per slot ≈ rate.
        let mean = total as f64 / 1000.0;
        assert!(mean > 1.35 && mean < 1.65, "measured rate {mean}");
    }

    #[test]
    fn reservation_traffic_deterministic_given_seed() {
        let gen = || {
            let mut model = ReservationTraffic::new(4, 4, 0.7, 4, DurationModel::Deterministic(3));
            let mut r = rng();
            let mut out = Vec::new();
            let mut all = Vec::new();
            for now in 0..200u64 {
                model.generate_into(&mut r, now, &mut out);
                all.extend(out.iter().copied());
            }
            all
        };
        assert_eq!(gen(), gen());
    }

    #[test]
    fn zero_rate_emits_nothing() {
        let mut model = ReservationTraffic::new(2, 2, 0.0, 3, DurationModel::Deterministic(2));
        let mut r = rng();
        let mut out = vec![ReservationRequest {
            src_fiber: 0,
            src_wavelength: 0,
            dst_fiber: 0,
            start_slot: 1,
            duration: 2,
        }];
        model.generate_into(&mut r, 0, &mut out);
        assert!(out.is_empty(), "generate_into clears the buffer");
    }
}
