//! Per-slot measurement accounting.
//!
//! The quantities this line of work reports: offered load, carried load
//! (throughput), packet-loss probability due to output contention, and
//! channel utilization. Batch means over the measurement phase give 95%
//! confidence intervals.

use serde::{Deserialize, Serialize};

/// Everything observed in one time slot, fed to [`Metrics::record_slot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotObservation {
    /// Requests presented this slot.
    pub offered: usize,
    /// Requests granted this slot.
    pub granted: usize,
    /// Requests lost to output contention.
    pub contention_losses: usize,
    /// Requests rejected because their source channel was busy.
    pub source_busy: usize,
    /// Earlier connections that completed at the start of the slot.
    pub completed: usize,
    /// In-flight connections moved to another channel this slot.
    pub rearranged: usize,
    /// Connections active at the end of the slot.
    pub active_now: usize,
}

/// Accumulated measurements over a simulation's measurement phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    slots: u64,
    offered: u64,
    granted: u64,
    contention_losses: u64,
    source_busy: u64,
    completed: u64,
    rearranged: u64,
    /// Sum over slots of active connections at slot end (for utilization).
    active_slot_sum: u64,
    /// Per-slot granted counts, retained for batch-means CIs.
    granted_per_slot: Vec<u32>,
}

impl Metrics {
    /// A fresh accumulator.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one slot's outcome.
    pub fn record_slot(&mut self, slot: SlotObservation) {
        self.slots += 1;
        self.offered += slot.offered as u64;
        self.granted += slot.granted as u64;
        self.contention_losses += slot.contention_losses as u64;
        self.source_busy += slot.source_busy as u64;
        self.completed += slot.completed as u64;
        self.rearranged += slot.rearranged as u64;
        self.active_slot_sum += slot.active_now as u64;
        self.granted_per_slot.push(u32::try_from(slot.granted).unwrap_or(u32::MAX));
    }

    /// Number of measured slots.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Total requests offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total requests granted.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Total output-contention losses.
    pub fn contention_losses(&self) -> u64 {
        self.contention_losses
    }

    /// Total requests rejected because their source channel was busy.
    pub fn source_busy(&self) -> u64 {
        self.source_busy
    }

    /// Total in-flight rearrangements (only under `HoldPolicy::Rearrange`).
    pub fn rearranged(&self) -> u64 {
        self.rearranged
    }

    /// Mean granted requests per slot (the interconnect throughput).
    pub fn throughput_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.granted as f64 / self.slots as f64
        }
    }

    /// Probability a schedulable request is lost to output contention:
    /// `contention_losses / (offered − source_busy)`.
    pub fn loss_probability(&self) -> f64 {
        let schedulable = self.offered - self.source_busy;
        if schedulable == 0 {
            0.0
        } else {
            self.contention_losses as f64 / schedulable as f64
        }
    }

    /// Mean fraction of the `n·k` output channels carrying a connection.
    pub fn utilization(&self, n: usize, k: usize) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.active_slot_sum as f64 / (self.slots as f64 * (n * k) as f64)
        }
    }

    /// Batch-means 95% confidence half-interval on the per-slot throughput,
    /// using `batches` equal batches (default heuristic: 20).
    ///
    /// Returns `None` when there are too few slots to form batches.
    pub fn throughput_ci95(&self, batches: usize) -> Option<f64> {
        let batches = batches.max(2);
        let per = self.granted_per_slot.len() / batches;
        if per == 0 {
            return None;
        }
        let means: Vec<f64> = self
            .granted_per_slot
            .chunks_exact(per)
            .take(batches)
            .map(|c| c.iter().map(|&g| g as f64).sum::<f64>() / per as f64)
            .collect();
        let m = means.iter().sum::<f64>() / means.len() as f64;
        let var = means.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (means.len() as f64 - 1.0);
        // t ≈ 2.09 for 19 degrees of freedom; 1.96 asymptotically. Use 2.1
        // as a conservative constant for the default batch count.
        Some(2.1 * (var / means.len() as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        offered: usize,
        granted: usize,
        contention_losses: usize,
        source_busy: usize,
        completed: usize,
        rearranged: usize,
        active_now: usize,
    ) -> SlotObservation {
        SlotObservation {
            offered,
            granted,
            contention_losses,
            source_busy,
            completed,
            rearranged,
            active_now,
        }
    }

    #[test]
    fn accounting() {
        let mut m = Metrics::new();
        m.record_slot(obs(10, 7, 2, 1, 0, 0, 4));
        m.record_slot(obs(5, 5, 0, 0, 7, 1, 2));
        assert_eq!(m.slots(), 2);
        assert_eq!(m.offered(), 15);
        assert_eq!(m.granted(), 12);
        assert_eq!(m.contention_losses(), 2);
        assert_eq!(m.source_busy(), 1);
        assert_eq!(m.rearranged(), 1);
        assert!((m.throughput_per_slot() - 6.0).abs() < 1e-12);
        assert!((m.loss_probability() - 2.0 / 14.0).abs() < 1e-12);
        assert!((m.utilization(2, 3) - 6.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.throughput_per_slot(), 0.0);
        assert_eq!(m.loss_probability(), 0.0);
        assert_eq!(m.utilization(4, 4), 0.0);
        assert_eq!(m.throughput_ci95(20), None);
    }

    #[test]
    fn ci_shrinks_with_constant_data() {
        let mut m = Metrics::new();
        for _ in 0..200 {
            m.record_slot(obs(5, 5, 0, 0, 5, 0, 5));
        }
        let ci = m.throughput_ci95(20).unwrap();
        assert!(ci < 1e-9, "constant data has zero variance, got {ci}");
    }

    #[test]
    fn ci_reflects_variance() {
        let mut low = Metrics::new();
        let mut high = Metrics::new();
        for i in 0..400u64 {
            low.record_slot(obs(5, 5, 0, 0, 0, 0, 5));
            let g = if i % 2 == 0 { 0 } else { 10 };
            high.record_slot(obs(10, g, 10 - g, 0, 0, 0, g));
        }
        assert!(high.throughput_ci95(20).unwrap() >= low.throughput_ci95(20).unwrap());
    }

    #[test]
    fn serde_round_trip() {
        let mut m = Metrics::new();
        m.record_slot(obs(3, 2, 1, 0, 0, 0, 2));
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.offered(), 3);
    }
}
