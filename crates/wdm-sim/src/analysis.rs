//! Exact analytical results used to validate the simulator.
//!
//! Under i.i.d. Bernoulli arrivals with uniform destinations, two extreme
//! conversion regimes have closed-form per-slot behaviour (single-slot
//! packets, all channels free every slot):
//!
//! * **full-range conversion** (`d = k`): a fiber's arrivals
//!   `X ~ Binomial(N·k, p/N)` are served up to `k`, so the carried load per
//!   fiber is `E[min(X, k)]`;
//! * **no conversion** (`d = 1`): each output channel independently serves
//!   its own wavelength, `Y ~ Binomial(N, p/N)` contenders, carrying
//!   `P(Y ≥ 1)`.
//!
//! Limited-range conversion (`1 < d < k`) lies strictly between; its exact
//! analysis is open (the paper's citations use approximations), which is why
//! the simulator exists. The integration tests check simulated throughput
//! against these formulas to tight tolerances.

/// The binomial pmf vector `P(X = 0..=n)` for `X ~ Binomial(n, q)`,
/// computed by stable forward recursion.
pub fn binomial_pmf(n: usize, q: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&q), "probability out of range");
    let mut pmf = vec![0.0; n + 1];
    if q == 1.0 {
        pmf[n] = 1.0;
        return pmf;
    }
    // P(0) = (1−q)^n via logs for stability at large n.
    pmf[0] = ((1.0 - q).ln() * n as f64).exp();
    for x in 1..=n {
        pmf[x] = pmf[x - 1] * ((n - x + 1) as f64 / x as f64) * (q / (1.0 - q));
    }
    pmf
}

/// `E[min(X, cap)]` for `X ~ Binomial(n, q)`.
pub fn expected_min_binomial(n: usize, q: f64, cap: usize) -> f64 {
    binomial_pmf(n, q).iter().enumerate().map(|(x, p)| p * x.min(cap) as f64).sum()
}

/// Exact per-slot throughput of one output fiber under full-range
/// conversion: `E[min(X, k)]` with `X ~ Binomial(N·k, p/N)`.
pub fn full_conversion_fiber_throughput(n: usize, k: usize, p: f64) -> f64 {
    expected_min_binomial(n * k, p / n as f64, k)
}

/// Exact contention-loss probability under full-range conversion:
/// `1 − E[min(X, k)] / E[X]`.
pub fn full_conversion_loss(n: usize, k: usize, p: f64) -> f64 {
    let offered = k as f64 * p;
    if offered == 0.0 {
        0.0
    } else {
        1.0 - full_conversion_fiber_throughput(n, k, p) / offered
    }
}

/// Exact per-slot throughput of one output fiber with no conversion
/// (`d = 1`): `k · P(Y ≥ 1)` with `Y ~ Binomial(N, p/N)`.
pub fn no_conversion_fiber_throughput(n: usize, k: usize, p: f64) -> f64 {
    let q = p / n as f64;
    k as f64 * (1.0 - (1.0 - q).powi(i32::try_from(n).unwrap_or(i32::MAX)))
}

/// Exact contention-loss probability with no conversion.
pub fn no_conversion_loss(n: usize, k: usize, p: f64) -> f64 {
    let offered = k as f64 * p;
    if offered == 0.0 {
        0.0
    } else {
        1.0 - no_conversion_fiber_throughput(n, k, p) / offered
    }
}

/// Exact per-slot throughput of one output fiber under **limited-range
/// non-circular** conversion with reach `(e, f)` — the regime for which the
/// paper's citations only had approximations.
///
/// The computation exploits the structure behind Theorem 1. First Available
/// scans output channels in order and serves the lowest-wavelength pending
/// request; since a request on wavelength `w` is usable for outputs
/// `max(0, w−e) ..= min(k−1, w+f)` and both endpoints are monotone in `w`,
/// FA is exactly an earliest-deadline-first single-server queue over the
/// output scan: at output `i` the requests with `begin = i` join, one
/// pending request is served, everything else ages one step, and requests
/// past their deadline expire. Deadlines join in non-decreasing order, so
/// the queue never reorders, and a request with residual lifetime `r` can
/// only be served if fewer than `r` requests are ahead — pending counts per
/// residual class can be capped at the residual, giving a tiny state space.
/// Evolving the exact state distribution (arrivals per wavelength are
/// `Binomial(N, p/N)`) yields the exact expected maximum matching.
///
/// Complexity: `O(k · |S| · N · d)` with `|S| ≤ (d+1)!` states — instant
/// for the practical `d ≤ 7`.
pub fn limited_non_circular_fiber_throughput(
    n: usize,
    k: usize,
    p: f64,
    e: usize,
    f: usize,
) -> f64 {
    assert!(e + f < k, "conversion degree must not exceed k");
    assert!((0.0..=1.0).contains(&p), "load out of range");
    let d = e + f + 1;
    let q = p / n as f64;
    let arrivals_pmf = binomial_pmf(n, q);

    // State: pending counts per residual lifetime 1..=d, count capped at
    // the residual (anything beyond can never be served under EDF).
    // Encoded base-(r+1) for compactness.
    use std::collections::HashMap;
    let mut dist: HashMap<Vec<u8>, f64> = HashMap::new();
    dist.insert(vec![0u8; d], 1.0);
    let mut served = 0.0f64;

    for i in 0..k {
        // Wavelengths whose service window begins at output i.
        let arriving: Vec<usize> = if i == 0 {
            (0..=e.min(k - 1)).collect()
        } else {
            let w = i + e;
            if w < k {
                vec![w]
            } else {
                Vec::new()
            }
        };
        // 1. Arrivals join their residual class (deadline min(w+f, k−1)).
        for w in arriving {
            let deadline = (w + f).min(k - 1);
            let residual = deadline - i + 1; // in 1..=d
            debug_assert!((1..=d).contains(&residual));
            let mut next: HashMap<Vec<u8>, f64> = HashMap::with_capacity(dist.len() * 2);
            for (state, prob) in &dist {
                for (x, px) in arrivals_pmf.iter().enumerate() {
                    if *px == 0.0 {
                        continue;
                    }
                    let mut s = state.clone();
                    let cap = u8::try_from(residual).unwrap_or(u8::MAX);
                    let arriving = u8::try_from(x).unwrap_or(u8::MAX);
                    s[residual - 1] = s[residual - 1].saturating_add(arriving).min(cap);
                    *next.entry(s).or_insert(0.0) += prob * px;
                }
            }
            dist = next;
        }
        // 2. Serve one pending request from the lowest residual class.
        let mut next: HashMap<Vec<u8>, f64> = HashMap::with_capacity(dist.len());
        for (state, prob) in &dist {
            let mut s = state.clone();
            if let Some(slot) = s.iter_mut().find(|c| **c > 0) {
                *slot -= 1;
                served += prob;
            }
            *next.entry(s).or_insert(0.0) += prob;
        }
        dist = next;
        // 3. Age: residual r becomes r−1; residual 1 items expire (lost).
        let mut next: HashMap<Vec<u8>, f64> = HashMap::with_capacity(dist.len());
        for (state, prob) in &dist {
            let mut s = vec![0u8; d];
            for r in 2..=d {
                // After ageing, class r−1 can hold at most r−1 servable.
                s[r - 2] = state[r - 1].min(u8::try_from(r - 1).unwrap_or(u8::MAX));
            }
            *next.entry(s).or_insert(0.0) += prob;
        }
        dist = next;
    }
    served
}

/// Exact contention-loss probability under limited-range non-circular
/// conversion.
pub fn limited_non_circular_loss(n: usize, k: usize, p: f64, e: usize, f: usize) -> f64 {
    let offered = k as f64 * p;
    if offered == 0.0 {
        0.0
    } else {
        1.0 - limited_non_circular_fiber_throughput(n, k, p, e, f) / offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (n, q) in [(10, 0.3), (100, 0.05), (256, 0.9), (5, 0.0), (5, 1.0)] {
            let s: f64 = binomial_pmf(n, q).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "n={n} q={q} sum={s}");
        }
    }

    #[test]
    fn pmf_matches_hand_computed_small_case() {
        let pmf = binomial_pmf(2, 0.5);
        assert!((pmf[0] - 0.25).abs() < 1e-12);
        assert!((pmf[1] - 0.5).abs() < 1e-12);
        assert!((pmf[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn expected_min_caps_correctly() {
        // Cap at n ⇒ plain mean n·q.
        let em = expected_min_binomial(20, 0.3, 20);
        assert!((em - 6.0).abs() < 1e-9);
        // Cap at 0 ⇒ 0.
        assert_eq!(expected_min_binomial(20, 0.3, 0), 0.0);
        // Cap below mean: strictly less than the mean.
        assert!(expected_min_binomial(20, 0.5, 5) < 10.0);
    }

    #[test]
    fn full_conversion_low_load_is_lossless() {
        let loss = full_conversion_loss(8, 16, 0.05);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn full_conversion_overload_saturates_at_k() {
        let tp = full_conversion_fiber_throughput(8, 16, 1.0);
        assert!(tp <= 16.0 + 1e-9);
        assert!(tp > 12.0, "high load should nearly saturate, got {tp}");
    }

    #[test]
    fn no_conversion_losses_exceed_full_conversion() {
        for p in [0.3, 0.6, 0.9] {
            let none = no_conversion_loss(8, 16, p);
            let full = full_conversion_loss(8, 16, p);
            assert!(none > full, "p={p}: none {none} vs full {full}");
        }
    }

    #[test]
    fn single_fiber_no_conversion() {
        // N = 1: every channel has exactly its own arrival, no contention.
        let loss = no_conversion_loss(1, 8, 0.7);
        assert!(loss.abs() < 1e-12);
    }

    #[test]
    fn zero_load_edge_cases() {
        assert_eq!(full_conversion_loss(4, 8, 0.0), 0.0);
        assert_eq!(no_conversion_loss(4, 8, 0.0), 0.0);
        assert_eq!(limited_non_circular_loss(4, 8, 0.0, 1, 1), 0.0);
    }

    #[test]
    fn limited_with_zero_reach_equals_no_conversion() {
        for p in [0.2, 0.5, 0.9] {
            let limited = limited_non_circular_fiber_throughput(6, 8, p, 0, 0);
            let none = no_conversion_fiber_throughput(6, 8, p);
            assert!(
                (limited - none).abs() < 1e-9,
                "p={p}: limited(0,0) {limited} vs no-conversion {none}"
            );
        }
    }

    #[test]
    fn limited_throughput_is_monotone_in_reach() {
        let (n, k, p) = (6, 10, 0.9);
        let mut last = 0.0;
        for (e, f) in [(0, 0), (0, 1), (1, 1), (2, 2), (3, 3)] {
            let tput = limited_non_circular_fiber_throughput(n, k, p, e, f);
            assert!(tput >= last - 1e-9, "(e={e}, f={f}) regressed: {tput} < {last}");
            last = tput;
        }
        // And bounded by full conversion.
        assert!(last <= full_conversion_fiber_throughput(n, k, p) + 1e-9);
    }

    /// The DP must agree with brute-force Monte Carlo over the actual First
    /// Available scheduler (which Theorem 1 proves maximum).
    #[test]
    fn limited_dp_matches_monte_carlo() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use wdm_core::algorithms::fa_schedule;
        use wdm_core::{ChannelMask, Conversion, RequestVector};

        let (n, k, e, f) = (4usize, 8usize, 1usize, 1usize);
        let conv = Conversion::non_circular(k, e, f).unwrap();
        let mask = ChannelMask::all_free(k);
        let mut rng = StdRng::seed_from_u64(314);
        for p in [0.3, 0.7, 1.0] {
            let exact = limited_non_circular_fiber_throughput(n, k, p, e, f);
            let trials = 40_000;
            let q = p / n as f64;
            let mut total = 0usize;
            for _ in 0..trials {
                let mut rv = RequestVector::new(k);
                for w in 0..k {
                    for _ in 0..n {
                        if rng.gen_bool(q) {
                            rv.add(w).unwrap();
                        }
                    }
                }
                total += fa_schedule(&conv, &rv, &mask).unwrap().len();
            }
            let mc = total as f64 / trials as f64;
            assert!((mc - exact).abs() < 0.05, "p={p}: Monte Carlo {mc:.4} vs exact DP {exact:.4}");
        }
    }

    #[test]
    fn limited_dp_handles_larger_degrees() {
        // d = 7 on k = 16 stays fast and sane.
        let tput = limited_non_circular_fiber_throughput(8, 16, 0.9, 3, 3);
        assert!(tput > 0.0 && tput <= 16.0);
        let lo = no_conversion_fiber_throughput(8, 16, 0.9);
        let hi = full_conversion_fiber_throughput(8, 16, 0.9);
        assert!(tput > lo && tput < hi + 1e-9);
    }

    #[test]
    #[should_panic(expected = "degree must not exceed")]
    fn limited_dp_rejects_oversized_degree() {
        let _ = limited_non_circular_fiber_throughput(4, 4, 0.5, 2, 2);
    }
}
