//! `wdm-sweep` — run a throughput/loss parameter sweep from the command
//! line and emit CSV (stdout) plus an optional JSON report.
//!
//! ```sh
//! # built-in default sweep (N=8, k=16, d ∈ {1, 3, full}):
//! cargo run --release -p wdm-sim --bin wdm-sweep
//!
//! # fully configured from a JSON file (see --print-config for a template):
//! cargo run --release -p wdm-sim --bin wdm-sweep -- --config sweep.json
//! cargo run --release -p wdm-sim --bin wdm-sweep -- --print-config
//! ```

use std::process::ExitCode;

use wdm_sim::experiment::{run_sweep_with_threads, to_csv, to_table, DegreeSpec, SweepConfig};

fn default_config() -> SweepConfig {
    SweepConfig::uniform_packets(
        8,
        16,
        vec![DegreeSpec::None, DegreeSpec::Circular(3), DegreeSpec::Full],
        (1..=10).map(|i| i as f64 / 10.0).collect(),
    )
}

fn usage() -> &'static str {
    "usage: wdm-sweep [--config <file.json>] [--json <out.json>] [--threads <n>] [--table] [--print-config]\n\
     \n\
     --config <file>   read a SweepConfig (JSON) instead of the default sweep\n\
     --json <file>     also write the measured rows as JSON\n\
     --threads <n>     run grid points across n worker threads (0 = all cores);\n\
     \x20                 the rows are bit-identical to a single-threaded run\n\
     --table           print a human-readable table to stderr as well\n\
     --print-config    print the default config as JSON (a template) and exit"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut table = false;
    let mut print_config = false;
    let mut threads = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().map(|t| t.parse::<usize>()) {
                Some(Ok(0)) => {
                    threads =
                        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
                }
                Some(Ok(t)) => threads = t,
                _ => {
                    eprintln!("--threads needs a numeric argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--config" => match it.next() {
                Some(p) => config_path = Some(p.clone()),
                None => {
                    eprintln!("--config needs a file argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json needs a file argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--table" => table = true,
            "--print-config" => print_config = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let config = match config_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str::<SweepConfig>(&text) {
                Ok(c) => c,
                Err(err) => {
                    eprintln!("failed to parse {path}: {err}");
                    return ExitCode::FAILURE;
                }
            },
            Err(err) => {
                eprintln!("failed to read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => default_config(),
    };

    if print_config {
        match serde_json::to_string_pretty(&config) {
            Ok(json) => {
                println!("{json}");
                return ExitCode::SUCCESS;
            }
            Err(err) => {
                eprintln!("failed to serialize config: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "wdm-sweep: N={}, k={}, {} degree configs x {} loads, {} measured slots each, {} thread(s)",
        config.n,
        config.k,
        config.degrees.len(),
        config.loads.len(),
        config.sim.measure_slots,
        threads
    );
    let rows = match run_sweep_with_threads(&config, threads) {
        Ok(rows) => rows,
        Err(err) => {
            eprintln!("sweep failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", to_csv(&rows));
    if table {
        eprint!("{}", to_table(&rows));
    }
    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&rows) {
            Ok(json) => {
                if let Err(err) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {err}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(err) => {
                eprintln!("failed to serialize rows: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
