//! `wdm-sim` — run a scenario file through the offline simulator.
//!
//! ```sh
//! # full run with a human-readable breakdown:
//! cargo run --release -p wdm-sim --bin wdm-sim -- --scenario storm.toml
//!
//! # validation only (parse + compile, no slots run):
//! cargo run --release -p wdm-sim --bin wdm-sim -- --scenario storm.toml --check-only
//!
//! # machine-readable report, replay-gated (runs twice, verifies the
//! # reports are identical before writing):
//! cargo run --release -p wdm-sim --bin wdm-sim -- --scenario storm.toml \
//!     --replay-check --out report.json
//! ```

use std::process::ExitCode;

use wdm_scenario::load_plan;
use wdm_sim::scenario::{run_scenario, ScenarioReport, WindowStats};

fn usage() -> &'static str {
    "usage: wdm-sim --scenario <file.toml> [--check-only] [--replay-check] [--out <report.json>]\n\
     \n\
     --scenario <file>  the scenario to run (schema = 1 TOML)\n\
     --check-only       parse + compile only; print the plan shape and exit\n\
     --replay-check     run the scenario twice and fail unless the two\n\
     \x20                  reports are identical (determinism gate)\n\
     --out <file>       write the report as JSON as well"
}

fn window_line(label: &str, w: &WindowStats) -> String {
    format!(
        "  {label:<8} {:>7} slots  offered {:>8}  granted {:>8}  loss {:.4}",
        w.slots,
        w.offered,
        w.granted,
        w.loss_probability(),
    )
}

fn print_report(report: &ScenarioReport) {
    println!(
        "scenario `{}`: N={} k={} d={} seed={}",
        report.name, report.n, report.k, report.degree, report.seed
    );
    println!(
        "throughput {:.4} normalized, loss {:.4}, warm repair rate {:.3}",
        report.normalized_throughput(),
        report.metrics.loss_probability(),
        report.warm.repair_rate(),
    );
    println!("phases:");
    for p in &report.phases {
        println!("{}", window_line(&p.name, &p.stats));
    }
    println!("disruption windows:");
    println!("{}", window_line("before", &report.before));
    println!("{}", window_line("during", &report.during));
    println!("{}", window_line("after", &report.after));
    println!(
        "disruption impact: {} connections dropped, {} reservations cancelled",
        report.dropped_connections, report.cancelled_reservations
    );
    println!(
        "fallback: {} engagements, {} reverts, {} slots engaged",
        report.fallback.engagements, report.fallback.reverts, report.fallback.engaged_slots
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut check_only = false;
    let mut replay_check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scenario" => match it.next() {
                Some(p) => scenario_path = Some(p.clone()),
                None => {
                    eprintln!("--scenario needs a file argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("--out needs a file argument\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--check-only" => check_only = true,
            "--replay-check" => replay_check = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(path) = scenario_path else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("{path}: failed to read: {err}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match load_plan(&text) {
        Ok(p) => p,
        Err(err) => {
            eprintln!("{path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    if check_only {
        println!(
            "{path}: OK ({} slots, {} phases, {} disruption events)",
            plan.total_slots(),
            plan.phases().len(),
            plan.events().len(),
        );
        return ExitCode::SUCCESS;
    }

    let report = match run_scenario(&plan) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("{path}: run failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if replay_check {
        let replay = match run_scenario(&plan) {
            Ok(r) => r,
            Err(err) => {
                eprintln!("{path}: replay failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let a = serde_json::to_string(&report);
        let b = serde_json::to_string(&replay);
        match (a, b) {
            (Ok(a), Ok(b)) if a == b => {
                eprintln!("replay check: OK (bit-identical report)");
            }
            (Ok(_), Ok(_)) => {
                eprintln!("replay check FAILED: two runs of the same plan diverged");
                return ExitCode::FAILURE;
            }
            _ => {
                eprintln!("replay check FAILED: report serialization error");
                return ExitCode::FAILURE;
            }
        }
    }

    print_report(&report);
    if let Some(out) = out_path {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(err) = std::fs::write(&out, json) {
                    eprintln!("{out}: failed to write: {err}");
                    return ExitCode::FAILURE;
                }
            }
            Err(err) => {
                eprintln!("failed to serialize report: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
