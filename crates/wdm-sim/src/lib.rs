//! # wdm-sim
//!
//! The slotted simulation harness used to evaluate the scheduling
//! algorithms on whole-interconnect workloads:
//!
//! * [`traffic`] — synthetic arrival processes: i.i.d. Bernoulli with
//!   uniform destinations, hotspot destinations, bursty on/off sources, and
//!   deterministic or geometric multi-slot holding times (the models used by
//!   the paper's citations [11], [13], [14] — no public 2003 OXC traces
//!   exist, see DESIGN.md);
//! * [`metrics`] — per-slot accounting: offered load, carried load,
//!   contention losses, channel utilization, with batch-means confidence
//!   intervals;
//! * [`engine`] — ties a [`wdm_interconnect::Interconnect`] to a traffic
//!   model and runs warmup + measurement phases;
//! * [`analysis`] — the exact analytical throughput of full-range
//!   conversion (balls-in-bins), used to validate the simulator;
//! * [`experiment`] — parameter-sweep runner producing the CSV/JSON tables
//!   behind EXPERIMENTS.md;
//! * [`sweep_sync`] — the cursor/slot coordination protocol behind the
//!   multi-threaded sweep, model-checked exhaustively under loom
//!   (`cargo xtask loom`);
//! * [`scenario`] — executes a compiled `wdm-scenario` plan: phased load,
//!   mid-run disruptions (converter failures, fiber outages), degraded-mode
//!   policy fallback, with per-phase and per-disruption-window breakdowns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod analysis;
pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod scenario;
pub mod sweep_sync;
pub mod trace;
pub mod traffic;

pub use engine::{Report, ReservationSummary, Simulation, SimulationConfig, WarmSummary};
pub use metrics::{Metrics, SlotObservation};
pub use scenario::{
    duration_model, run_scenario, FallbackReport, PhaseReport, ScenarioReport, ScenarioTraffic,
    WindowStats,
};
pub use trace::{
    ReplayError, ReplayReport, SessionTrace, TraceConfig, TraceGrant, TraceRequest, TraceSlot,
};
pub use traffic::{
    BernoulliUniform, BurstyOnOff, DurationModel, Hotspot, ReservationTraffic, TrafficModel,
};
