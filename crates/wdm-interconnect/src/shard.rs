//! The per-output-fiber scheduling unit — the shard API.
//!
//! A [`FiberUnit`] bundles everything one output fiber needs to make its
//! per-slot decision: the [`FiberScheduler`] for the wavelength-level
//! matching, the [`GrantResolver`] for round-robin request arbitration, the
//! in-flight connection table, and the reused [`ScratchArena`] / request /
//! mask buffers that keep the steady-state slot loop allocation-free.
//!
//! Both consumers of the paper's distributed architecture run on this one
//! type: [`crate::Interconnect`] instantiates `N` units for the offline
//! engine, and the `wdm-serve` daemon wraps one unit per destination-fiber
//! shard. Sharing the code path is what makes a recorded daemon session
//! replayable bit-for-bit through the offline engine — there is no second
//! implementation to drift.

use wdm_attr::{allow_reach, hot_path};
use wdm_core::{
    ChannelMask, Conversion, ConversionKind, Error, FiberScheduler, Policy, RequestVector,
    ScratchArena,
};

use crate::arbitration::GrantResolver;
use crate::connection::{ConnectionRequest, Grant};
use crate::interconnect::HoldPolicy;
use crate::rearrange::rearrange_fiber;

/// An in-flight connection held on one output fiber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveLink {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Source wavelength.
    pub src_wavelength: usize,
    /// Output channel the connection occupies on this fiber.
    pub output_wavelength: usize,
    /// Slots left including the current one.
    pub remaining: u32,
}

/// Outcome of scheduling one fiber for one slot. The vectors are cleared
/// and refilled each slot — hold a reference only until the next
/// [`FiberUnit::schedule`] call.
#[derive(Debug, Clone, Default)]
pub struct FiberOutcome {
    grants: Vec<Grant>,
    contention: Vec<ConnectionRequest>,
    rearranged: usize,
}

impl FiberOutcome {
    /// Requests granted this slot, in resolver order.
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Requests that lost the output contention this slot, in candidate
    /// order.
    pub fn contention(&self) -> &[ConnectionRequest] {
        &self.contention
    }

    /// In-flight connections moved to a different output channel this slot
    /// (always 0 under [`HoldPolicy::NonDisturb`]).
    pub fn rearranged(&self) -> usize {
        self.rearranged
    }
}

/// One output fiber's scheduling state: the paper's independent
/// per-destination scheduler, packaged so `N` of them can run with no
/// shared state (each unit owns its arena and buffers outright).
#[derive(Debug, Clone)]
pub struct FiberUnit {
    n: usize,
    conversion: Conversion,
    scheduler: FiberScheduler,
    resolver: GrantResolver,
    actives: Vec<ActiveLink>,
    arena: ScratchArena,
    requests: RequestVector,
    mask: ChannelMask,
    outcome: FiberOutcome,
    /// Whether the fiber is in a full outage (disruption timeline): a down
    /// fiber schedules nothing — every candidate loses output contention —
    /// and holds no in-flight connections (they were dropped at outage).
    down: bool,
}

impl FiberUnit {
    /// A unit for one output fiber of an `n`-fiber interconnect under the
    /// given conversion scheme and policy.
    /// Rejects a policy/conversion-kind mismatch up front (the same typed
    /// [`Error::UnsupportedConversion`] the algorithms raise at schedule
    /// time), so a misconfigured engine fails at construction rather than
    /// mid-slot.
    pub fn new(n: usize, conversion: Conversion, policy: Policy) -> Result<FiberUnit, Error> {
        if n == 0 {
            return Err(Error::ZeroFibers);
        }
        check_policy_kind(&conversion, policy)?;
        let k = conversion.k();
        Ok(FiberUnit {
            n,
            conversion,
            scheduler: FiberScheduler::new(conversion, policy),
            resolver: GrantResolver::new(n, k),
            actives: Vec::new(),
            arena: ScratchArena::for_k(k),
            requests: RequestVector::new(k),
            mask: ChannelMask::all_free(k),
            outcome: FiberOutcome::default(),
            down: false,
        })
    }

    /// Number of fibers per interconnect side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The conversion scheme.
    pub fn conversion(&self) -> &Conversion {
        &self.conversion
    }

    /// The scheduling policy.
    pub fn policy(&self) -> Policy {
        self.scheduler.policy()
    }

    /// The in-flight connections on this fiber.
    pub fn actives(&self) -> &[ActiveLink] {
        &self.actives
    }

    /// Cumulative warm-start counters of this fiber's scheduler: how many
    /// slots were repaired from the previous slot's matching, fell back to
    /// from-scratch dispatch, or ran cold.
    pub fn warm_stats(&self) -> wdm_core::WarmStats {
        self.scheduler.warm_stats()
    }

    /// Discards the scheduler's warm state and zeroes its counters; the next
    /// slot schedules from scratch. Useful for cold-start measurements and
    /// for comparing against stateless reference schedulers.
    pub fn reset_warm(&mut self) {
        self.scheduler.reset_warm();
    }

    /// Whether the fiber is currently in a full outage ([`Self::set_down`]).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Takes the fiber into or out of a full outage — the disruption
    /// timeline's outage/rejoin events. Going down drops every in-flight
    /// connection (an outage severs the light paths; nothing is silently
    /// kept) and discards warm state; coming back up starts the fiber cold
    /// and empty. Returns the number of connections dropped (always 0 on
    /// rejoin and on a no-op repeat).
    pub fn set_down(&mut self, down: bool) -> usize {
        if self.down == down {
            return 0;
        }
        self.down = down;
        self.scheduler.invalidate_warm();
        if down {
            let dropped = self.actives.len();
            self.actives.clear();
            dropped
        } else {
            0
        }
    }

    /// Swaps the conversion scheme mid-run — the converter-failure /
    /// recovery path of the disruption timeline. The wavelength count must
    /// be unchanged (converters fail, channels do not) and the new scheme's
    /// kind must still support the current policy. In-flight connections the
    /// shrunken range can no longer realise are dropped — never silently
    /// kept — and the count is returned; warm-start state is invalidated so
    /// the next slot repairs from scratch while cumulative warm counters
    /// survive the swap.
    pub fn set_conversion(&mut self, conversion: Conversion) -> Result<usize, Error> {
        check_policy_kind(&conversion, self.policy())?;
        self.scheduler.set_conversion(conversion)?;
        self.conversion = conversion;
        let before = self.actives.len();
        self.actives.retain(|a| conversion.converts(a.src_wavelength, a.output_wavelength));
        Ok(before - self.actives.len())
    }

    /// Swaps the scheduling policy mid-run — the degraded-mode fallback
    /// path. Rejects a policy the current conversion kind cannot support
    /// (the same matrix [`Self::new`] enforces); on success warm-start
    /// state is invalidated while the cumulative counters survive.
    pub fn set_policy(&mut self, policy: Policy) -> Result<(), Error> {
        check_policy_kind(&self.conversion, policy)?;
        self.scheduler.set_policy(policy);
        Ok(())
    }

    /// The channel availability implied by the in-flight connections.
    pub fn occupied_mask(&self) -> ChannelMask {
        let mut mask = ChannelMask::all_free(self.conversion.k());
        for a in &self.actives {
            if mask.set_occupied(a.output_wavelength).is_err() {
                unreachable!("active channel is in range");
            }
        }
        mask
    }

    /// Ages in-flight connections by one slot at slot start; completed
    /// connections free their channels for this slot's scheduling. Returns
    /// how many completed.
    pub fn age(&mut self) -> usize {
        let before = self.actives.len();
        self.actives.retain_mut(|a| {
            a.remaining -= 1;
            a.remaining > 0
        });
        before - self.actives.len()
    }

    /// The outcome written by the last [`Self::schedule`] call.
    pub fn outcome(&self) -> &FiberOutcome {
        &self.outcome
    }

    /// Schedules this fiber for one slot: `candidates` are the already
    /// source-validated requests destined to this fiber, in arrival order.
    /// Granted connections are latched into the active table immediately.
    ///
    /// The outcome lands in reused buffers ([`Self::outcome`]); at steady
    /// state the non-disturb path performs zero heap allocations (pinned by
    /// the counting-allocator tests in `wdm-alloc-count`). In debug builds
    /// every schedule passes the full matching certificate inside
    /// [`FiberScheduler::schedule_slot`].
    ///
    /// # Panics
    ///
    /// Panics (via `unreachable!`) if a candidate was not validated against
    /// this unit's dimensions — callers must validate first.
    pub fn schedule(
        &mut self,
        hold: HoldPolicy,
        candidates: &[ConnectionRequest],
    ) -> &FiberOutcome {
        if self.down {
            // A downed output fiber grants nothing: every candidate loses
            // the output contention, without touching the scheduler.
            self.outcome.grants.clear();
            self.outcome.contention.clear();
            self.outcome.contention.extend_from_slice(candidates);
            self.outcome.rearranged = 0;
            return &self.outcome;
        }
        match hold {
            HoldPolicy::NonDisturb => self.schedule_non_disturb(candidates),
            HoldPolicy::Rearrange => self.schedule_rearrange(candidates),
        }
        for g in &self.outcome.grants {
            self.actives.push(ActiveLink {
                src_fiber: g.request.src_fiber,
                src_wavelength: g.request.src_wavelength,
                output_wavelength: g.output_wavelength,
                remaining: g.request.duration,
            });
        }
        &self.outcome
    }

    /// §V non-disturb: occupied channels leave the request graph; the
    /// wavelength-level matching runs over the free ones.
    #[hot_path]
    fn schedule_non_disturb(&mut self, candidates: &[ConnectionRequest]) {
        self.requests.clear();
        for c in candidates {
            expect_validated(self.requests.add(c.src_wavelength), "validated request");
        }
        self.mask.reset_all_free();
        for a in &self.actives {
            expect_validated(
                self.mask.set_occupied(a.output_wavelength),
                "active channel in range",
            );
        }
        // `schedule_slot` reuses the unit's arena (no allocations at steady
        // state) and runs the full matching certificate behind a debug
        // assertion, so every per-fiber scheduling decision is verified
        // maximum in debug builds.
        let _stats = expect_validated(
            self.scheduler.schedule_slot(&self.requests, &self.mask, &mut self.arena),
            "validated dimensions",
        );
        self.resolver.resolve_into(
            self.arena.assignments(),
            candidates,
            &mut self.outcome.grants,
            &mut self.outcome.contention,
        );
        self.outcome.rearranged = 0;
    }

    /// §V rearrangement: in-flight connections may move to another channel
    /// (never dropped); all `k` channels participate.
    #[allow_reach(
        hot_path,
        reason = "HoldPolicy::Rearrange is an explicit circuit-switched mode; rearrangement events are rare and benched separately from the packet-switch steady state"
    )]
    fn schedule_rearrange(&mut self, candidates: &[ConnectionRequest]) {
        let k = self.conversion.k();
        let active_w: Vec<usize> = self.actives.iter().map(|a| a.src_wavelength).collect();
        let new_w: Vec<usize> = candidates.iter().map(|c| c.src_wavelength).collect();
        let outcome = expect_validated(
            rearrange_fiber(&self.conversion, &active_w, &new_w, &ChannelMask::all_free(k)),
            "in-flight connections are always placeable",
        );
        // Debug-build certificate: every assigned channel is used once and
        // every placement respects the conversion range.
        debug_assert!(
            {
                let mut used = vec![false; k];
                let all =
                    outcome.active_channels.iter().zip(&active_w).map(|(&u, &w)| (w, u)).chain(
                        outcome
                            .request_channels
                            .iter()
                            .zip(&new_w)
                            .filter_map(|(u, &w)| u.map(|u| (w, u))),
                    );
                all.fold(true, |ok, (w, u)| {
                    let fresh = !std::mem::replace(&mut used[u], true);
                    ok && fresh && self.conversion.converts(w, u)
                })
            },
            "rearrangement produced an infeasible channel assignment"
        );
        let mut rearranged = 0usize;
        for (a, &u) in self.actives.iter_mut().zip(&outcome.active_channels) {
            if a.output_wavelength != u {
                a.output_wavelength = u;
                rearranged += 1;
            }
        }
        self.outcome.grants.clear();
        self.outcome.contention.clear();
        for (c, assigned) in candidates.iter().zip(&outcome.request_channels) {
            match assigned {
                Some(u) => {
                    self.outcome.grants.push(Grant { request: *c, output_wavelength: *u });
                }
                None => self.outcome.contention.push(*c),
            }
        }
        self.outcome.rearranged = rearranged;
    }
}

/// Unwraps a result whose error leg is precluded by admission-time
/// validation; the message names the invariant. Out-of-line so each
/// precluded panic rides on this one audited suppression instead of a
/// blanket one over the scheduling bodies.
#[allow_reach(
    panic_free,
    reason = "the error legs restate invariants established by admission-time validation of requests and dimensions; keeping them out-of-line preserves the panic_free obligation on the scheduling bodies themselves"
)]
fn expect_validated<T, E>(result: Result<T, E>, invariant: &'static str) -> T {
    match result {
        Ok(v) => v,
        Err(_) => unreachable!("{invariant}"),
    }
}

/// The policy/conversion-kind compatibility matrix (mirrors the guards
/// inside the per-slot algorithms, which this check makes unreachable):
/// FA needs non-circular; BFA and the approximation need circular (full
/// range included); Auto and Hopcroft–Karp accept everything.
pub(crate) fn check_policy_kind(conversion: &Conversion, policy: Policy) -> Result<(), Error> {
    match policy {
        Policy::Auto | Policy::HopcroftKarp => Ok(()),
        Policy::FirstAvailable => {
            if conversion.kind() == ConversionKind::NonCircular {
                Ok(())
            } else {
                Err(Error::UnsupportedConversion {
                    algorithm: "First Available",
                    requires:
                        "non-circular conversion (use Break and First Available for circular)",
                })
            }
        }
        Policy::BreakFirstAvailable => {
            if conversion.is_full() || conversion.kind() == ConversionKind::Circular {
                Ok(())
            } else {
                Err(Error::UnsupportedConversion {
                    algorithm: "Break and First Available",
                    requires: "circular conversion (use First Available for non-circular)",
                })
            }
        }
        Policy::Approximate => {
            if conversion.is_full() || conversion.kind() == ConversionKind::Circular {
                Ok(())
            } else {
                Err(Error::UnsupportedConversion {
                    algorithm: "single-break approximation",
                    requires:
                        "circular conversion (First Available is already exact and O(k) for non-circular)",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conversion {
        Conversion::symmetric_circular(6, 3).unwrap()
    }

    #[test]
    fn grants_latch_into_actives() {
        let mut unit = FiberUnit::new(4, conv(), Policy::Auto).unwrap();
        let candidates =
            vec![ConnectionRequest::burst(0, 0, 0, 3), ConnectionRequest::packet(1, 2, 0)];
        let outcome = unit.schedule(HoldPolicy::NonDisturb, &candidates);
        assert_eq!(outcome.grants().len(), 2);
        assert_eq!(outcome.contention().len(), 0);
        assert_eq!(unit.actives().len(), 2);
        // Ageing completes the packet but not the burst.
        assert_eq!(unit.age(), 1);
        assert_eq!(unit.actives().len(), 1);
        assert_eq!(unit.actives()[0].remaining, 2);
    }

    #[test]
    fn occupied_mask_tracks_actives() {
        let mut unit = FiberUnit::new(2, conv(), Policy::Auto).unwrap();
        let _ = unit.schedule(HoldPolicy::NonDisturb, &[ConnectionRequest::burst(0, 2, 0, 5)]);
        let held = unit.actives()[0].output_wavelength;
        assert!(!unit.occupied_mask().is_free(held));
        assert_eq!(unit.occupied_mask().free_count(), 5);
    }

    #[test]
    fn contention_reported_in_candidate_order() {
        // 7 requests into 6 channels: exactly one loses.
        let mut unit = FiberUnit::new(4, conv(), Policy::Auto).unwrap();
        let candidates: Vec<ConnectionRequest> =
            [(0, 0), (1, 0), (2, 1), (3, 3), (0, 4), (1, 5), (2, 5)]
                .iter()
                .map(|&(fiber, w)| ConnectionRequest::packet(fiber, w, 0))
                .collect();
        let outcome = unit.schedule(HoldPolicy::NonDisturb, &candidates);
        assert_eq!(outcome.grants().len(), 6);
        assert_eq!(outcome.contention().len(), 1);
    }

    #[test]
    fn set_conversion_drops_infeasible_actives_and_keeps_counters() {
        let mut unit = FiberUnit::new(4, conv(), Policy::Auto).unwrap();
        // Two connections: one within degree-1 reach (w -> w), one that
        // needs the wider circular range.
        let _ = unit.schedule(
            HoldPolicy::NonDisturb,
            &[ConnectionRequest::burst(0, 2, 0, 10), ConnectionRequest::burst(1, 2, 0, 10)],
        );
        assert_eq!(unit.actives().len(), 2);
        let stats_before = unit.warm_stats();
        let shrunk = Conversion::symmetric_circular(6, 1).unwrap();
        // Both grants share source wavelength 2, so at most one sits on the
        // diagonal channel the degree-1 scheme can still realise.
        let expect_drop = unit
            .actives()
            .iter()
            .filter(|a| !shrunk.converts(a.src_wavelength, a.output_wavelength))
            .count();
        assert!(expect_drop >= 1);
        let dropped = unit.set_conversion(shrunk).unwrap();
        assert_eq!(dropped, expect_drop);
        assert_eq!(unit.actives().len(), 2 - expect_drop);
        assert!(unit
            .actives()
            .iter()
            .all(|a| shrunk.converts(a.src_wavelength, a.output_wavelength)));
        // Cumulative warm counters survive the swap (only warm state resets).
        assert_eq!(unit.warm_stats(), stats_before);
    }

    #[test]
    fn set_conversion_rejects_k_change_and_kind_mismatch() {
        let mut unit = FiberUnit::new(2, conv(), Policy::BreakFirstAvailable).unwrap();
        assert!(matches!(
            unit.set_conversion(Conversion::symmetric_circular(4, 1).unwrap()),
            Err(Error::WavelengthCountMismatch { .. })
        ));
        // BFA cannot run on a non-circular scheme: the swap must refuse and
        // leave the unit untouched.
        assert!(matches!(
            unit.set_conversion(Conversion::symmetric_non_circular(6, 1).unwrap()),
            Err(Error::UnsupportedConversion { .. })
        ));
        assert_eq!(unit.conversion().degree(), 3);
    }

    #[test]
    fn set_policy_checks_kind_and_swaps() {
        let mut unit = FiberUnit::new(2, conv(), Policy::BreakFirstAvailable).unwrap();
        assert!(matches!(
            unit.set_policy(Policy::FirstAvailable),
            Err(Error::UnsupportedConversion { .. })
        ));
        assert_eq!(unit.policy(), Policy::BreakFirstAvailable);
        unit.set_policy(Policy::Approximate).unwrap();
        assert_eq!(unit.policy(), Policy::Approximate);
    }

    #[test]
    fn down_fiber_rejects_all_and_drops_actives() {
        let mut unit = FiberUnit::new(4, conv(), Policy::Auto).unwrap();
        let _ = unit.schedule(HoldPolicy::NonDisturb, &[ConnectionRequest::burst(0, 0, 0, 9)]);
        assert_eq!(unit.actives().len(), 1);
        assert_eq!(unit.set_down(true), 1);
        assert!(unit.is_down());
        assert!(unit.actives().is_empty());
        // Repeat transitions are no-ops.
        assert_eq!(unit.set_down(true), 0);
        let outcome = unit.schedule(HoldPolicy::NonDisturb, &[ConnectionRequest::packet(1, 1, 0)]);
        assert!(outcome.grants().is_empty());
        assert_eq!(outcome.contention().len(), 1);
        assert_eq!(unit.set_down(false), 0);
        let outcome = unit.schedule(HoldPolicy::NonDisturb, &[ConnectionRequest::packet(1, 1, 0)]);
        assert_eq!(outcome.grants().len(), 1);
    }

    #[test]
    fn zero_fibers_rejected() {
        assert!(FiberUnit::new(0, conv(), Policy::Auto).is_err());
    }

    #[test]
    fn policy_kind_mismatch_rejected_at_construction() {
        let circular = Conversion::symmetric_circular(6, 3).unwrap();
        let non_circular = Conversion::symmetric_non_circular(6, 1).unwrap();
        let full = Conversion::full(6).unwrap();
        assert!(matches!(
            FiberUnit::new(2, circular, Policy::FirstAvailable),
            Err(Error::UnsupportedConversion { .. })
        ));
        assert!(matches!(
            FiberUnit::new(2, non_circular, Policy::BreakFirstAvailable),
            Err(Error::UnsupportedConversion { .. })
        ));
        assert!(matches!(
            FiberUnit::new(2, non_circular, Policy::Approximate),
            Err(Error::UnsupportedConversion { .. })
        ));
        // Full range counts as circular for BFA/approx; every policy-less
        // pairing still constructs.
        assert!(FiberUnit::new(2, full, Policy::BreakFirstAvailable).is_ok());
        assert!(FiberUnit::new(2, full, Policy::Approximate).is_ok());
        assert!(FiberUnit::new(2, non_circular, Policy::FirstAvailable).is_ok());
        assert!(FiberUnit::new(2, circular, Policy::Auto).is_ok());
        assert!(FiberUnit::new(2, non_circular, Policy::HopcroftKarp).is_ok());
    }
}
