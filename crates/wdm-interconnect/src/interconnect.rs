//! The top-level slotted `N×N` interconnect.
//!
//! Per time slot: in-flight multi-slot connections age (completed ones free
//! their channels), new requests are partitioned by destination fiber, the
//! `N` independent per-fiber schedulers run (optionally in parallel —
//! [`crate::distributed`]), wavelength-level grants are resolved to concrete
//! requests with round-robin fairness, and the resulting fabric
//! configuration is checked against the physical datapath model.

use wdm_attr::hot_path;
use wdm_core::{ChannelMask, Conversion, Error, Policy};

use crate::connection::{ConnectionRequest, RejectReason, Rejection, SlotResult};
use crate::distributed::run_per_fiber;
use crate::fabric::CrossbarState;
use crate::reservation::{
    PreemptionPolicy, Reservation, ReservationExpiry, ReservationGrant, ReservationRequest,
    ReservationStore, DEFAULT_RESERVATION_HORIZON,
};
use crate::shard::FiberUnit;

/// What happens to in-flight multi-slot connections at scheduling time
/// (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HoldPolicy {
    /// In-flight connections keep their channel; occupied channels are
    /// removed from the request graph (optical burst switching).
    #[default]
    NonDisturb,
    /// In-flight connections may be reassigned to another output channel,
    /// but are never dropped; all `k` channels participate in scheduling.
    Rearrange,
}

/// Configuration of an [`Interconnect`].
#[derive(Debug, Clone, Copy)]
pub struct InterconnectConfig {
    /// Number of input = output fibers (`N`).
    pub n: usize,
    /// The wavelength conversion scheme (defines `k` and `d`).
    pub conversion: Conversion,
    /// Wavelength-level scheduling policy (used under
    /// [`HoldPolicy::NonDisturb`]; rearrangement uses augmenting paths).
    pub policy: Policy,
    /// Multi-slot holding policy.
    pub hold: HoldPolicy,
    /// Worker threads for per-fiber scheduling; `<= 1` runs sequentially.
    pub threads: usize,
    /// How activating advance reservations meet the slot's cell traffic.
    pub preemption: PreemptionPolicy,
    /// Admission horizon for advance reservations (slots ahead of `now`
    /// the [`ReservationStore`] will book).
    pub reservation_horizon: u64,
}

impl InterconnectConfig {
    /// A synchronous optical packet switch: Auto policy, non-disturb holds,
    /// sequential scheduling.
    pub fn packet_switch(n: usize, conversion: Conversion) -> InterconnectConfig {
        InterconnectConfig {
            n,
            conversion,
            policy: Policy::Auto,
            hold: HoldPolicy::NonDisturb,
            threads: 1,
            preemption: PreemptionPolicy::ReservedFirst,
            reservation_horizon: DEFAULT_RESERVATION_HORIZON,
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the holding policy.
    pub fn with_hold(mut self, hold: HoldPolicy) -> Self {
        self.hold = hold;
        self
    }

    /// Sets the number of scheduling threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the reservation preemption policy.
    pub fn with_preemption(mut self, preemption: PreemptionPolicy) -> Self {
        self.preemption = preemption;
        self
    }

    /// Sets the reservation admission horizon.
    pub fn with_reservation_horizon(mut self, horizon: u64) -> Self {
        self.reservation_horizon = horizon;
        self
    }
}

/// What applying a disruption event did to live interconnect state. Carried
/// back to the caller so dropped work is reported, never silently absorbed.
#[must_use = "disruptions drop live connections and reservations; report the impact"]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisruptionImpact {
    /// In-flight connections dropped because the event made them
    /// unrealisable (outage) or unreachable (converter failure).
    pub dropped_connections: usize,
    /// Pending advance reservations cancelled because their destination
    /// fiber went dark before activation.
    pub cancelled_reservations: usize,
}

/// The slotted `N×N` wavelength-convertible interconnect.
///
/// Each output fiber is a [`FiberUnit`] — the same shard type the
/// `wdm-serve` daemon runs — owning its arena and reusable buffers, so the
/// per-slot scheduling loop allocates nothing at steady state.
/// [`crate::distributed::run_per_fiber`] hands each worker thread a disjoint
/// chunk of units: a worker owns the arenas of exactly the fibers it
/// schedules — no sharing, no locks.
#[derive(Debug, Clone)]
pub struct Interconnect {
    n: usize,
    conversion: Conversion,
    hold: HoldPolicy,
    threads: usize,
    fibers: Vec<FiberUnit>,
    slot: u64,
    preemption: PreemptionPolicy,
    /// The advance-reservation capacity ledger (paper §V).
    store: ReservationStore,
    /// Per-slot scratch: which input channels already carry a connection
    /// (or claimed a request earlier this slot). Reused across slots.
    input_busy: Vec<bool>,
    /// Per-slot scratch: requests partitioned by destination fiber.
    per_fiber: Vec<Vec<ConnectionRequest>>,
    /// Per-slot scratch: reservations whose start slot has arrived.
    due: Vec<Reservation>,
    /// Per-slot scratch: activating reservations partitioned by
    /// destination fiber (used under [`PreemptionPolicy::ReservedFirst`]).
    resv_per_fiber: Vec<Vec<ConnectionRequest>>,
}

impl Interconnect {
    /// Builds an interconnect from its configuration.
    pub fn new(config: InterconnectConfig) -> Result<Interconnect, Error> {
        if config.n == 0 {
            return Err(Error::ZeroFibers);
        }
        let k = config.conversion.k();
        let fibers = (0..config.n)
            .map(|_| FiberUnit::new(config.n, config.conversion, config.policy))
            .collect::<Result<Vec<_>, Error>>()?;
        Ok(Interconnect {
            n: config.n,
            conversion: config.conversion,
            hold: config.hold,
            threads: config.threads,
            fibers,
            slot: 0,
            preemption: config.preemption,
            store: ReservationStore::new(config.n, k, config.reservation_horizon),
            input_busy: vec![false; config.n * k],
            per_fiber: vec![Vec::new(); config.n],
            due: Vec::new(),
            resv_per_fiber: vec![Vec::new(); config.n],
        })
    }

    /// Number of fibers per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of wavelengths per fiber.
    pub fn k(&self) -> usize {
        self.conversion.k()
    }

    /// The conversion scheme.
    pub fn conversion(&self) -> &Conversion {
        &self.conversion
    }

    /// The current slot number (slots completed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Number of in-flight connections.
    pub fn active_connections(&self) -> usize {
        self.fibers.iter().map(|f| f.actives().len()).sum()
    }

    /// Cumulative warm-start counters summed over every fiber's scheduler:
    /// how many per-fiber slots were repaired from the previous slot's
    /// matching, fell back to from-scratch dispatch, or ran cold.
    pub fn warm_stats(&self) -> wdm_core::WarmStats {
        let mut total = wdm_core::WarmStats::default();
        for f in &self.fibers {
            let stats = f.warm_stats();
            total.repaired += stats.repaired;
            total.fallback += stats.fallback;
            total.cold += stats.cold;
        }
        total
    }

    /// Discards every fiber scheduler's warm state and zeroes the counters;
    /// the next slot schedules every fiber from scratch.
    pub fn reset_warm(&mut self) {
        for f in &mut self.fibers {
            f.reset_warm();
        }
    }

    /// The conversion scheme currently in force on output fiber `fiber`
    /// (the baseline from [`Self::conversion`] unless a converter-failure
    /// disruption shrank it).
    pub fn fiber_conversion(&self, fiber: usize) -> Result<&Conversion, Error> {
        match self.fibers.get(fiber) {
            Some(f) => Ok(f.conversion()),
            None => Err(Error::InvalidFiber { fiber, n: self.n }),
        }
    }

    /// Whether output fiber `fiber` is currently in a full outage.
    pub fn is_fiber_down(&self, fiber: usize) -> Result<bool, Error> {
        match self.fibers.get(fiber) {
            Some(f) => Ok(f.is_down()),
            None => Err(Error::InvalidFiber { fiber, n: self.n }),
        }
    }

    /// Applies a converter-failure event: output fiber `fiber` runs under
    /// the (typically narrower) `conversion` scheme from the next scheduled
    /// slot on. The wavelength count must match the baseline and the scheme
    /// must support the fiber's current policy. In-flight connections the
    /// new range cannot realise are dropped and counted in the returned
    /// impact — never silently kept; the fiber's warm-start state is
    /// invalidated so the next slot repairs from scratch. Pending
    /// reservations stay booked: they reserve channel *capacity*, which is
    /// unchanged, and conversion reachability is (by the admission
    /// contract) decided at activation time.
    pub fn shrink_conversion(
        &mut self,
        fiber: usize,
        conversion: Conversion,
    ) -> Result<DisruptionImpact, Error> {
        let Some(unit) = self.fibers.get_mut(fiber) else {
            return Err(Error::InvalidFiber { fiber, n: self.n });
        };
        let dropped = unit.set_conversion(conversion)?;
        Ok(DisruptionImpact { dropped_connections: dropped, cancelled_reservations: 0 })
    }

    /// Applies a converter-recovery event: output fiber `fiber` returns to
    /// the baseline conversion scheme. Warm-start state is invalidated (the
    /// previous matching was computed under the narrow range); nothing is
    /// dropped — the baseline range is checked to be a superset in debug
    /// builds and re-verified per active link regardless.
    pub fn restore_conversion(&mut self, fiber: usize) -> Result<DisruptionImpact, Error> {
        let baseline = self.conversion;
        let Some(unit) = self.fibers.get_mut(fiber) else {
            return Err(Error::InvalidFiber { fiber, n: self.n });
        };
        let dropped = unit.set_conversion(baseline)?;
        debug_assert_eq!(dropped, 0, "restoring the baseline conversion drops nothing");
        Ok(DisruptionImpact { dropped_connections: dropped, cancelled_reservations: 0 })
    }

    /// Applies a full fiber-outage event: output fiber `fiber` goes dark.
    /// Every in-flight connection on it is severed, every pending
    /// reservation destined to it is cancelled (its booked capacity no
    /// longer exists — keeping it would be a silent lie the activation-time
    /// check could not catch under [`PreemptionPolicy::ReservedFirst`]),
    /// and until [`Self::rejoin_fiber`] every request destined there loses
    /// output contention. New reservations toward a down fiber are denied
    /// at admission.
    pub fn fail_fiber(&mut self, fiber: usize) -> Result<DisruptionImpact, Error> {
        let Some(unit) = self.fibers.get_mut(fiber) else {
            return Err(Error::InvalidFiber { fiber, n: self.n });
        };
        let dropped = unit.set_down(true);
        let cancelled = self.store.cancel_dst_fiber(fiber);
        Ok(DisruptionImpact { dropped_connections: dropped, cancelled_reservations: cancelled })
    }

    /// Reverses [`Self::fail_fiber`]: the fiber rejoins cold and empty from
    /// the next scheduled slot on. Returns an all-zero impact (rejoin drops
    /// nothing) so call sites treat both edges of the outage uniformly.
    pub fn rejoin_fiber(&mut self, fiber: usize) -> Result<DisruptionImpact, Error> {
        let Some(unit) = self.fibers.get_mut(fiber) else {
            return Err(Error::InvalidFiber { fiber, n: self.n });
        };
        let dropped = unit.set_down(false);
        debug_assert_eq!(dropped, 0, "rejoining drops nothing");
        Ok(DisruptionImpact { dropped_connections: dropped, cancelled_reservations: 0 })
    }

    /// Swaps the scheduling policy on every fiber — the degraded-mode
    /// fallback path (e.g. BFA → the O(k) approximation under overload,
    /// and back on recovery). All-or-nothing: the swap is validated against
    /// every fiber's *current* conversion kind first and applied only if
    /// every fiber accepts it. Warm-start state is invalidated on every
    /// fiber; cumulative warm counters survive.
    pub fn set_policy_all(&mut self, policy: Policy) -> Result<(), Error> {
        for f in &self.fibers {
            crate::shard::check_policy_kind(f.conversion(), policy)?;
        }
        for f in &mut self.fibers {
            match f.set_policy(policy) {
                Ok(()) => {}
                Err(_) => unreachable!("policy pre-validated against every fiber"),
            }
        }
        Ok(())
    }

    /// The advance-reservation ledger (pending reservations, horizon).
    pub fn reservations(&self) -> &ReservationStore {
        &self.store
    }

    /// The reservation preemption policy in force.
    pub fn preemption(&self) -> PreemptionPolicy {
        self.preemption
    }

    /// Admits an advance reservation against future slot capacity (paper
    /// §V), returning its id, or a typed denial
    /// ([`Error::ReservationInPast`], [`Error::ReservationHorizonExceeded`],
    /// [`Error::ReservationCapacityExhausted`], field validation).
    ///
    /// The reservation activates automatically at its start slot during
    /// [`Self::advance_slot_into`]; its outcome is reported in
    /// [`SlotResult::reservation_grants`] /
    /// [`SlotResult::reservation_expired`].
    pub fn reserve(&mut self, request: ReservationRequest) -> Result<u64, Error> {
        self.store.try_reserve(self.slot, request, &self.fibers)
    }

    /// [`Self::reserve`] through the store's certificate twin
    /// ([`ReservationStore::try_reserve_checked`]): the whole ledger is
    /// re-verified after admission.
    pub fn reserve_checked(&mut self, request: ReservationRequest) -> Result<u64, Error> {
        self.store.try_reserve_checked(self.slot, request, &self.fibers)
    }

    /// Cancels a pending reservation. Returns whether `id` was pending.
    pub fn cancel_reservation(&mut self, id: u64) -> bool {
        self.store.cancel(id)
    }

    /// The channel availability of output fiber `fiber`.
    ///
    /// # Panics
    ///
    /// Panics if `fiber >= n`.
    pub fn occupied_mask(&self, fiber: usize) -> ChannelMask {
        self.fibers[fiber].occupied_mask()
    }

    /// The current switching-fabric configuration.
    pub fn crossbar(&self) -> CrossbarState {
        let mut xb = CrossbarState::new(self.n, self.k());
        for (o, fiber) in self.fibers.iter().enumerate() {
            for a in fiber.actives() {
                if xb.connect(a.src_fiber, a.src_wavelength, o, a.output_wavelength).is_err() {
                    unreachable!("active connections are mutually consistent");
                }
            }
        }
        xb
    }

    /// Advances one time slot: ages in-flight connections, schedules the new
    /// `requests`, and returns everything that happened.
    pub fn advance_slot(&mut self, requests: &[ConnectionRequest]) -> Result<SlotResult, Error> {
        let mut out = SlotResult::default();
        self.advance_slot_into(requests, &mut out)?;
        Ok(out)
    }

    /// [`Self::advance_slot`] writing into a caller-provided result whose
    /// vectors are cleared and refilled. At steady state (buffers grown to
    /// their working sizes) a packet-switch slot performs zero heap
    /// allocations end to end — this is the per-slot production path the
    /// simulation engine drives.
    #[hot_path]
    pub fn advance_slot_into(
        &mut self,
        requests: &[ConnectionRequest],
        out: &mut SlotResult,
    ) -> Result<(), Error> {
        let k = self.k();
        for r in requests {
            r.validate(self.n, k)?;
        }
        out.grants.clear();
        out.rejections.clear();
        out.rearranged = 0;
        out.reservation_grants.clear();
        out.reservation_expired.clear();

        // 1. Age in-flight connections; completed ones free their channels
        //    for this slot's scheduling.
        out.completed = self.fibers.iter_mut().map(FiberUnit::age).sum();

        // 2. Source-side admission: an input channel still carrying an
        //    earlier connection (or already claimed by an earlier request in
        //    this same slot) cannot launch a new one. Activating
        //    reservations claim their input channels ahead of the slot's
        //    cell traffic — they were admitted in advance.
        self.input_busy.fill(false);
        for fiber in &self.fibers {
            for a in fiber.actives() {
                self.input_busy[a.src_fiber * k + a.src_wavelength] = true;
            }
        }
        for bucket in &mut self.per_fiber {
            bucket.clear();
        }
        for bucket in &mut self.resv_per_fiber {
            bucket.clear();
        }
        self.due.clear();
        self.store.drain_due(self.slot, &mut self.due);
        for r in &self.due {
            let request = r.request.connection();
            let idx = request.src_fiber * k + request.src_wavelength;
            if self.input_busy[idx] {
                // Timeout expiry: the booked input channel is still held
                // by an earlier connection that outlived its booking gap.
                out.reservation_expired.push(ReservationExpiry {
                    reservation: r.id,
                    rejection: Rejection { request, reason: RejectReason::SourceBusy },
                });
            } else {
                self.input_busy[idx] = true;
                match self.preemption {
                    PreemptionPolicy::ReservedFirst => {
                        self.resv_per_fiber[request.dst_fiber].push(request);
                    }
                    PreemptionPolicy::Compete => self.per_fiber[request.dst_fiber].push(request),
                }
            }
        }
        for &r in requests {
            let idx = r.src_fiber * k + r.src_wavelength;
            if self.input_busy[idx] {
                out.rejections.push(Rejection { request: r, reason: RejectReason::SourceBusy });
            } else {
                self.input_busy[idx] = true;
                self.per_fiber[r.dst_fiber].push(r);
            }
        }

        // 3. The N independent per-fiber schedulers (the paper's
        //    distributed step), optionally across worker threads. Each
        //    unit's outcome lands in its own reused buffers, and granted
        //    connections latch into the unit's active table in place.
        //    Under ReservedFirst, activating reservations run in a
        //    dedicated first pass, so cell traffic only sees the leftover
        //    channels; the extra pass is skipped entirely on slots with no
        //    due reservations (the common case — and the benched one).
        let hold = self.hold;
        let reserved_first =
            !self.due.is_empty() && self.preemption == PreemptionPolicy::ReservedFirst;
        if reserved_first {
            run_per_fiber(
                &mut self.fibers,
                &self.resv_per_fiber,
                self.threads,
                |_, fiber, candidates| {
                    let _ = fiber.schedule(hold, candidates);
                },
            );
            for fiber in &self.fibers {
                let outcome = fiber.outcome();
                out.rearranged += outcome.rearranged();
                for g in outcome.grants() {
                    out.reservation_grants.push(ReservationGrant {
                        reservation: due_reservation_id(&self.due, &g.request),
                        grant: *g,
                    });
                }
                for &request in outcome.contention() {
                    out.reservation_expired.push(ReservationExpiry {
                        reservation: due_reservation_id(&self.due, &request),
                        rejection: Rejection { request, reason: RejectReason::OutputContention },
                    });
                }
            }
        }
        run_per_fiber(&mut self.fibers, &self.per_fiber, self.threads, |_, fiber, candidates| {
            let _ = fiber.schedule(hold, candidates);
        });

        // 4. Aggregate the per-fiber outcomes in fiber order. Under
        //    Compete, activating reservations were matched alongside the
        //    cells, so their outcomes are routed back by input channel
        //    (unique within a slot: source-side admission is exclusive).
        let route_reservations =
            !self.due.is_empty() && self.preemption == PreemptionPolicy::Compete;
        for fiber in &self.fibers {
            let outcome = fiber.outcome();
            out.rearranged += outcome.rearranged();
            if route_reservations {
                for g in outcome.grants() {
                    match try_due_reservation_id(&self.due, &g.request) {
                        Some(id) => out
                            .reservation_grants
                            .push(ReservationGrant { reservation: id, grant: *g }),
                        None => out.grants.push(*g),
                    }
                }
                for &request in outcome.contention() {
                    let rejection = Rejection { request, reason: RejectReason::OutputContention };
                    match try_due_reservation_id(&self.due, &request) {
                        Some(id) => out
                            .reservation_expired
                            .push(ReservationExpiry { reservation: id, rejection }),
                        None => out.rejections.push(rejection),
                    }
                }
            } else {
                out.grants.extend_from_slice(outcome.grants());
                out.rejections.extend(
                    outcome.contention().iter().map(|&request| Rejection {
                        request,
                        reason: RejectReason::OutputContention,
                    }),
                );
            }
        }

        debug_assert!(
            self.crossbar().validate(&self.conversion).is_ok(),
            "scheduling produced a physically impossible fabric state"
        );
        debug_assert_eq!(
            out.reservations_due(),
            self.due.len(),
            "every due reservation is granted or expired, exactly once"
        );
        self.slot += 1;
        Ok(())
    }
}

/// The id of the due reservation activating on `request`'s input channel.
/// Input channels are claimed exclusively during source-side admission, so
/// the match is unique within a slot.
fn try_due_reservation_id(due: &[Reservation], request: &ConnectionRequest) -> Option<u64> {
    due.iter()
        .find(|r| {
            r.request.src_fiber == request.src_fiber
                && r.request.src_wavelength == request.src_wavelength
        })
        .map(|r| r.id)
}

/// [`try_due_reservation_id`] for outcomes known to be reservations (the
/// ReservedFirst pass schedules nothing else).
#[wdm_attr::allow_reach(
    panic_free,
    reason = "the ReservedFirst pass schedules only due reservations and input channels are claimed exclusively at admission, so every outcome maps back to exactly one due reservation"
)]
fn due_reservation_id(due: &[Reservation], request: &ConnectionRequest) -> u64 {
    match try_due_reservation_id(due, request) {
        Some(id) => id,
        None => unreachable!("ReservedFirst pass outcomes all map back to a due reservation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conversion {
        Conversion::symmetric_circular(6, 3).unwrap()
    }

    #[test]
    fn single_slot_packet_switching() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(4, conv())).unwrap();
        // The paper's request vector toward fiber 0, from distinct inputs.
        let requests = vec![
            ConnectionRequest::packet(0, 0, 0),
            ConnectionRequest::packet(1, 0, 0),
            ConnectionRequest::packet(2, 1, 0),
            ConnectionRequest::packet(3, 3, 0),
            ConnectionRequest::packet(0, 4, 0),
            ConnectionRequest::packet(1, 5, 0),
            ConnectionRequest::packet(2, 5, 0),
        ];
        let result = ic.advance_slot(&requests).unwrap();
        assert_eq!(result.grants.len(), 6);
        assert_eq!(result.contention_losses(), 1);
        assert_eq!(ic.active_connections(), 6);
        // Packets complete after one slot.
        let result = ic.advance_slot(&[]).unwrap();
        assert_eq!(result.completed, 6);
        assert_eq!(ic.active_connections(), 0);
    }

    #[test]
    fn independent_fibers_do_not_interfere() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(3, conv())).unwrap();
        // Saturate fiber 0 and send one packet to fiber 1: the fiber-1
        // packet must be granted regardless.
        let mut requests: Vec<ConnectionRequest> =
            (0..6).map(|w| ConnectionRequest::packet(w % 3, w, 0)).collect();
        requests.push(ConnectionRequest::packet(0, 2, 1));
        let result = ic.advance_slot(&requests).unwrap();
        assert!(result.grants.iter().any(|g| g.request.dst_fiber == 1));
    }

    #[test]
    fn multi_slot_connections_occupy_channels() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let burst = ConnectionRequest::burst(0, 2, 0, 3);
        let r = ic.advance_slot(&[burst]).unwrap();
        assert_eq!(r.grants.len(), 1);
        let held = r.grants[0].output_wavelength;
        // For 2 more slots the channel stays occupied.
        for _ in 0..2 {
            let r = ic.advance_slot(&[]).unwrap();
            assert_eq!(r.completed, 0);
            assert!(!ic.occupied_mask(0).is_free(held));
        }
        let r = ic.advance_slot(&[]).unwrap();
        assert_eq!(r.completed, 1);
        assert!(ic.occupied_mask(0).is_free(held));
    }

    #[test]
    fn source_busy_rejection() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let burst = ConnectionRequest::burst(0, 2, 0, 5);
        let _ = ic.advance_slot(&[burst]).unwrap();
        // Same input channel tries again while the burst is in flight.
        let r = ic.advance_slot(&[ConnectionRequest::packet(0, 2, 1)]).unwrap();
        assert_eq!(r.source_busy_losses(), 1);
        assert!(r.grants.is_empty());
        // A different wavelength on the same fiber is fine.
        let r = ic.advance_slot(&[ConnectionRequest::packet(0, 3, 1)]).unwrap();
        assert_eq!(r.grants.len(), 1);
    }

    #[test]
    fn duplicate_input_channel_in_one_slot() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let r = ic
            .advance_slot(&[ConnectionRequest::packet(0, 2, 0), ConnectionRequest::packet(0, 2, 1)])
            .unwrap();
        assert_eq!(r.grants.len(), 1);
        assert_eq!(r.source_busy_losses(), 1);
    }

    #[test]
    fn rearrange_admits_more_than_non_disturb() {
        // k = 3, d = 2 (e = 0, f = 1). Park a burst on λ0 assigned to
        // channel 1 by loading channel 0 first, then see whether a λ1
        // request survives.
        let conv = Conversion::circular(3, 0, 1).unwrap();
        let setup = |hold: HoldPolicy| {
            let cfg = InterconnectConfig::packet_switch(2, conv).with_hold(hold);
            let mut ic = Interconnect::new(cfg).unwrap();
            // Slot 1: two bursts on λ0 (distinct inputs) → they take
            // channels 0 and 1; plus a burst on λ2 → channel 2.
            let r = ic
                .advance_slot(&[
                    ConnectionRequest::burst(0, 0, 0, 4),
                    ConnectionRequest::burst(1, 0, 0, 4),
                    ConnectionRequest::burst(0, 2, 0, 2),
                ])
                .unwrap();
            assert_eq!(r.grants.len(), 3);
            // Slot 2: the λ2 burst still holds (duration 2). Channels 0, 1,
            // 2 all busy → nothing to do; slot 3: λ2's burst completes,
            // freeing one channel (2 or 0). A new λ1 request (needs 1 or 2)
            // arrives.
            let _ = ic.advance_slot(&[]).unwrap();
            let r = ic.advance_slot(&[ConnectionRequest::packet(1, 1, 0)]).unwrap();
            r.grants.len()
        };
        let non_disturb = setup(HoldPolicy::NonDisturb);
        let rearrange = setup(HoldPolicy::Rearrange);
        assert!(rearrange >= non_disturb);
        assert_eq!(rearrange, 1, "rearrangement can always place the λ1 packet");
    }

    #[test]
    fn parallel_and_sequential_schedules_match() {
        let conv = conv();
        let mk = |threads: usize| {
            Interconnect::new(InterconnectConfig::packet_switch(8, conv).with_threads(threads))
                .unwrap()
        };
        let mut seq = mk(1);
        let mut par = mk(4);
        // A deterministic multi-slot workload.
        for slot in 0..50u64 {
            let requests: Vec<ConnectionRequest> = (0..8)
                .flat_map(|fiber| {
                    (0..6).filter_map(move |w| {
                        let h = fiber * 31 + w * 17 + slot as usize * 7;
                        h.is_multiple_of(3).then(|| {
                            ConnectionRequest::burst(
                                fiber,
                                w,
                                (fiber + w + slot as usize) % 8,
                                1 + (h % 4) as u32,
                            )
                        })
                    })
                })
                .collect();
            let a = seq.advance_slot(&requests).unwrap();
            let b = par.advance_slot(&requests).unwrap();
            assert_eq!(a, b, "slot {slot}");
        }
    }

    #[test]
    fn invalid_requests_rejected_up_front() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        assert!(ic.advance_slot(&[ConnectionRequest::packet(2, 0, 0)]).is_err());
        assert!(ic.advance_slot(&[ConnectionRequest::packet(0, 6, 0)]).is_err());
        assert!(ic.advance_slot(&[ConnectionRequest::burst(0, 0, 0, 0)]).is_err());
        assert_eq!(ic.slot(), 0, "failed slots do not advance time");
    }

    #[test]
    fn zero_fibers_rejected() {
        assert!(matches!(
            Interconnect::new(InterconnectConfig::packet_switch(0, conv())),
            Err(Error::ZeroFibers)
        ));
    }

    fn resv(sf: usize, sw: usize, df: usize, start: u64, dur: u32) -> ReservationRequest {
        ReservationRequest {
            src_fiber: sf,
            src_wavelength: sw,
            dst_fiber: df,
            start_slot: start,
            duration: dur,
        }
    }

    #[test]
    fn reservation_activates_at_start_slot_and_holds() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let id = ic.reserve_checked(resv(0, 2, 1, 2, 3)).unwrap();
        // Slots 0 and 1: nothing happens yet.
        for _ in 0..2 {
            let r = ic.advance_slot(&[]).unwrap();
            assert!(r.reservation_grants.is_empty() && r.reservation_expired.is_empty());
        }
        assert_eq!(ic.reservations().len(), 1);
        // Slot 2: activation.
        let r = ic.advance_slot(&[]).unwrap();
        assert_eq!(r.reservation_grants.len(), 1);
        assert_eq!(r.reservation_grants[0].reservation, id);
        assert!(r.grants.is_empty(), "reservation grants are reported separately");
        assert_eq!(ic.active_connections(), 1);
        assert!(ic.reservations().is_empty());
        // The hold lives out its 3-slot duration.
        let held = r.reservation_grants[0].grant.output_wavelength;
        for _ in 0..2 {
            let r = ic.advance_slot(&[]).unwrap();
            assert_eq!(r.completed, 0);
            assert!(!ic.occupied_mask(1).is_free(held));
        }
        let r = ic.advance_slot(&[]).unwrap();
        assert_eq!(r.completed, 1);
        assert_eq!(ic.active_connections(), 0);
    }

    #[test]
    fn cancelled_reservation_never_activates() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let id = ic.reserve(resv(0, 2, 1, 1, 2)).unwrap();
        assert!(ic.cancel_reservation(id));
        assert!(!ic.cancel_reservation(id));
        for _ in 0..3 {
            let r = ic.advance_slot(&[]).unwrap();
            assert_eq!(r.reservations_due(), 0);
        }
        assert_eq!(ic.active_connections(), 0);
    }

    #[test]
    fn reserved_first_preempts_cells() {
        // k = 3, full conversion on a tiny fabric: three cells saturate
        // fiber 0; an activating reservation must still win its channel.
        let conv = Conversion::full(3).unwrap();
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv)).unwrap();
        let id = ic.reserve_checked(resv(1, 0, 0, 0, 2)).unwrap();
        let cells = vec![
            ConnectionRequest::packet(0, 0, 0),
            ConnectionRequest::packet(0, 1, 0),
            ConnectionRequest::packet(0, 2, 0),
        ];
        let r = ic.advance_slot(&cells).unwrap();
        assert_eq!(r.reservation_grants.len(), 1, "reservation wins under ReservedFirst");
        assert_eq!(r.reservation_grants[0].reservation, id);
        // Only 2 channels remain for the 3 cells.
        assert_eq!(r.grants.len(), 2);
        assert_eq!(r.contention_losses(), 1);
    }

    #[test]
    fn compete_lets_cells_contend_with_reservations() {
        // Same setup, Compete: the matching maximizes cardinality over all
        // four candidates on 3 channels — exactly 3 granted in total.
        let conv = Conversion::full(3).unwrap();
        let cfg =
            InterconnectConfig::packet_switch(2, conv).with_preemption(PreemptionPolicy::Compete);
        let mut ic = Interconnect::new(cfg).unwrap();
        ic.reserve_checked(resv(1, 0, 0, 0, 2)).unwrap();
        let cells = vec![
            ConnectionRequest::packet(0, 0, 0),
            ConnectionRequest::packet(0, 1, 0),
            ConnectionRequest::packet(0, 2, 0),
        ];
        let r = ic.advance_slot(&cells).unwrap();
        assert_eq!(r.grants.len() + r.reservation_grants.len(), 3);
        assert_eq!(r.contention_losses() + r.reservation_expired.len(), 1);
    }

    #[test]
    fn reservation_source_busy_expires() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        // A long burst occupies input channel (0, 2) through slot 3.
        let _ = ic.advance_slot(&[ConnectionRequest::burst(0, 2, 0, 5)]).unwrap();
        // The store sees the hold, so an overlapping booking is denied...
        assert!(matches!(
            ic.reserve(resv(0, 2, 1, 2, 1)),
            Err(Error::ReservationCapacityExhausted { .. })
        ));
        // ...but a cell admitted *after* a booking can still collide: book
        // first, then launch the burst.
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let id = ic.reserve(resv(0, 2, 1, 2, 1)).unwrap();
        let _ = ic.advance_slot(&[ConnectionRequest::burst(0, 2, 0, 5)]).unwrap();
        let _ = ic.advance_slot(&[]).unwrap();
        let r = ic.advance_slot(&[]).unwrap();
        assert_eq!(r.reservation_expired.len(), 1);
        assert_eq!(r.reservation_expired[0].reservation, id);
        assert_eq!(r.reservation_expired[0].rejection.reason, RejectReason::SourceBusy);
    }

    #[test]
    fn reservation_blocks_same_slot_cell_on_input_channel() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        ic.reserve(resv(0, 2, 1, 0, 1)).unwrap();
        // A cell on the same input channel in the activation slot loses
        // source admission to the reservation.
        let r = ic.advance_slot(&[ConnectionRequest::packet(0, 2, 0)]).unwrap();
        assert_eq!(r.reservation_grants.len(), 1);
        assert_eq!(r.source_busy_losses(), 1);
    }

    #[test]
    fn capacity_admission_respects_active_holds() {
        // k = 3 full conversion; fill fiber 0 with three 4-slot bursts,
        // then try to book overlapping capacity.
        let conv = Conversion::full(3).unwrap();
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv)).unwrap();
        let r = ic
            .advance_slot(&[
                ConnectionRequest::burst(0, 0, 0, 4),
                ConnectionRequest::burst(0, 1, 0, 4),
                ConnectionRequest::burst(0, 2, 0, 4),
            ])
            .unwrap();
        assert_eq!(r.grants.len(), 3);
        // Slots 1..4 are fully booked on fiber 0.
        assert!(matches!(
            ic.reserve(resv(1, 0, 0, 2, 1)),
            Err(Error::ReservationCapacityExhausted { fiber: 0, slot: 2 })
        ));
        // After the bursts complete (slot 4), capacity is bookable again.
        assert!(ic.reserve_checked(resv(1, 0, 0, 4, 2)).is_ok());
    }

    #[test]
    fn shrink_conversion_takes_effect_at_next_slot_and_restores() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        // Two same-wavelength bursts to fiber 0: at most one can sit on the
        // diagonal channel a degree-1 scheme can realise.
        let r = ic
            .advance_slot(&[
                ConnectionRequest::burst(0, 2, 0, 10),
                ConnectionRequest::burst(1, 2, 0, 10),
            ])
            .unwrap();
        assert_eq!(r.grants.len(), 2);
        let shrunk = Conversion::symmetric_circular(6, 1).unwrap();
        let impact = ic.shrink_conversion(0, shrunk).unwrap();
        assert!(impact.dropped_connections >= 1);
        assert_eq!(impact.dropped_connections + ic.active_connections(), 2);
        assert_eq!(ic.fiber_conversion(0).unwrap().degree(), 1);
        assert_eq!(ic.fiber_conversion(1).unwrap().degree(), 3, "other fibers untouched");
        // Under degree 1, a λ4 request can only take channel 4.
        let r = ic
            .advance_slot(&[ConnectionRequest::packet(0, 4, 0), ConnectionRequest::packet(1, 4, 0)])
            .unwrap();
        assert_eq!(r.grants.len(), 1, "degree-1 fiber grants one of two λ4 requests");
        assert_eq!(r.contention_losses(), 1);
        let _ = ic.advance_slot(&[]).unwrap();
        // Recovery restores the full degree-3 range.
        let impact = ic.restore_conversion(0).unwrap();
        assert_eq!(impact, DisruptionImpact::default());
        assert_eq!(ic.fiber_conversion(0).unwrap().degree(), 3);
        let r = ic
            .advance_slot(&[ConnectionRequest::packet(0, 4, 0), ConnectionRequest::packet(1, 4, 0)])
            .unwrap();
        assert_eq!(r.grants.len(), 2, "restored range places both λ4 requests");
    }

    #[test]
    fn shrunken_fiber_keeps_reservations_and_ledger_certifies() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let id = ic.reserve_checked(resv(0, 2, 0, 3, 2)).unwrap();
        let shrunk = Conversion::symmetric_circular(6, 1).unwrap();
        let _ = ic.shrink_conversion(0, shrunk).unwrap();
        // Capacity bookings survive a converter failure (k is unchanged);
        // the ledger still certifies end to end.
        assert_eq!(ic.reservations().len(), 1);
        ic.reservations().check_ledger(ic.slot()).unwrap();
        for _ in 0..3 {
            let _ = ic.advance_slot(&[]).unwrap();
        }
        // λ2 → channel 2 is realisable under degree 1: the reservation
        // activates on the shrunken fiber.
        let r = ic.advance_slot(&[]).unwrap();
        assert_eq!(r.reservation_grants.len(), 1);
        assert_eq!(r.reservation_grants[0].reservation, id);
        assert_eq!(r.reservation_grants[0].grant.output_wavelength, 2);
    }

    #[test]
    fn fiber_outage_cancels_reservations_and_rejects_traffic() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let _ = ic.advance_slot(&[ConnectionRequest::burst(0, 2, 0, 10)]).unwrap();
        ic.reserve_checked(resv(1, 0, 0, 5, 2)).unwrap();
        let keep = ic.reserve_checked(resv(1, 1, 1, 5, 2)).unwrap();
        let impact = ic.fail_fiber(0).unwrap();
        assert_eq!(impact, DisruptionImpact { dropped_connections: 1, cancelled_reservations: 1 });
        assert!(ic.is_fiber_down(0).unwrap());
        assert_eq!(ic.active_connections(), 0);
        // Only the fiber-1 booking survives, and the ledger certifies.
        assert_eq!(ic.reservations().len(), 1);
        assert_eq!(ic.reservations().pending()[0].id, keep);
        ic.reservations().check_ledger(ic.slot()).unwrap();
        // New bookings toward the dark fiber are denied at admission.
        assert!(matches!(
            ic.reserve(resv(1, 2, 0, 6, 1)),
            Err(Error::ReservationCapacityExhausted { fiber: 0, slot: 6 })
        ));
        // Traffic toward the dark fiber loses output contention; other
        // fibers are unaffected.
        let r = ic
            .advance_slot(&[ConnectionRequest::packet(0, 0, 0), ConnectionRequest::packet(0, 1, 1)])
            .unwrap();
        assert_eq!(r.grants.len(), 1);
        assert_eq!(r.grants[0].request.dst_fiber, 1);
        assert_eq!(r.contention_losses(), 1);
        // Rejoin: the fiber comes back cold and schedules again.
        let impact = ic.rejoin_fiber(0).unwrap();
        assert_eq!(impact, DisruptionImpact::default());
        assert!(!ic.is_fiber_down(0).unwrap());
        let r = ic.advance_slot(&[ConnectionRequest::packet(0, 0, 0)]).unwrap();
        assert_eq!(r.grants.len(), 1);
    }

    #[test]
    fn policy_fallback_swaps_all_fibers_or_none() {
        let circ = conv();
        let cfg =
            InterconnectConfig::packet_switch(2, circ).with_policy(Policy::BreakFirstAvailable);
        let mut ic = Interconnect::new(cfg).unwrap();
        // FA needs non-circular: the all-fiber swap must refuse whole.
        assert!(ic.set_policy_all(Policy::FirstAvailable).is_err());
        // BFA → approximation is the degraded-mode pair: always kind-legal.
        ic.set_policy_all(Policy::Approximate).unwrap();
        let r = ic.advance_slot(&[ConnectionRequest::packet(0, 2, 0)]).unwrap();
        assert_eq!(r.grants.len(), 1);
        ic.set_policy_all(Policy::BreakFirstAvailable).unwrap();
        let r = ic.advance_slot(&[ConnectionRequest::packet(1, 2, 0)]).unwrap();
        assert_eq!(r.grants.len(), 1);
    }

    #[test]
    fn disruption_ops_reject_bad_fiber_index() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let shrunk = Conversion::symmetric_circular(6, 1).unwrap();
        assert!(matches!(
            ic.shrink_conversion(2, shrunk),
            Err(Error::InvalidFiber { fiber: 2, n: 2 })
        ));
        assert!(matches!(ic.restore_conversion(9), Err(Error::InvalidFiber { .. })));
        assert!(matches!(ic.fail_fiber(2), Err(Error::InvalidFiber { .. })));
        assert!(matches!(ic.rejoin_fiber(2), Err(Error::InvalidFiber { .. })));
        assert!(ic.fiber_conversion(2).is_err());
        assert!(ic.is_fiber_down(2).is_err());
    }

    #[test]
    fn crossbar_reflects_active_connections() {
        let mut ic = Interconnect::new(InterconnectConfig::packet_switch(2, conv())).unwrap();
        let r = ic
            .advance_slot(&[
                ConnectionRequest::burst(0, 1, 1, 2),
                ConnectionRequest::burst(1, 4, 0, 3),
            ])
            .unwrap();
        assert_eq!(r.grants.len(), 2);
        let xb = ic.crossbar();
        assert_eq!(xb.active(), 2);
        xb.validate(ic.conversion()).unwrap();
    }
}
