//! Asynchronous first-come-first-served admission (paper §I).
//!
//! In asynchronous WDM wavelength-routing networks "the packet arrivals …
//! were assumed to be asynchronous, thus eliminates the need for a
//! scheduling algorithm since the requests have a natural order and are
//! assumed to be served according to the first-come-first-served rule"
//! (discussing [11], [13], [14]). [`FcfsSwitch`] implements that regime:
//! requests are admitted one at a time in arrival order, each taking the
//! first free channel in its conversion range, with no batching and no
//! matching.
//!
//! This is the natural baseline for the paper's synchronized scheduling:
//! processing a slot's worth of requests FCFS is equivalent to a greedy
//! (maximal, not maximum) matching, so it can never beat Break-and-FA and
//! is strictly worse on contended patterns — quantified in
//! `tests/fcfs_vs_scheduled.rs`.

use wdm_core::{Conversion, Error};

use crate::connection::{ConnectionRequest, Grant, RejectReason, Rejection};

/// An asynchronous `N×N` switch serving requests in arrival order.
#[derive(Debug, Clone)]
pub struct FcfsSwitch {
    n: usize,
    conversion: Conversion,
    /// Remaining hold time per (output fiber, channel); 0 = free.
    channel_hold: Vec<Vec<u32>>,
    /// Remaining hold time per (input fiber, wavelength); 0 = free.
    input_hold: Vec<Vec<u32>>,
}

impl FcfsSwitch {
    /// Builds the switch.
    pub fn new(n: usize, conversion: Conversion) -> Result<FcfsSwitch, Error> {
        if n == 0 {
            return Err(Error::ZeroFibers);
        }
        let k = conversion.k();
        Ok(FcfsSwitch {
            n,
            conversion,
            channel_hold: vec![vec![0; k]; n],
            input_hold: vec![vec![0; k]; n],
        })
    }

    /// Number of fibers per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of wavelengths per fiber.
    pub fn k(&self) -> usize {
        self.conversion.k()
    }

    /// Number of connections currently in flight.
    pub fn active_connections(&self) -> usize {
        self.channel_hold.iter().flatten().filter(|&&h| h > 0).count()
    }

    /// Tries to admit one request *right now* (asynchronous arrival): the
    /// first free output channel in the request's conversion range is taken,
    /// lowest wavelength first.
    pub fn admit(&mut self, request: ConnectionRequest) -> Result<Result<Grant, Rejection>, Error> {
        request.validate(self.n, self.k())?;
        if self.input_hold[request.src_fiber][request.src_wavelength] > 0 {
            return Ok(Err(Rejection { request, reason: RejectReason::SourceBusy }));
        }
        let k = self.k();
        let span = self.conversion.adjacency(request.src_wavelength);
        let free = span.iter(k).filter(|&u| self.channel_hold[request.dst_fiber][u] == 0).min();
        match free {
            Some(u) => {
                self.channel_hold[request.dst_fiber][u] = request.duration;
                self.input_hold[request.src_fiber][request.src_wavelength] = request.duration;
                Ok(Ok(Grant { request, output_wavelength: u }))
            }
            None => Ok(Err(Rejection { request, reason: RejectReason::OutputContention })),
        }
    }

    /// Advances time by one slot: all holds age by one, freeing channels
    /// whose connections completed. Returns the number of completions.
    pub fn tick(&mut self) -> usize {
        let mut completed = 0usize;
        for holds in self.channel_hold.iter_mut() {
            for h in holds.iter_mut() {
                if *h > 0 {
                    *h -= 1;
                    if *h == 0 {
                        completed += 1;
                    }
                }
            }
        }
        for holds in self.input_hold.iter_mut() {
            for h in holds.iter_mut() {
                *h = h.saturating_sub(1);
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conversion {
        Conversion::symmetric_circular(6, 3).unwrap()
    }

    #[test]
    fn admits_first_fit_in_conversion_range() {
        let mut sw = FcfsSwitch::new(2, conv()).unwrap();
        let g = sw.admit(ConnectionRequest::packet(0, 3, 1)).unwrap().unwrap();
        assert_eq!(g.output_wavelength, 2, "lowest channel of {{2,3,4}}");
        let g = sw.admit(ConnectionRequest::packet(1, 3, 1)).unwrap().unwrap();
        assert_eq!(g.output_wavelength, 3);
        let g = sw.admit(ConnectionRequest::packet(0, 2, 1)).unwrap().unwrap();
        assert_eq!(g.output_wavelength, 1, "channel 2 taken, falls back to 1");
    }

    #[test]
    fn rejects_when_range_exhausted() {
        let mut sw = FcfsSwitch::new(4, conv()).unwrap();
        // Three λ0 requests exhaust λ0's range {5, 0, 1}: first-fit takes
        // 0, then 1, then 5.
        let channels: Vec<usize> = (0..3)
            .map(|fiber| {
                sw.admit(ConnectionRequest::packet(fiber, 0, 0)).unwrap().unwrap().output_wavelength
            })
            .collect();
        assert_eq!(channels, vec![0, 1, 5]);
        let r = sw.admit(ConnectionRequest::packet(3, 0, 0)).unwrap().unwrap_err();
        assert_eq!(r.reason, RejectReason::OutputContention);
    }

    #[test]
    fn source_busy_enforced() {
        let mut sw = FcfsSwitch::new(2, conv()).unwrap();
        sw.admit(ConnectionRequest::burst(0, 0, 0, 3)).unwrap().unwrap();
        let r = sw.admit(ConnectionRequest::packet(0, 0, 1)).unwrap().unwrap_err();
        assert_eq!(r.reason, RejectReason::SourceBusy);
    }

    #[test]
    fn tick_ages_and_frees() {
        let mut sw = FcfsSwitch::new(1, conv()).unwrap();
        sw.admit(ConnectionRequest::burst(0, 0, 0, 2)).unwrap().unwrap();
        assert_eq!(sw.active_connections(), 1);
        assert_eq!(sw.tick(), 0);
        assert_eq!(sw.tick(), 1);
        assert_eq!(sw.active_connections(), 0);
        // The channel and input are reusable now.
        sw.admit(ConnectionRequest::packet(0, 0, 0)).unwrap().unwrap();
    }

    #[test]
    fn fcfs_is_suboptimal_on_the_contended_pattern() {
        // FCFS (greedy first-fit) on λ0 then λ5 with k=6, d=3: λ0 takes its
        // lowest free channel 5? no — lowest-index: span of λ0 is {5,0,1},
        // min = 0 → takes 0. Then λ5 (span {4,5,0}) takes 4. Both admitted
        // here. The classic greedy failure needs first-fit to block:
        // admit λ1 (→0), λ1 (→1), λ1 (→2)… then λ0 still has 5. Construct:
        // three λ0 requests take 0, 1, 5; a λ1 request then has {0,1,2} →
        // gets 2; fine. Greedy can still lose: λ0 → 0; λ1 → 1; λ1 → 2;
        // λ2 → 3; λ2 → … let the dedicated comparison test quantify it;
        // here just check FCFS never over-admits.
        let mut sw = FcfsSwitch::new(6, conv()).unwrap();
        let mut admitted = 0;
        for (fiber, w) in [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2)] {
            if sw.admit(ConnectionRequest::packet(fiber, w, 0)).unwrap().is_ok() {
                admitted += 1;
            }
        }
        assert!(admitted <= 6);
        assert!(admitted >= 5, "greedy on this pattern admits at least 5");
    }

    #[test]
    fn zero_fibers_rejected() {
        assert!(FcfsSwitch::new(0, conv()).is_err());
    }
}
