//! Advance reservations of future channel capacity (paper §V).
//!
//! A reservation asks, ahead of time, for a multi-slot connection starting
//! at a specific future slot: "input channel (fiber, wavelength) to output
//! fiber `dst`, for `duration` slots, starting at slot `start`". Admission
//! is decided immediately against the store's capacity ledger — the
//! already-admitted reservations plus the in-flight holds — over every
//! slot of the requested interval, bounded by an **admission horizon**
//! (the store only reasons about slots in `[now, now + horizon)`).
//!
//! Admission is a *capacity* check, not a full feasibility proof: it
//! guarantees at most `k` holds ever overlap on one fiber-slot and that no
//! input channel is double-booked, but a degree-`d` converter may still be
//! unable to reach any free channel at activation time. A reservation that
//! cannot be placed at its start slot — source channel still busy, or no
//! conversion-reachable channel — **expires** (timeout expiry): it is
//! dropped and reported, never retried. Reservations can also be
//! [cancelled](ReservationStore::cancel) any time before their start slot.
//!
//! At its start slot a reservation is activated by
//! [`crate::Interconnect::advance_slot_into`]: it claims its input channel
//! ahead of the slot's cell traffic and enters the per-fiber matching
//! according to the [`PreemptionPolicy`] knob — either in a dedicated
//! first pass that cell traffic cannot contend with
//! ([`PreemptionPolicy::ReservedFirst`]), or merged into the cell matching
//! on equal terms ([`PreemptionPolicy::Compete`]). A granted activation
//! becomes an ordinary in-flight hold ([`crate::ActiveLink`]) and lives
//! out its duration under the configured [`crate::HoldPolicy`].
//!
//! [`ReservationStore::try_reserve`] has a
//! [`try_reserve_checked`](ReservationStore::try_reserve_checked) twin
//! that re-certifies admission from scratch: the whole-ledger
//! time-invariants ([`ReservationStore::check_ledger`] — no fiber-slot
//! with more than `k` pending bookings, no input channel double-booked by
//! two reservations, every entry inside the horizon) plus the fresh
//! admission's consistency with in-flight holds (older bookings carry no
//! vs-active guarantee — later cell grants may legally collide with them
//! and resolve as timeout expiries at activation).

use wdm_core::Error;

use crate::connection::{ConnectionRequest, Grant, Rejection};
use crate::shard::FiberUnit;

/// Default admission horizon (slots ahead of `now` the store will book).
pub const DEFAULT_RESERVATION_HORIZON: u64 = 1024;

/// What happens when an activating reservation meets cell traffic wanting
/// the same output fiber in the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PreemptionPolicy {
    /// Activating reservations are matched in a dedicated first pass; the
    /// slot's cell traffic only sees the leftover channels. Reserved
    /// capacity preempts cells — a reservation can only fail activation
    /// against other holds, never against a cell.
    #[default]
    ReservedFirst,
    /// Activating reservations compete with cell traffic in one combined
    /// matching. The matching maximizes granted connections overall, so a
    /// reservation may lose output contention to a cell at its start slot
    /// and expire.
    Compete,
}

/// A request for an advance reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationRequest {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Wavelength the connection will arrive on.
    pub src_wavelength: usize,
    /// Destination output fiber.
    pub dst_fiber: usize,
    /// First slot of the hold (must be `>= now` at admission).
    pub start_slot: u64,
    /// How many slots the connection holds (`>= 1`).
    pub duration: u32,
}

impl ReservationRequest {
    /// The connection request this reservation turns into at activation.
    pub fn connection(&self) -> ConnectionRequest {
        ConnectionRequest {
            src_fiber: self.src_fiber,
            src_wavelength: self.src_wavelength,
            dst_fiber: self.dst_fiber,
            duration: self.duration,
        }
    }

    /// The first slot *after* the hold (`start + duration`), saturating.
    pub fn end_slot(&self) -> u64 {
        self.start_slot.saturating_add(u64::from(self.duration))
    }

    /// Whether this reservation books slot `slot`.
    pub fn covers(&self, slot: u64) -> bool {
        self.start_slot <= slot && slot < self.end_slot()
    }
}

/// An admitted, not-yet-started reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reservation {
    /// Store-assigned identifier, strictly increasing in admission order.
    pub id: u64,
    /// The admitted request.
    pub request: ReservationRequest,
}

/// A reservation that activated and was granted its channel this slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationGrant {
    /// The reservation's id.
    pub reservation: u64,
    /// The granted connection (the hold now in flight).
    pub grant: Grant,
}

/// A reservation that expired at activation time (timeout expiry): its
/// source channel was still busy, or no conversion-reachable output
/// channel was free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationExpiry {
    /// The reservation's id.
    pub reservation: u64,
    /// The failed activation with its reason.
    pub rejection: Rejection,
}

/// The advance-reservation ledger of one interconnect.
///
/// Holds the admitted, not-yet-started reservations and answers admission
/// queries against future slot capacity. In-flight holds (connections
/// already on channels) are accounted by probing the [`FiberUnit`]s at
/// admission time, so the ledger never duplicates the active table.
#[derive(Debug, Clone)]
pub struct ReservationStore {
    n: usize,
    k: usize,
    horizon: u64,
    next_id: u64,
    /// Admitted, not yet activated, in admission order.
    pending: Vec<Reservation>,
}

impl ReservationStore {
    /// An empty store for an `n × n` interconnect with `k` wavelengths and
    /// the given admission horizon. A horizon of 0 denies everything.
    pub fn new(n: usize, k: usize, horizon: u64) -> ReservationStore {
        ReservationStore { n, k, horizon, next_id: 0, pending: Vec::new() }
    }

    /// The admission horizon in slots.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The admitted, not-yet-started reservations in admission order.
    pub fn pending(&self) -> &[Reservation] {
        &self.pending
    }

    /// Number of pending reservations.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no reservations are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pending reservations booking output fiber `fiber` at slot `slot`.
    pub fn count_overlapping(&self, fiber: usize, slot: u64) -> usize {
        self.pending
            .iter()
            .filter(|r| r.request.dst_fiber == fiber && r.request.covers(slot))
            .count()
    }

    /// In-flight holds on output fiber `fiber` still occupying a channel
    /// at future slot `slot` (`slot >= now`). An active with `remaining`
    /// slots at time `now` occupies its channel during
    /// `[now, now + remaining - 1)`: ageing at the start of slot `now`
    /// consumes one slot before the channel is contested.
    fn active_overlap(fibers: &[FiberUnit], fiber: usize, now: u64, slot: u64) -> usize {
        fibers[fiber].actives().iter().filter(|a| u64::from(a.remaining) > (slot - now) + 1).count()
    }

    /// Whether the input channel of `req` is free over the whole requested
    /// interval: not booked by a pending reservation and not held past
    /// `req.start_slot` by an in-flight connection. On conflict returns
    /// the first contested slot.
    fn input_channel_conflict(
        &self,
        now: u64,
        req: &ReservationRequest,
        fibers: &[FiberUnit],
    ) -> Option<u64> {
        for fiber in fibers {
            for a in fiber.actives() {
                if a.src_fiber == req.src_fiber
                    && a.src_wavelength == req.src_wavelength
                    && now + u64::from(a.remaining) - 1 > req.start_slot
                {
                    return Some(req.start_slot);
                }
            }
        }
        for r in &self.pending {
            let o = &r.request;
            if o.src_fiber == req.src_fiber
                && o.src_wavelength == req.src_wavelength
                && o.start_slot < req.end_slot()
                && req.start_slot < o.end_slot()
            {
                return Some(req.start_slot.max(o.start_slot));
            }
        }
        None
    }

    /// Admits an advance reservation against the capacity ledger, or
    /// explains why not. `now` is the interconnect's current slot; `fibers`
    /// carry the in-flight holds that already book future capacity.
    ///
    /// Admission guarantees: start in the future, whole interval inside
    /// the horizon, input channel unbooked over the interval, and at most
    /// `k - 1` other holds booked on the destination fiber at every slot
    /// of the interval (so at least one channel is numerically free —
    /// conversion reachability is decided at activation). Denials are
    /// typed: [`Error::ReservationInPast`],
    /// [`Error::ReservationHorizonExceeded`],
    /// [`Error::ReservationCapacityExhausted`], plus the field validation
    /// errors of [`ConnectionRequest::validate`].
    ///
    /// On success returns the reservation id (strictly increasing in
    /// admission order; denied attempts consume no id).
    pub fn try_reserve(
        &mut self,
        now: u64,
        req: ReservationRequest,
        fibers: &[FiberUnit],
    ) -> Result<u64, Error> {
        req.connection().validate(self.n, self.k)?;
        if fibers.get(req.dst_fiber).is_some_and(FiberUnit::is_down) {
            // A fiber in outage has no bookable capacity at any slot: deny
            // at admission rather than stringing the caller along to a
            // guaranteed expiry (or worse, a ReservedFirst grant the dark
            // fiber cannot carry).
            return Err(Error::ReservationCapacityExhausted {
                fiber: req.dst_fiber,
                slot: req.start_slot,
            });
        }
        if req.start_slot < now {
            return Err(Error::ReservationInPast { start_slot: req.start_slot, now });
        }
        let horizon_end = now.saturating_add(self.horizon);
        let end = match req.start_slot.checked_add(u64::from(req.duration)) {
            Some(end) if end <= horizon_end => end,
            _ => {
                return Err(Error::ReservationHorizonExceeded {
                    end_slot: req.end_slot(),
                    horizon_end,
                })
            }
        };
        if let Some(slot) = self.input_channel_conflict(now, &req, fibers) {
            return Err(Error::ReservationCapacityExhausted { fiber: req.src_fiber, slot });
        }
        for slot in req.start_slot..end {
            let booked = self.count_overlapping(req.dst_fiber, slot)
                + Self::active_overlap(fibers, req.dst_fiber, now, slot);
            if booked >= self.k {
                return Err(Error::ReservationCapacityExhausted { fiber: req.dst_fiber, slot });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Reservation { id, request: req });
        Ok(id)
    }

    /// [`Self::try_reserve`] followed by two certificates, re-derived
    /// independently of the fast path's bookkeeping: the whole-ledger
    /// invariants ([`Self::check_ledger`]) and the fresh admission's
    /// consistency with in-flight holds. The vs-active part is only
    /// provable for the reservation admitted *now* — cell traffic granted
    /// after an older booking may legitimately collide with it (resolved
    /// at activation as timeout expiry), so older bookings carry no
    /// vs-active guarantee. On a certificate failure the admission is
    /// rolled back before the error propagates, so a bookkeeping bug
    /// fails loudly without leaving the ledger oversubscribed.
    pub fn try_reserve_checked(
        &mut self,
        now: u64,
        req: ReservationRequest,
        fibers: &[FiberUnit],
    ) -> Result<u64, Error> {
        let id = self.try_reserve(now, req, fibers)?;
        if let Err(err) =
            self.check_ledger(now).and_then(|()| self.certify_fresh_admission(now, &req, fibers))
        {
            self.cancel(id);
            return Err(err);
        }
        Ok(id)
    }

    /// Certifies the reservation just admitted against in-flight holds:
    /// its input channel is not held past its start slot, and every slot
    /// of its interval keeps total bookings (pending reservations plus
    /// actives still occupying then) within `k`.
    fn certify_fresh_admission(
        &self,
        now: u64,
        req: &ReservationRequest,
        fibers: &[FiberUnit],
    ) -> Result<(), Error> {
        for fiber in fibers {
            for a in fiber.actives() {
                if a.src_fiber == req.src_fiber
                    && a.src_wavelength == req.src_wavelength
                    && now + u64::from(a.remaining) - 1 > req.start_slot
                {
                    return Err(Error::ReservationCapacityExhausted {
                        fiber: req.src_fiber,
                        slot: req.start_slot,
                    });
                }
            }
        }
        for slot in req.start_slot..req.end_slot() {
            let booked = self.count_overlapping(req.dst_fiber, slot)
                + Self::active_overlap(fibers, req.dst_fiber, now, slot);
            if booked > self.k {
                return Err(Error::ReservationCapacityExhausted { fiber: req.dst_fiber, slot });
            }
        }
        Ok(())
    }

    /// Certifies the ledger's time-invariants from scratch: every pending
    /// reservation is field-valid, starts at or after `now`, ends inside
    /// the horizon; ids are strictly increasing; no input channel is
    /// booked twice at any slot by two reservations; and no fiber-slot
    /// carries more than `k` pending bookings.
    ///
    /// Deliberately *not* checked here: pending bookings against
    /// in-flight holds. Cell admission is best-effort and does not
    /// consult the ledger, so a burst granted after a booking can occupy
    /// its input channel or its fiber's capacity — that is a legal state
    /// that resolves at activation as a timeout expiry, not ledger
    /// corruption. The vs-active certificate therefore only applies to a
    /// freshly admitted reservation, inside [`Self::try_reserve_checked`].
    pub fn check_ledger(&self, now: u64) -> Result<(), Error> {
        let horizon_end = now.saturating_add(self.horizon);
        for (i, r) in self.pending.iter().enumerate() {
            r.request.connection().validate(self.n, self.k)?;
            if r.request.start_slot < now {
                return Err(Error::ReservationInPast { start_slot: r.request.start_slot, now });
            }
            if r.request.end_slot() > horizon_end {
                return Err(Error::ReservationHorizonExceeded {
                    end_slot: r.request.end_slot(),
                    horizon_end,
                });
            }
            if let Some(prev) = i.checked_sub(1).and_then(|p| self.pending.get(p)) {
                if prev.id >= r.id {
                    return Err(Error::LengthMismatch {
                        expected: prev.id as usize + 1,
                        actual: r.id as usize,
                    });
                }
            }
            // Pairwise input-channel booking (reservation vs reservation).
            for o in &self.pending[i + 1..] {
                if o.request.src_fiber == r.request.src_fiber
                    && o.request.src_wavelength == r.request.src_wavelength
                    && o.request.start_slot < r.request.end_slot()
                    && r.request.start_slot < o.request.end_slot()
                {
                    return Err(Error::ReservationCapacityExhausted {
                        fiber: r.request.src_fiber,
                        slot: r.request.start_slot.max(o.request.start_slot),
                    });
                }
            }
            // Pending-only capacity per fiber-slot. Each admission held
            // pending + actives < k at its own admission time, so pending
            // alone can never exceed k — unlike the sum with actives,
            // which later cell grants may legally push past k.
            for slot in r.request.start_slot..r.request.end_slot() {
                let booked = self.count_overlapping(r.request.dst_fiber, slot);
                if booked > self.k {
                    return Err(Error::ReservationCapacityExhausted {
                        fiber: r.request.dst_fiber,
                        slot,
                    });
                }
            }
        }
        Ok(())
    }

    /// Cancels a pending reservation. Returns whether `id` was pending
    /// (activated, expired, or unknown reservations return `false`).
    pub fn cancel(&mut self, id: u64) -> bool {
        let before = self.pending.len();
        self.pending.retain(|r| r.id != id);
        self.pending.len() < before
    }

    /// Cancels every pending reservation destined to output fiber `fiber` —
    /// the fiber-outage path: the booked capacity no longer exists, so the
    /// bookings are dropped eagerly and reported (never silently kept until
    /// a doomed activation). Returns how many were cancelled.
    pub fn cancel_dst_fiber(&mut self, fiber: usize) -> usize {
        let before = self.pending.len();
        self.pending.retain(|r| r.request.dst_fiber != fiber);
        before - self.pending.len()
    }

    /// Moves every reservation whose start slot has arrived (`start <=
    /// now`) into `out` in admission order, removing it from the ledger.
    /// Called once per slot by the interconnect; allocation-free once
    /// `out` has grown to its working size.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<Reservation>) {
        if self.pending.is_empty() {
            return;
        }
        out.extend(self.pending.iter().filter(|r| r.request.start_slot <= now).copied());
        self.pending.retain(|r| r.request.start_slot > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::Conversion;

    fn store(k: usize, horizon: u64) -> (ReservationStore, Vec<FiberUnit>) {
        let conv = Conversion::full(k).unwrap();
        let fibers = (0..2).map(|_| FiberUnit::new(2, conv, wdm_core::Policy::Auto).unwrap());
        (ReservationStore::new(2, k, horizon), fibers.collect::<Vec<_>>())
    }

    fn req(sf: usize, sw: usize, df: usize, start: u64, dur: u32) -> ReservationRequest {
        ReservationRequest {
            src_fiber: sf,
            src_wavelength: sw,
            dst_fiber: df,
            start_slot: start,
            duration: dur,
        }
    }

    #[test]
    fn admission_assigns_increasing_ids() {
        let (mut s, fibers) = store(4, 100);
        let a = s.try_reserve_checked(0, req(0, 0, 1, 5, 3), &fibers).unwrap();
        let b = s.try_reserve_checked(0, req(0, 1, 1, 5, 3), &fibers).unwrap();
        assert!(b > a);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn past_start_denied() {
        let (mut s, fibers) = store(4, 100);
        assert!(matches!(
            s.try_reserve(10, req(0, 0, 1, 9, 1), &fibers),
            Err(Error::ReservationInPast { start_slot: 9, now: 10 })
        ));
    }

    #[test]
    fn horizon_denied() {
        let (mut s, fibers) = store(4, 10);
        assert!(matches!(
            s.try_reserve(0, req(0, 0, 1, 8, 3), &fibers),
            Err(Error::ReservationHorizonExceeded { end_slot: 11, horizon_end: 10 })
        ));
        // Exactly at the horizon edge is fine.
        assert!(s.try_reserve(0, req(0, 0, 1, 8, 2), &fibers).is_ok());
        // Overflowing start + duration is a horizon denial, not a panic.
        assert!(matches!(
            s.try_reserve(0, req(0, 1, 1, u64::MAX - 1, 4), &fibers),
            Err(Error::ReservationHorizonExceeded { .. })
        ));
    }

    #[test]
    fn zero_horizon_denies_everything() {
        let (mut s, fibers) = store(4, 0);
        assert!(s.try_reserve(0, req(0, 0, 1, 0, 1), &fibers).is_err());
    }

    #[test]
    fn output_capacity_exhaustion() {
        let (mut s, fibers) = store(2, 100);
        // k = 2: two overlapping holds fill fiber 1 at slot 6.
        s.try_reserve_checked(0, req(0, 0, 1, 5, 3), &fibers).unwrap();
        s.try_reserve_checked(0, req(0, 1, 1, 6, 3), &fibers).unwrap();
        assert!(matches!(
            s.try_reserve(0, req(1, 0, 1, 4, 3), &fibers),
            Err(Error::ReservationCapacityExhausted { fiber: 1, slot: 6 })
        ));
        // A disjoint interval on the same fiber is fine.
        assert!(s.try_reserve_checked(0, req(1, 0, 1, 9, 3), &fibers).is_ok());
    }

    #[test]
    fn input_channel_conflict_denied() {
        let (mut s, fibers) = store(4, 100);
        s.try_reserve_checked(0, req(0, 0, 1, 5, 3), &fibers).unwrap();
        // Same input channel, overlapping interval, different destination.
        assert!(matches!(
            s.try_reserve(0, req(0, 0, 0, 7, 2), &fibers),
            Err(Error::ReservationCapacityExhausted { fiber: 0, slot: 7 })
        ));
        // Back-to-back on the same input channel is fine.
        assert!(s.try_reserve_checked(0, req(0, 0, 0, 8, 2), &fibers).is_ok());
    }

    #[test]
    fn field_validation_denied() {
        let (mut s, fibers) = store(4, 100);
        assert!(s.try_reserve(0, req(2, 0, 1, 5, 1), &fibers).is_err());
        assert!(s.try_reserve(0, req(0, 4, 1, 5, 1), &fibers).is_err());
        assert!(s.try_reserve(0, req(0, 0, 2, 5, 1), &fibers).is_err());
        assert!(s.try_reserve(0, req(0, 0, 1, 5, 0), &fibers).is_err());
        assert!(s.is_empty(), "denied attempts leave no trace");
    }

    #[test]
    fn cancel_removes_pending() {
        let (mut s, fibers) = store(4, 100);
        let id = s.try_reserve(0, req(0, 0, 1, 5, 3), &fibers).unwrap();
        assert!(s.cancel(id));
        assert!(!s.cancel(id), "double cancel is a no-op");
        assert!(s.is_empty());
        // The freed capacity is reusable.
        assert!(s.try_reserve_checked(0, req(0, 0, 1, 5, 3), &fibers).is_ok());
    }

    #[test]
    fn drain_due_preserves_admission_order() {
        let (mut s, fibers) = store(4, 100);
        let a = s.try_reserve(0, req(0, 0, 1, 3, 1), &fibers).unwrap();
        let b = s.try_reserve(0, req(0, 1, 1, 7, 1), &fibers).unwrap();
        let c = s.try_reserve(0, req(0, 2, 1, 3, 1), &fibers).unwrap();
        let mut due = Vec::new();
        s.drain_due(3, &mut due);
        assert_eq!(due.iter().map(|r| r.id).collect::<Vec<_>>(), vec![a, c]);
        assert_eq!(s.pending().len(), 1);
        assert_eq!(s.pending()[0].id, b);
    }

    #[test]
    fn denied_attempts_consume_no_id() {
        let (mut s, fibers) = store(4, 10);
        let a = s.try_reserve(0, req(0, 0, 1, 2, 1), &fibers).unwrap();
        assert!(s.try_reserve(0, req(0, 1, 1, 50, 1), &fibers).is_err());
        let b = s.try_reserve(0, req(0, 1, 1, 2, 1), &fibers).unwrap();
        assert_eq!(b, a + 1);
    }
}
