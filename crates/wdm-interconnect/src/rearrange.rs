//! The §V "existing connections can be disturbed" holding policy.
//!
//! When a multi-slot connection may be *reassigned* to a different output
//! channel mid-flight (e.g. circuit rearrangement during a guard time), the
//! scheduler considers all `k` channels free and places the in-flight
//! connections together with the new requests. In-flight connections are
//! never dropped: they are placed first (always feasible — they were
//! simultaneously placed in an earlier slot, and output channels only freed
//! up since), and each new request is admitted iff an augmenting path
//! exists. By the transversal-matroid exchange property the result is a
//! *maximum* matching of the combined request set, so rearrangement can
//! only improve throughput over the non-disturb policy.

use wdm_core::{ChannelMask, Conversion, Error};

/// The channel placement computed by [`rearrange_fiber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RearrangeOutcome {
    /// New output channel for each in-flight connection, in input order.
    /// Guaranteed complete — rearrangement never drops an active connection.
    pub active_channels: Vec<usize>,
    /// For each new request (in input order), the granted output channel or
    /// `None` if rejected.
    pub request_channels: Vec<Option<usize>>,
}

/// Places `active` in-flight connections (by input wavelength) and `new`
/// requests (by input wavelength) on the free channels of one output fiber,
/// allowing actives to move.
///
/// `mask` restricts the usable channels (normally all free — channels held
/// by *other* mechanisms can be excluded). Returns an error if the actives
/// cannot all be placed, which indicates an inconsistent caller state.
#[wdm_attr::allow_reach(
    panic_free,
    reason = "wavelengths are range-checked against k at entry and the augmenting search only visits free-channel positions from the tables built over them; the caller re-certifies the outcome in debug builds"
)]
pub fn rearrange_fiber(
    conv: &Conversion,
    active: &[usize],
    new: &[usize],
    mask: &ChannelMask,
) -> Result<RearrangeOutcome, Error> {
    conv.check_k(mask.k())?;
    let k = conv.k();
    for &w in active.iter().chain(new) {
        if w >= k {
            return Err(Error::InvalidWavelength { wavelength: w, k });
        }
    }
    let free: Vec<usize> = mask.free_channels();
    let pos_of: Vec<Option<usize>> = {
        let mut v = vec![None; k];
        for (p, &w) in free.iter().enumerate() {
            v[w] = Some(p);
        }
        v
    };

    // Adjacency of a left vertex (by wavelength) over free-channel positions.
    let adjacency =
        |w: usize| -> Vec<usize> { conv.adjacency(w).iter(k).filter_map(|u| pos_of[u]).collect() };

    let lefts: Vec<Vec<usize>> = active.iter().chain(new).map(|&w| adjacency(w)).collect();
    let mut match_of_right: Vec<Option<usize>> = vec![None; free.len()];
    let mut match_of_left: Vec<Option<usize>> = vec![None; lefts.len()];

    fn augment(
        lefts: &[Vec<usize>],
        j: usize,
        visited: &mut [bool],
        match_of_right: &mut [Option<usize>],
        match_of_left: &mut [Option<usize>],
    ) -> bool {
        for &p in &lefts[j] {
            if visited[p] {
                continue;
            }
            visited[p] = true;
            let current = match_of_right[p];
            let reachable = match current {
                None => true,
                Some(j2) => augment(lefts, j2, visited, match_of_right, match_of_left),
            };
            if reachable {
                match_of_right[p] = Some(j);
                match_of_left[j] = Some(p);
                return true;
            }
        }
        false
    }

    // Phase 1: place every in-flight connection (must succeed).
    for j in 0..active.len() {
        let mut visited = vec![false; free.len()];
        if !augment(&lefts, j, &mut visited, &mut match_of_right, &mut match_of_left) {
            return Err(Error::InconsistentMatching);
        }
    }
    // Phase 2: admit new requests greedily in arrival order.
    for j in active.len()..lefts.len() {
        let mut visited = vec![false; free.len()];
        let _ = augment(&lefts, j, &mut visited, &mut match_of_right, &mut match_of_left);
    }

    let active_channels = match_of_left[..active.len()]
        .iter()
        .map(|p| match p {
            Some(p) => free[*p],
            None => unreachable!("phase 1 placed every active"),
        })
        .collect();
    let request_channels =
        (active.len()..lefts.len()).map(|j| match_of_left[j].map(|p| free[p])).collect();
    Ok(RearrangeOutcome { active_channels, request_channels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_core::algorithms::hopcroft_karp;
    use wdm_core::{RequestGraph, RequestVector};

    fn conv6() -> Conversion {
        Conversion::symmetric_circular(6, 3).unwrap()
    }

    #[test]
    fn actives_are_always_placed() {
        let conv = conv6();
        let out = rearrange_fiber(&conv, &[0, 0, 1], &[], &ChannelMask::all_free(6)).unwrap();
        assert_eq!(out.active_channels.len(), 3);
        // Channels distinct and within conversion range.
        let mut seen = std::collections::HashSet::new();
        for (&w, &u) in [0usize, 0, 1].iter().zip(&out.active_channels) {
            assert!(conv.converts(w, u));
            assert!(seen.insert(u));
        }
    }

    #[test]
    fn rearrangement_admits_a_request_non_disturb_would_reject() {
        // k = 2, no conversion. Active connection on λ0 currently assigned
        // to channel 1 (feasible? no — without conversion λ0 must sit on
        // channel 0). Use d = 2 instead: e=0, f=1 on k=2 is full… pick k=3,
        // e=0, f=1: λ0 → {0,1}, λ1 → {1,2}, λ2 → {2,0}.
        let conv = Conversion::circular(3, 0, 1).unwrap();
        // Active on λ0 previously parked on channel 1. A new λ1 request
        // needs channel 1 or 2 — suppose another active (λ1) holds 2.
        // Non-disturb would reject the new λ1 request iff actives sit on
        // {1, 2}. Rearrangement moves λ0's active to channel 0 and admits
        // everything.
        let out = rearrange_fiber(&conv, &[0, 1], &[1], &ChannelMask::all_free(3)).unwrap();
        assert!(out.request_channels[0].is_some(), "rearrangement admits the new λ1 request");
        // All three placements are distinct, feasible channels.
        let channels: Vec<usize> = out
            .active_channels
            .iter()
            .copied()
            .chain(out.request_channels.iter().flatten().copied())
            .collect();
        let wavelengths = [0usize, 1, 1];
        let distinct: std::collections::HashSet<usize> = channels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
        for (&w, &u) in wavelengths.iter().zip(&channels) {
            assert!(conv.converts(w, u));
        }
    }

    #[test]
    fn result_is_maximum_over_combined_set() {
        // Transversal-matroid property: placing actives first never reduces
        // the total matching size below the unconstrained maximum.
        let conv = conv6();
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![0, 1], vec![0, 0, 1, 5]),
            (vec![2, 2, 3], vec![2, 2, 2]),
            (vec![], vec![0, 1, 2, 3, 4, 5]),
            (vec![5, 5, 0], vec![4, 4, 1, 1]),
        ];
        for (active, new) in cases {
            let out = rearrange_fiber(&conv, &active, &new, &ChannelMask::all_free(6)).unwrap();
            let granted_new = out.request_channels.iter().flatten().count();
            let all: Vec<usize> = active.iter().chain(&new).copied().collect();
            let rv = RequestVector::from_wavelengths(6, &all).unwrap();
            let g = RequestGraph::new(conv, &rv).unwrap();
            let optimal = hopcroft_karp(&g).size();
            assert_eq!(active.len() + granted_new, optimal, "active={active:?} new={new:?}");
        }
    }

    #[test]
    fn infeasible_actives_error() {
        // Two actives on λ0 with d = 1: only channel 0 exists for them.
        let conv = Conversion::none(3).unwrap();
        assert!(matches!(
            rearrange_fiber(&conv, &[0, 0], &[], &ChannelMask::all_free(3)),
            Err(Error::InconsistentMatching)
        ));
    }

    #[test]
    fn out_of_range_wavelength_rejected() {
        let conv = conv6();
        assert!(rearrange_fiber(&conv, &[6], &[], &ChannelMask::all_free(6)).is_err());
        assert!(rearrange_fiber(&conv, &[], &[9], &ChannelMask::all_free(6)).is_err());
    }
}
