//! Running the `N` per-output-fiber schedulers in parallel.
//!
//! The paper's central architectural point: "the connection requests arrived
//! at the interconnect in one time slot can be partitioned into N subsets
//! according to their destinations. The decision of accepting a request or
//! not in one subset does not affect the decisions in other subsets" — so
//! the per-fiber schedulers can run concurrently with no coordination.
//! [`run_per_fiber`] realizes that with `std::thread::scope` over disjoint
//! chunks of per-fiber state; with `threads <= 1` it degrades to a
//! sequential loop that produces bit-identical results (asserted in tests).

/// Applies `f(fiber_index, &mut state, &input)` to every fiber, optionally
/// across `threads` worker threads, and collects the outputs in fiber order.
///
/// `states` and `inputs` must have the same length (one entry per output
/// fiber).
///
/// # Panics
///
/// Panics if `states.len() != inputs.len()` or a worker panics.
#[wdm_attr::allow_reach(
    hot_path,
    reason = "the per-slot callers return unit, so the collected Vec is zero-sized and never touches the heap; wdm-alloc-count pins the steady-state slot at zero allocations"
)]
#[wdm_attr::allow_reach(
    panic_free,
    reason = "scope.spawn fills every chunk slot before std::thread::scope joins the workers, so a None after the scope is impossible"
)]
pub fn run_per_fiber<S, I, O, F>(states: &mut [S], inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    S: Send,
    I: Sync,
    O: Send,
    F: Fn(usize, &mut S, &I) -> O + Sync,
{
    assert_eq!(states.len(), inputs.len(), "one state and one input per fiber");
    let n = states.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    if workers == 1 {
        return states
            .iter_mut()
            .zip(inputs)
            .enumerate()
            .map(|(i, (s, inp))| f(i, s, inp))
            .collect();
    }

    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    // A panicking worker propagates when the scope joins it.
    std::thread::scope(|scope| {
        let state_chunks = states.chunks_mut(chunk);
        let input_chunks = inputs.chunks(chunk);
        let out_chunks = out.chunks_mut(chunk);
        for (ci, ((sc, ic), oc)) in state_chunks.zip(input_chunks).zip(out_chunks).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = ci * chunk;
                for (off, ((s, inp), slot)) in sc.iter_mut().zip(ic).zip(oc.iter_mut()).enumerate()
                {
                    *slot = Some(f(base + off, s, inp));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| match o {
            Some(o) => o,
            None => unreachable!("every fiber produced an output"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let inputs: Vec<usize> = (0..37).collect();
        let mut states1 = vec![0usize; 37];
        let mut states2 = vec![0usize; 37];
        let f = |i: usize, s: &mut usize, inp: &usize| {
            *s += inp + i;
            *s * 2
        };
        let seq = run_per_fiber(&mut states1, &inputs, 1, f);
        let par = run_per_fiber(&mut states2, &inputs, 4, f);
        assert_eq!(seq, par);
        assert_eq!(states1, states2);
    }

    #[test]
    fn outputs_in_fiber_order() {
        let inputs: Vec<usize> = (0..16).collect();
        let mut states = vec![(); 16];
        let out = run_per_fiber(&mut states, &inputs, 8, |i, _, inp| (i, *inp));
        for (i, &(fi, inp)) in out.iter().enumerate() {
            assert_eq!(fi, i);
            assert_eq!(inp, i);
        }
    }

    #[test]
    fn more_threads_than_fibers() {
        let inputs = vec![1, 2];
        let mut states = vec![0, 0];
        let out = run_per_fiber(&mut states, &inputs, 16, |_, s, inp| {
            *s = *inp;
            *inp * 10
        });
        assert_eq!(out, vec![10, 20]);
        assert_eq!(states, vec![1, 2]);
    }

    #[test]
    fn empty_fibers() {
        let mut states: Vec<()> = Vec::new();
        let inputs: Vec<()> = Vec::new();
        let out: Vec<()> = run_per_fiber(&mut states, &inputs, 4, |_, _, _| ());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "one state and one input per fiber")]
    fn mismatched_lengths_panic() {
        let mut states = vec![0];
        let inputs: Vec<i32> = vec![];
        let _: Vec<()> = run_per_fiber(&mut states, &inputs, 1, |_, _, _| ());
    }
}
