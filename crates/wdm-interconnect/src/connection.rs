//! Connection requests, grants and rejections.
//!
//! A connection request arrives at the beginning of a time slot on a
//! specific input channel (fiber + wavelength) and asks for *any* free,
//! conversion-reachable channel on one destination fiber (unicast, paper
//! §I). Optical packets last one slot; circuit/burst connections may hold
//! for several (§V).

use wdm_core::Error;

use crate::reservation::{ReservationExpiry, ReservationGrant};

/// A unicast connection request for one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnectionRequest {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Wavelength the request arrives on.
    pub src_wavelength: usize,
    /// Destination output fiber (the request does not pick a channel).
    pub dst_fiber: usize,
    /// How many slots the connection holds once granted (1 = optical
    /// packet).
    pub duration: u32,
}

impl ConnectionRequest {
    /// A single-slot (optical packet) request.
    pub fn packet(src_fiber: usize, src_wavelength: usize, dst_fiber: usize) -> Self {
        ConnectionRequest { src_fiber, src_wavelength, dst_fiber, duration: 1 }
    }

    /// A multi-slot (burst/circuit) request.
    pub fn burst(src_fiber: usize, src_wavelength: usize, dst_fiber: usize, duration: u32) -> Self {
        ConnectionRequest { src_fiber, src_wavelength, dst_fiber, duration }
    }

    /// Validates the request against the interconnect dimensions.
    pub fn validate(&self, n: usize, k: usize) -> Result<(), Error> {
        if self.src_fiber >= n {
            return Err(Error::InvalidFiber { fiber: self.src_fiber, n });
        }
        if self.dst_fiber >= n {
            return Err(Error::InvalidFiber { fiber: self.dst_fiber, n });
        }
        if self.src_wavelength >= k {
            return Err(Error::InvalidWavelength { wavelength: self.src_wavelength, k });
        }
        if self.duration == 0 {
            return Err(Error::LengthMismatch { expected: 1, actual: 0 });
        }
        Ok(())
    }
}

/// A granted connection: the request plus its assigned output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Grant {
    /// The granted request.
    pub request: ConnectionRequest,
    /// The output wavelength channel assigned on `request.dst_fiber`.
    pub output_wavelength: usize,
}

/// Why a request was not granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Lost the output contention: no free reachable channel remained after
    /// the maximum matching (the loss the paper's algorithms minimize).
    OutputContention,
    /// The source input channel is still carrying an earlier multi-slot
    /// connection, so the new request is physically impossible.
    SourceBusy,
}

/// A rejected request with its reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rejection {
    /// The rejected request.
    pub request: ConnectionRequest,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// The outcome of one time slot.
#[must_use]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotResult {
    /// Newly granted connections this slot.
    pub grants: Vec<Grant>,
    /// Requests rejected this slot.
    pub rejections: Vec<Rejection>,
    /// Connections (granted in earlier slots) that completed at the
    /// *beginning* of this slot, freeing their channels.
    pub completed: usize,
    /// In-flight connections moved to a different output channel this slot
    /// (always 0 under [`crate::HoldPolicy::NonDisturb`]).
    pub rearranged: usize,
    /// Advance reservations that activated and were granted their channel
    /// this slot (their holds are now in flight).
    pub reservation_grants: Vec<ReservationGrant>,
    /// Advance reservations that expired at activation this slot (source
    /// channel busy, or no conversion-reachable channel free).
    pub reservation_expired: Vec<ReservationExpiry>,
}

impl SlotResult {
    /// Number of cell requests presented this slot (reservation
    /// activations are counted separately).
    pub fn offered(&self) -> usize {
        self.grants.len() + self.rejections.len()
    }

    /// Number of advance reservations that reached their start slot this
    /// slot (granted or expired).
    pub fn reservations_due(&self) -> usize {
        self.reservation_grants.len() + self.reservation_expired.len()
    }

    /// Rejections due to output contention only.
    pub fn contention_losses(&self) -> usize {
        self.rejections.iter().filter(|r| r.reason == RejectReason::OutputContention).count()
    }

    /// Rejections because the source channel was busy.
    pub fn source_busy_losses(&self) -> usize {
        self.rejections.iter().filter(|r| r.reason == RejectReason::SourceBusy).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_and_burst_constructors() {
        let p = ConnectionRequest::packet(1, 2, 3);
        assert_eq!(p.duration, 1);
        let b = ConnectionRequest::burst(1, 2, 3, 10);
        assert_eq!(b.duration, 10);
    }

    #[test]
    fn validation_bounds() {
        let ok = ConnectionRequest::packet(1, 2, 3);
        assert!(ok.validate(4, 4).is_ok());
        assert!(ok.validate(3, 4).is_err(), "dst fiber out of range");
        assert!(ConnectionRequest::packet(4, 0, 0).validate(4, 4).is_err());
        assert!(ConnectionRequest::packet(0, 4, 0).validate(4, 4).is_err());
        assert!(ConnectionRequest::burst(0, 0, 0, 0).validate(4, 4).is_err());
    }

    #[test]
    fn slot_result_accounting() {
        let req = ConnectionRequest::packet(0, 0, 0);
        let result = SlotResult {
            grants: vec![Grant { request: req, output_wavelength: 0 }],
            rejections: vec![
                Rejection { request: req, reason: RejectReason::OutputContention },
                Rejection { request: req, reason: RejectReason::SourceBusy },
            ],
            completed: 2,
            rearranged: 0,
            ..SlotResult::default()
        };
        assert_eq!(result.offered(), 3);
        assert_eq!(result.contention_losses(), 1);
        assert_eq!(result.source_busy_losses(), 1);
    }
}
