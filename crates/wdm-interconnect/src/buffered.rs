//! Input-buffered operation — the electronic-switch regime the paper cites
//! ([7] PIM, [8] iSLIP) transplanted onto the WDM wavelength machinery.
//!
//! The paper's interconnect is bufferless: requests that lose the output
//! contention are dropped ("optical buffers … are still very expensive").
//! Real deployments often terminate contention losses in *electronic* input
//! buffers instead. This module models that: packets that are not granted
//! wait at their input channel and re-contend in later slots. Two queueing
//! disciplines are provided:
//!
//! * [`QueueDiscipline::Fifo`] — one FIFO per input channel `(fiber, λ)`.
//!   Only the head-of-line packet can contend, so the switch exhibits the
//!   classic HOL-blocking throughput ceiling.
//! * [`QueueDiscipline::Voq`] — virtual output queues per
//!   `(input channel, destination fiber)` with an iterative request/grant
//!   loop: each iteration, every still-idle input channel proposes its next
//!   backlogged destination (round-robin pointer), each output fiber's
//!   wavelength scheduler grants a maximum matching over the proposals given
//!   the channels already committed, and grants are final. More iterations
//!   recover the throughput HOL blocking loses.
//!
//! Both disciplines reuse the per-output-fiber schedulers unchanged — the
//! wavelength contention is still resolved by First Available /
//! Break-and-First-Available; buffering only changes *which* requests are
//! presented each slot.

use std::collections::VecDeque;

use wdm_core::{ChannelMask, Conversion, Error, FiberScheduler, Policy, RequestVector};

use crate::arbitration::GrantResolver;
use crate::connection::ConnectionRequest;

/// How ungranted packets wait at the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// One FIFO per input channel; only the head-of-line packet contends.
    Fifo,
    /// Virtual output queues with this many request/grant iterations per
    /// slot (1 behaves like FIFO without HOL blocking across destinations;
    /// 2–4 recover most of the residual loss).
    Voq {
        /// Request/grant iterations per slot (clamped to at least 1).
        iterations: usize,
    },
}

/// A packet waiting in an input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedPacket {
    dst_fiber: usize,
    arrived_slot: u64,
}

/// One transmitted packet and its queueing delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Source input fiber.
    pub src_fiber: usize,
    /// Input wavelength.
    pub src_wavelength: usize,
    /// Destination output fiber.
    pub dst_fiber: usize,
    /// Output wavelength channel used.
    pub output_wavelength: usize,
    /// Slots spent waiting in the input buffer (0 = sent on arrival slot).
    pub delay: u64,
}

/// Outcome of one buffered slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferedSlotResult {
    /// Packets sent through the fabric this slot.
    pub transmitted: Vec<Transmission>,
    /// Arrivals dropped because their queue was full (drop-tail).
    pub dropped: usize,
    /// Total packets left waiting after the slot.
    pub backlog: usize,
}

/// An input-buffered `N×N` WDM interconnect (single-slot packets).
#[derive(Debug, Clone)]
pub struct BufferedInterconnect {
    n: usize,
    conversion: Conversion,
    discipline: QueueDiscipline,
    /// Per-queue capacity (packets). Queues are per input channel (FIFO) or
    /// per (input channel, destination) (VOQ).
    capacity: usize,
    scheduler: FiberScheduler,
    resolvers: Vec<GrantResolver>,
    /// `queues[fiber * k + w][dst]` (VOQ) or `queues[fiber * k + w][0]`
    /// (FIFO, destination stored per packet).
    queues: Vec<Vec<VecDeque<QueuedPacket>>>,
    /// VOQ round-robin destination pointer per input channel.
    dst_pointer: Vec<usize>,
    slot: u64,
}

impl BufferedInterconnect {
    /// Builds the buffered switch. `capacity` bounds each queue (drop-tail);
    /// use `usize::MAX` for effectively infinite buffers.
    pub fn new(
        n: usize,
        conversion: Conversion,
        policy: Policy,
        discipline: QueueDiscipline,
        capacity: usize,
    ) -> Result<BufferedInterconnect, Error> {
        if n == 0 {
            return Err(Error::ZeroFibers);
        }
        if capacity == 0 {
            return Err(Error::LengthMismatch { expected: 1, actual: 0 });
        }
        let k = conversion.k();
        let per_channel = match discipline {
            QueueDiscipline::Fifo => 1,
            QueueDiscipline::Voq { .. } => n,
        };
        Ok(BufferedInterconnect {
            n,
            conversion,
            discipline,
            capacity,
            scheduler: FiberScheduler::new(conversion, policy),
            resolvers: (0..n).map(|_| GrantResolver::new(n, k)).collect(),
            queues: vec![vec![VecDeque::new(); per_channel]; n * k],
            dst_pointer: vec![0; n * k],
            slot: 0,
        })
    }

    /// Number of fibers per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of wavelengths per fiber.
    pub fn k(&self) -> usize {
        self.conversion.k()
    }

    /// Packets currently waiting.
    pub fn backlog(&self) -> usize {
        self.queues.iter().flatten().map(VecDeque::len).sum()
    }

    /// Advances one slot: enqueue `arrivals`, contend, transmit.
    ///
    /// Arrivals must be single-slot packets (`duration == 1`); multi-slot
    /// holding is a property of the bufferless circuit modes.
    pub fn advance_slot(
        &mut self,
        arrivals: &[ConnectionRequest],
    ) -> Result<BufferedSlotResult, Error> {
        let k = self.k();
        for r in arrivals {
            r.validate(self.n, k)?;
            if r.duration != 1 {
                return Err(Error::LengthMismatch { expected: 1, actual: r.duration as usize });
            }
        }
        let mut dropped = 0usize;
        for r in arrivals {
            let channel = r.src_fiber * k + r.src_wavelength;
            let queue_idx = match self.discipline {
                QueueDiscipline::Fifo => 0,
                QueueDiscipline::Voq { .. } => r.dst_fiber,
            };
            let queue = &mut self.queues[channel][queue_idx];
            if queue.len() >= self.capacity {
                dropped += 1;
            } else {
                queue.push_back(QueuedPacket { dst_fiber: r.dst_fiber, arrived_slot: self.slot });
            }
        }

        let transmitted = match self.discipline {
            QueueDiscipline::Fifo => self.contend_fifo()?,
            QueueDiscipline::Voq { iterations } => self.contend_voq(iterations.max(1))?,
        };

        self.slot += 1;
        Ok(BufferedSlotResult { transmitted, dropped, backlog: self.backlog() })
    }

    /// FIFO: the head-of-line packet of each channel contends for its
    /// destination; one scheduling round.
    fn contend_fifo(&mut self) -> Result<Vec<Transmission>, Error> {
        let k = self.k();
        // Proposals: (channel, dst) from each non-empty queue head.
        let proposals: Vec<(usize, usize)> = (0..self.n * k)
            .filter_map(|ch| self.queues[ch][0].front().map(|p| (ch, p.dst_fiber)))
            .collect();
        let mut committed = vec![false; self.n * k];
        let masks = vec![ChannelMask::all_free(k); self.n];
        let grants = self.schedule_round(&proposals, &mut committed, masks)?;
        Ok(self.apply_grants(grants))
    }

    /// VOQ: iterative rounds; each idle channel proposes its next
    /// backlogged destination by round-robin, channels granted in earlier
    /// rounds stay committed and their output channels stay occupied.
    fn contend_voq(&mut self, iterations: usize) -> Result<Vec<Transmission>, Error> {
        let k = self.k();
        let mut committed = vec![false; self.n * k];
        let mut masks = vec![ChannelMask::all_free(k); self.n];
        // Per-slot proposal cursor: starts at the persistent pointer; a
        // channel whose proposal loses an iteration moves on to its next
        // backlogged destination (desynchronization, as in iSLIP).
        let mut cursor = self.dst_pointer.clone();
        let mut all = Vec::new();
        for _ in 0..iterations {
            let mut proposals = Vec::new();
            for ch in 0..self.n * k {
                if committed[ch] {
                    continue;
                }
                let start = cursor[ch];
                let pick = (0..self.n)
                    .map(|off| (start + off) % self.n)
                    .find(|&dst| !self.queues[ch][dst].is_empty());
                if let Some(dst) = pick {
                    proposals.push((ch, dst));
                }
            }
            if proposals.is_empty() {
                break;
            }
            let grants = self.schedule_round(&proposals, &mut committed, masks.clone())?;
            // Losers retry a different destination next iteration; winners
            // advance their persistent pointer (iSLIP update rule).
            for &(ch, dst) in &proposals {
                if !committed[ch] {
                    cursor[ch] = (dst + 1) % self.n;
                }
            }
            if grants.iter().all(Vec::is_empty) {
                continue;
            }
            for (dst, fiber_grants) in grants.iter().enumerate() {
                for &(ch, out_w) in fiber_grants {
                    masks[dst].set_occupied(out_w)?;
                    self.dst_pointer[ch] = (dst + 1) % self.n;
                }
            }
            all.extend(self.apply_grants(grants));
        }
        Ok(all)
    }

    /// One scheduling round: group proposals by destination, run the
    /// per-fiber wavelength scheduler on each group, resolve to concrete
    /// channels. Returns per-destination lists of (channel, out_wavelength)
    /// and marks granted channels committed.
    #[allow(clippy::type_complexity)]
    fn schedule_round(
        &mut self,
        proposals: &[(usize, usize)],
        committed: &mut [bool],
        masks: Vec<ChannelMask>,
    ) -> Result<Vec<Vec<(usize, usize)>>, Error> {
        let k = self.k();
        let mut per_dst: Vec<Vec<ConnectionRequest>> = vec![Vec::new(); self.n];
        for &(ch, dst) in proposals {
            per_dst[dst].push(ConnectionRequest::packet(ch / k, ch % k, dst));
        }
        let mut out = vec![Vec::new(); self.n];
        for (dst, candidates) in per_dst.iter().enumerate() {
            if candidates.is_empty() {
                continue;
            }
            let mut rv = RequestVector::new(k);
            for c in candidates {
                rv.add(c.src_wavelength)?;
            }
            let schedule = self.scheduler.schedule_with_mask(&rv, &masks[dst])?;
            let (grants, _leftover) =
                self.resolvers[dst].resolve(schedule.assignments(), candidates);
            for g in grants {
                let ch = g.request.src_fiber * k + g.request.src_wavelength;
                debug_assert!(!committed[ch]);
                committed[ch] = true;
                out[dst].push((ch, g.output_wavelength));
            }
        }
        Ok(out)
    }

    /// Dequeues the granted packets and records their delays.
    fn apply_grants(&mut self, grants: Vec<Vec<(usize, usize)>>) -> Vec<Transmission> {
        let k = self.k();
        let mut out = Vec::new();
        for (dst, fiber_grants) in grants.into_iter().enumerate() {
            for (ch, out_w) in fiber_grants {
                let queue_idx = match self.discipline {
                    QueueDiscipline::Fifo => 0,
                    QueueDiscipline::Voq { .. } => dst,
                };
                let Some(packet) = self.queues[ch][queue_idx].pop_front() else {
                    unreachable!("granted channels have a queued packet")
                };
                debug_assert_eq!(packet.dst_fiber, dst);
                out.push(Transmission {
                    src_fiber: ch / k,
                    src_wavelength: ch % k,
                    dst_fiber: dst,
                    output_wavelength: out_w,
                    delay: self.slot - packet.arrived_slot,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Conversion {
        Conversion::symmetric_circular(4, 3).unwrap()
    }

    fn mk(discipline: QueueDiscipline) -> BufferedInterconnect {
        BufferedInterconnect::new(2, conv(), Policy::Auto, discipline, 64).unwrap()
    }

    #[test]
    fn packet_flows_through_without_contention() {
        for discipline in [QueueDiscipline::Fifo, QueueDiscipline::Voq { iterations: 2 }] {
            let mut sw = mk(discipline);
            let r = sw.advance_slot(&[ConnectionRequest::packet(0, 1, 1)]).unwrap();
            assert_eq!(r.transmitted.len(), 1);
            assert_eq!(r.transmitted[0].delay, 0);
            assert_eq!(r.backlog, 0);
            assert_eq!(r.dropped, 0);
        }
    }

    #[test]
    fn losers_wait_and_retransmit() {
        // k=4, d=3; five packets on the same wavelength to the same fiber:
        // only 3 channels are reachable from one wavelength, so at most 3
        // go through; the rest wait (bufferless mode would drop them).
        let mut sw =
            BufferedInterconnect::new(8, conv(), Policy::Auto, QueueDiscipline::Fifo, 64).unwrap();
        let arrivals: Vec<ConnectionRequest> =
            (0..5).map(|fiber| ConnectionRequest::packet(fiber, 0, 0)).collect();
        let r1 = sw.advance_slot(&arrivals).unwrap();
        assert_eq!(r1.transmitted.len(), 3, "λ0 reaches 3 channels");
        assert_eq!(r1.backlog, 2);
        let r2 = sw.advance_slot(&[]).unwrap();
        assert_eq!(r2.transmitted.len(), 2);
        assert!(r2.transmitted.iter().all(|t| t.delay == 1));
        assert_eq!(r2.backlog, 0);
    }

    #[test]
    fn fifo_hol_blocking_voq_does_not() {
        // Two packets queued on channel (0, λ0): first to fiber 0, second to
        // fiber 1. Fiber 0's reachable channels are all taken by other
        // inputs this slot; FIFO blocks the fiber-1 packet behind the HOL,
        // VOQ sends it.
        let run = |discipline| {
            let mut sw =
                BufferedInterconnect::new(8, conv(), Policy::Auto, discipline, 64).unwrap();
            // Slot 0: queue the two packets on (0, λ0) plus three competitors
            // on distinct channels that saturate fiber 0's λ0-range {3,0,1}…
            // Competitors on λ3, λ0, λ1 from other fibers, arriving first is
            // irrelevant — the matching considers all. To force (0,λ0) to
            // lose fiber 0, give competitors wavelengths covering its whole
            // range with higher-priority positions… simplest: 6 competitors
            // on fiber0-bound λ0 from lower-numbered… fibers are symmetric;
            // instead saturate with k=4 packets on 4 distinct wavelengths.
            let mut arrivals = vec![
                ConnectionRequest::packet(0, 0, 0),
                ConnectionRequest::packet(0, 0, 1), // will be dropped: same channel!
            ];
            // One packet per wavelength from other fibers, all to fiber 0.
            for w in 0..4 {
                arrivals.push(ConnectionRequest::packet(1 + w, w, 0));
            }
            let _ = &mut arrivals;
            let mut sent_to_1 = 0usize;
            // Same input channel twice in one slot is fine for buffers: both
            // queue. Run two slots.
            let r = sw.advance_slot(&arrivals).unwrap();
            sent_to_1 += r.transmitted.iter().filter(|t| t.dst_fiber == 1).count();
            let r = sw.advance_slot(&[]).unwrap();
            sent_to_1 += r.transmitted.iter().filter(|t| t.dst_fiber == 1).count();
            sent_to_1
        };
        let fifo = run(QueueDiscipline::Fifo);
        let voq = run(QueueDiscipline::Voq { iterations: 4 });
        assert!(voq >= fifo, "VOQ ({voq}) must not lose to FIFO ({fifo})");
    }

    #[test]
    fn drop_tail_respects_capacity() {
        let mut sw =
            BufferedInterconnect::new(2, conv(), Policy::Auto, QueueDiscipline::Fifo, 2).unwrap();
        // 4 arrivals on one channel in one slot: capacity 2 → 2 dropped.
        let arrivals = vec![ConnectionRequest::packet(0, 0, 1); 4];
        let r = sw.advance_slot(&arrivals).unwrap();
        assert_eq!(r.dropped, 2);
        assert_eq!(r.transmitted.len(), 1);
        assert_eq!(r.backlog, 1);
    }

    #[test]
    fn rejects_multi_slot_packets_and_bad_requests() {
        let mut sw = mk(QueueDiscipline::Fifo);
        assert!(sw.advance_slot(&[ConnectionRequest::burst(0, 0, 0, 2)]).is_err());
        assert!(sw.advance_slot(&[ConnectionRequest::packet(2, 0, 0)]).is_err());
        assert!(
            BufferedInterconnect::new(0, conv(), Policy::Auto, QueueDiscipline::Fifo, 4).is_err()
        );
        assert!(
            BufferedInterconnect::new(2, conv(), Policy::Auto, QueueDiscipline::Fifo, 0).is_err()
        );
    }

    #[test]
    fn conservation_over_time() {
        let mut sw = mk(QueueDiscipline::Voq { iterations: 3 });
        let mut arrived = 0usize;
        let mut sent = 0usize;
        let mut dropped = 0usize;
        for slot in 0..50u64 {
            let arrivals: Vec<ConnectionRequest> = (0..2)
                .flat_map(|fiber| {
                    (0..4)
                        .filter(move |w| (fiber * 7 + w * 3 + slot as usize).is_multiple_of(3))
                        .map(move |w| ConnectionRequest::packet(fiber, w, (fiber + w) % 2))
                })
                .collect();
            arrived += arrivals.len();
            let r = sw.advance_slot(&arrivals).unwrap();
            sent += r.transmitted.len();
            dropped += r.dropped;
            assert_eq!(arrived, sent + dropped + r.backlog);
            // Physical validity per slot: distinct output channels per dst,
            // conversion range respected.
            for dst in 0..2 {
                let mut used = std::collections::HashSet::new();
                for t in r.transmitted.iter().filter(|t| t.dst_fiber == dst) {
                    assert!(used.insert(t.output_wavelength));
                    assert!(conv().converts(t.src_wavelength, t.output_wavelength));
                }
            }
        }
        // Drain.
        for _ in 0..50 {
            let r = sw.advance_slot(&[]).unwrap();
            sent += r.transmitted.len();
        }
        assert_eq!(sw.backlog(), 0);
        assert_eq!(arrived, sent + dropped);
    }

    #[test]
    fn each_channel_sends_at_most_once_per_slot() {
        let mut sw = mk(QueueDiscipline::Voq { iterations: 4 });
        // Pile 6 packets on one channel toward both destinations.
        let mut arrivals = Vec::new();
        for i in 0..6 {
            arrivals.push(ConnectionRequest::packet(0, 0, i % 2));
        }
        let r = sw.advance_slot(&arrivals).unwrap();
        assert_eq!(r.transmitted.len(), 1, "one transmitter per channel per slot");
        assert_eq!(r.backlog, 5);
    }
}
