//! Resolving wavelength-level schedules to concrete requests.
//!
//! The matching algorithms decide *how many* requests per input wavelength
//! are granted on each output fiber and which output channels they get —
//! requests on the same wavelength are interchangeable for throughput. This
//! module picks *which* requests win, with per-(output fiber, wavelength)
//! round-robin pointers over the source fibers for long-run fairness
//! (paper §III, following iSLIP [7][8]).

use wdm_core::algorithms::Assignment;

use crate::connection::{ConnectionRequest, Grant};

/// Round-robin resolver for one output fiber.
///
/// The bucket/cursor scratch lives in the resolver so steady-state
/// resolution allocates nothing — this runs once per fiber per slot.
#[derive(Debug, Clone)]
pub struct GrantResolver {
    n: usize,
    /// One rotating pointer per input wavelength.
    pointers: Vec<usize>,
    /// Per-wavelength candidate buckets, reused across slots.
    buckets: Vec<Vec<usize>>,
    /// Next unserved entry of each bucket, reused across slots.
    next_in_bucket: Vec<usize>,
    /// Which candidates were granted, reused across slots.
    taken: Vec<bool>,
}

impl GrantResolver {
    /// A resolver over `n` source fibers and `k` wavelengths, pointers at
    /// fiber 0.
    pub fn new(n: usize, k: usize) -> GrantResolver {
        GrantResolver {
            n,
            pointers: vec![0; k],
            buckets: vec![Vec::new(); k],
            next_in_bucket: vec![0; k],
            taken: Vec::new(),
        }
    }

    /// The current pointer for `wavelength`.
    pub fn pointer(&self, wavelength: usize) -> usize {
        self.pointers[wavelength]
    }

    /// Resolves the wavelength-level `assignments` for this output fiber to
    /// concrete requests drawn from `candidates` (all destined to this
    /// fiber). Returns the grants and the indices of `candidates` left
    /// ungranted.
    ///
    /// Candidates are matched to assignments of their wavelength in
    /// round-robin order by source fiber, starting at the wavelength's
    /// pointer.
    pub fn resolve(
        &mut self,
        assignments: &[Assignment],
        candidates: &[ConnectionRequest],
    ) -> (Vec<Grant>, Vec<usize>) {
        let mut grants = Vec::with_capacity(assignments.len());
        let mut contention = Vec::new();
        self.resolve_into(assignments, candidates, &mut grants, &mut contention);
        let leftovers = (0..candidates.len()).filter(|&i| !self.taken[i]).collect();
        (grants, leftovers)
    }

    /// [`Self::resolve`] writing into caller-provided buffers: `grants` and
    /// `contention` are cleared and refilled (`contention` receives the
    /// ungranted candidates themselves, in candidate order). Allocation-free
    /// at steady state — this is the per-slot production path.
    pub fn resolve_into(
        &mut self,
        assignments: &[Assignment],
        candidates: &[ConnectionRequest],
        grants: &mut Vec<Grant>,
        contention: &mut Vec<ConnectionRequest>,
    ) {
        grants.clear();
        contention.clear();
        // Bucket candidates by wavelength once and sort each bucket in
        // round-robin order from the wavelength's current pointer. Because
        // the pointer always advances to (winner + 1), successive grants on
        // one wavelength take successive bucket entries, so serving each
        // bucket front-to-back reproduces the per-grant
        // min-(fiber − pointer) rule in O(C log C + A) instead of O(A·C).
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        for (i, c) in candidates.iter().enumerate() {
            self.buckets[c.src_wavelength].push(i);
        }
        for (w, bucket) in self.buckets.iter_mut().enumerate() {
            let ptr = self.pointers[w];
            bucket.sort_by_key(|&i| (candidates[i].src_fiber + self.n - ptr) % self.n);
        }
        self.next_in_bucket.fill(0);
        self.taken.clear();
        self.taken.resize(candidates.len(), false);
        for a in assignments {
            let cursor = &mut self.next_in_bucket[a.input];
            let Some(&idx) = self.buckets[a.input].get(*cursor) else {
                debug_assert!(false, "schedule granted more than requested on λ{}", a.input);
                continue;
            };
            *cursor += 1;
            self.taken[idx] = true;
            self.pointers[a.input] = (candidates[idx].src_fiber + 1) % self.n;
            grants.push(Grant { request: candidates[idx], output_wavelength: a.output });
        }
        contention.extend(
            candidates.iter().enumerate().filter(|&(i, _)| !self.taken[i]).map(|(_, c)| *c),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(input: usize, output: usize) -> Assignment {
        Assignment { input, output }
    }

    #[test]
    fn resolves_matching_wavelengths() {
        let mut r = GrantResolver::new(4, 4);
        let candidates = vec![
            ConnectionRequest::packet(2, 1, 0),
            ConnectionRequest::packet(0, 1, 0),
            ConnectionRequest::packet(1, 3, 0),
        ];
        let (grants, leftovers) = r.resolve(&[asg(1, 0), asg(3, 3)], &candidates);
        assert_eq!(grants.len(), 2);
        // Pointer at 0: fiber 0 wins λ1.
        assert_eq!(grants[0].request.src_fiber, 0);
        assert_eq!(grants[0].output_wavelength, 0);
        assert_eq!(grants[1].request.src_fiber, 1);
        assert_eq!(leftovers, vec![0], "fiber 2's λ1 request lost");
    }

    #[test]
    fn round_robin_across_calls() {
        let mut r = GrantResolver::new(3, 1);
        let candidates = vec![
            ConnectionRequest::packet(0, 0, 0),
            ConnectionRequest::packet(1, 0, 0),
            ConnectionRequest::packet(2, 0, 0),
        ];
        // One grant per slot, persistent contention: winners rotate.
        let mut winners = Vec::new();
        for _ in 0..6 {
            let (grants, _) = r.resolve(&[asg(0, 0)], &candidates);
            winners.push(grants[0].request.src_fiber);
        }
        assert_eq!(winners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn two_grants_same_wavelength_take_distinct_fibers() {
        let mut r = GrantResolver::new(3, 1);
        let candidates = vec![
            ConnectionRequest::packet(0, 0, 0),
            ConnectionRequest::packet(1, 0, 0),
            ConnectionRequest::packet(2, 0, 0),
        ];
        let (grants, leftovers) = r.resolve(&[asg(0, 0), asg(0, 1)], &candidates);
        let fibers: Vec<usize> = grants.iter().map(|g| g.request.src_fiber).collect();
        assert_eq!(fibers, vec![0, 1]);
        assert_eq!(leftovers, vec![2]);
    }

    #[test]
    fn empty_assignments_leave_all_candidates() {
        let mut r = GrantResolver::new(2, 2);
        let candidates = vec![ConnectionRequest::packet(0, 0, 0)];
        let (grants, leftovers) = r.resolve(&[], &candidates);
        assert!(grants.is_empty());
        assert_eq!(leftovers, vec![0]);
    }
}
