//! The optical datapath of the paper's Fig. 1 as a structural model.
//!
//! Per output fiber, each of the `k` output wavelength channels has a
//! combiner (fan-in `N·d`: every input channel whose wavelength converts to
//! this channel) followed by a wavelength converter and the output
//! multiplexer. Only one of a combiner's inputs may carry a signal at a
//! time; the converter shifts the signal to the channel's wavelength, which
//! must be within the conversion range of the incoming wavelength.
//!
//! [`CrossbarState`] is the fabric configuration for one slot — which input
//! channel drives which output channel — and [`CrossbarState::validate`]
//! checks every physical constraint. The interconnect asserts this after
//! every scheduling round, so an algorithmic bug can never configure an
//! impossible datapath silently.

use wdm_core::{Conversion, Error};

use crate::connection::Grant;

/// The switching-fabric configuration for one time slot.
///
/// `map[o][w]` names the input channel `(input_fiber, input_wavelength)`
/// driving output channel `w` of output fiber `o`, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarState {
    n: usize,
    k: usize,
    map: Vec<Vec<Option<(usize, usize)>>>,
}

impl CrossbarState {
    /// An idle fabric for an `n × n` interconnect with `k` wavelengths.
    pub fn new(n: usize, k: usize) -> CrossbarState {
        CrossbarState { n, k, map: vec![vec![None; k]; n] }
    }

    /// Number of fibers per side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of wavelengths per fiber.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Connects input channel `(src_fiber, src_wavelength)` to output
    /// channel `out_wavelength` of `dst_fiber`.
    ///
    /// Returns an error if the output channel is already driven (a combiner
    /// may carry only one signal).
    pub fn connect(
        &mut self,
        src_fiber: usize,
        src_wavelength: usize,
        dst_fiber: usize,
        out_wavelength: usize,
    ) -> Result<(), Error> {
        if src_fiber >= self.n {
            return Err(Error::InvalidFiber { fiber: src_fiber, n: self.n });
        }
        if dst_fiber >= self.n {
            return Err(Error::InvalidFiber { fiber: dst_fiber, n: self.n });
        }
        if src_wavelength >= self.k {
            return Err(Error::InvalidWavelength { wavelength: src_wavelength, k: self.k });
        }
        if out_wavelength >= self.k {
            return Err(Error::InvalidWavelength { wavelength: out_wavelength, k: self.k });
        }
        let slot = &mut self.map[dst_fiber][out_wavelength];
        if slot.is_some() {
            return Err(Error::AlreadyMatched { left_side: false, index: out_wavelength });
        }
        *slot = Some((src_fiber, src_wavelength));
        Ok(())
    }

    /// The input channel driving output channel `w` of fiber `o`, if any.
    pub fn driver(&self, o: usize, w: usize) -> Option<(usize, usize)> {
        self.map[o][w]
    }

    /// Number of active connections in the fabric.
    pub fn active(&self) -> usize {
        self.map.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Releases output channel `w` of fiber `o` (connection completed).
    pub fn disconnect(&mut self, o: usize, w: usize) {
        self.map[o][w] = None;
    }

    /// Builds the fabric state implied by a slot's grants.
    pub fn from_grants(n: usize, k: usize, grants: &[Grant]) -> Result<CrossbarState, Error> {
        let mut state = CrossbarState::new(n, k);
        for g in grants {
            state.connect(
                g.request.src_fiber,
                g.request.src_wavelength,
                g.request.dst_fiber,
                g.output_wavelength,
            )?;
        }
        Ok(state)
    }

    /// Checks every physical constraint of the Fig. 1 datapath:
    ///
    /// 1. combiner exclusivity is structural (one driver per output channel);
    /// 2. every converter shift is within the conversion range;
    /// 3. each input channel drives at most one output channel (unicast —
    ///    a demultiplexed input signal cannot be split).
    pub fn validate(&self, conv: &Conversion) -> Result<(), Error> {
        conv.check_k(self.k)?;
        let mut input_used = vec![false; self.n * self.k];
        for (o, channels) in self.map.iter().enumerate() {
            for (w, slot) in channels.iter().enumerate() {
                let Some((src_fiber, src_wavelength)) = *slot else {
                    continue;
                };
                if !conv.converts(src_wavelength, w) {
                    return Err(Error::NotAnEdge { left: src_wavelength, right: w });
                }
                let idx = src_fiber * self.k + src_wavelength;
                if input_used[idx] {
                    return Err(Error::AlreadyMatched { left_side: true, index: idx });
                }
                input_used[idx] = true;
                let _ = o;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::ConnectionRequest;

    #[test]
    fn connect_and_validate_ok() {
        let conv = Conversion::symmetric_circular(4, 3).unwrap();
        let mut xb = CrossbarState::new(2, 4);
        xb.connect(0, 0, 1, 1).unwrap(); // λ0 → λ1, within range
        xb.connect(1, 3, 1, 0).unwrap(); // λ3 → λ0, wraps, within range
        xb.connect(0, 2, 0, 2).unwrap(); // straight
        assert_eq!(xb.active(), 3);
        xb.validate(&conv).unwrap();
        assert_eq!(xb.driver(1, 1), Some((0, 0)));
    }

    #[test]
    fn combiner_exclusivity() {
        let mut xb = CrossbarState::new(2, 4);
        xb.connect(0, 0, 1, 1).unwrap();
        assert!(xb.connect(1, 2, 1, 1).is_err(), "output channel already driven");
    }

    #[test]
    fn converter_range_enforced() {
        let conv = Conversion::symmetric_circular(6, 3).unwrap();
        let mut xb = CrossbarState::new(1, 6);
        xb.connect(0, 0, 0, 3).unwrap(); // structurally fine…
        assert!(xb.validate(&conv).is_err(), "…but λ0→λ3 exceeds d = 3");
    }

    #[test]
    fn unicast_input_exclusivity() {
        let conv = Conversion::full(4).unwrap();
        let mut xb = CrossbarState::new(2, 4);
        xb.connect(0, 1, 0, 0).unwrap();
        xb.connect(0, 1, 1, 2).unwrap(); // same input channel twice
        assert!(xb.validate(&conv).is_err());
    }

    #[test]
    fn disconnect_frees_channel() {
        let mut xb = CrossbarState::new(1, 2);
        xb.connect(0, 0, 0, 0).unwrap();
        xb.disconnect(0, 0);
        assert_eq!(xb.active(), 0);
        xb.connect(0, 1, 0, 0).unwrap();
        assert_eq!(xb.active(), 1);
    }

    #[test]
    fn from_grants_builds_state() {
        let grants = vec![
            Grant { request: ConnectionRequest::packet(0, 0, 1), output_wavelength: 0 },
            Grant { request: ConnectionRequest::packet(1, 1, 1), output_wavelength: 1 },
        ];
        let xb = CrossbarState::from_grants(2, 2, &grants).unwrap();
        assert_eq!(xb.active(), 2);
        assert_eq!(xb.driver(1, 0), Some((0, 0)));
        // Conflicting grants are rejected.
        let bad = vec![
            Grant { request: ConnectionRequest::packet(0, 0, 1), output_wavelength: 0 },
            Grant { request: ConnectionRequest::packet(1, 1, 1), output_wavelength: 0 },
        ];
        assert!(CrossbarState::from_grants(2, 2, &bad).is_err());
    }

    #[test]
    fn out_of_range_connects_rejected() {
        let mut xb = CrossbarState::new(2, 2);
        assert!(xb.connect(2, 0, 0, 0).is_err());
        assert!(xb.connect(0, 2, 0, 0).is_err());
        assert!(xb.connect(0, 0, 2, 0).is_err());
        assert!(xb.connect(0, 0, 0, 2).is_err());
    }
}
