//! # wdm-interconnect
//!
//! The `N×N` wavelength-convertible WDM optical interconnect of the paper's
//! Fig. 1, as a slotted state machine:
//!
//! * [`connection`] — connection requests (source channel → destination
//!   fiber, multi-slot durations) and grant/rejection records;
//! * [`fabric`] — the optical datapath (demux → switching fabric →
//!   combiners → converters → mux) as a structural validity checker: each
//!   combiner carries at most one signal, converters only shift within
//!   their range, each channel carries at most one connection;
//! * [`arbitration`] — resolution of wavelength-level grants to concrete
//!   input channels with per-(fiber, wavelength) round-robin fairness;
//! * [`interconnect`] — the top-level slotted switch: distributed
//!   per-output-fiber scheduling, §V occupied-channel handling for
//!   connections that hold across slots;
//! * [`rearrange`] — the §V "existing connections can be disturbed"
//!   alternative: in-flight connections may move to a different output
//!   channel but are never dropped;
//! * [`distributed`] — running the `N` independent per-fiber schedulers
//!   across worker threads (the paper's distributed claim, exercised for
//!   real);
//! * [`shard`] — the per-output-fiber scheduling unit ([`FiberUnit`])
//!   shared by the offline [`Interconnect`] and the `wdm-serve` daemon's
//!   destination shards, so both drive the identical decision path;
//! * [`reservation`] — §V advance reservations: a capacity ledger
//!   ([`ReservationStore`]) admitting future multi-slot holds against an
//!   admission horizon, with cancellation, timeout expiry, and a
//!   [`PreemptionPolicy`] knob deciding how activating reservations meet
//!   cell traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod arbitration;
pub mod buffered;
pub mod connection;
pub mod distributed;
pub mod fabric;
pub mod fcfs;
pub mod interconnect;
pub mod rearrange;
pub mod reservation;
pub mod shard;

pub use buffered::{BufferedInterconnect, BufferedSlotResult, QueueDiscipline, Transmission};
pub use connection::{ConnectionRequest, Grant, RejectReason, Rejection, SlotResult};
pub use fabric::CrossbarState;
pub use fcfs::FcfsSwitch;
pub use interconnect::{DisruptionImpact, HoldPolicy, Interconnect, InterconnectConfig};
pub use reservation::{
    PreemptionPolicy, Reservation, ReservationExpiry, ReservationGrant, ReservationRequest,
    ReservationStore, DEFAULT_RESERVATION_HORIZON,
};
pub use shard::{ActiveLink, FiberOutcome, FiberUnit};
