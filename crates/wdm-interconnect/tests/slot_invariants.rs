//! Property tests on the slotted interconnect: for arbitrary multi-slot
//! workloads, physical and accounting invariants hold at every slot, under
//! both holding policies and any thread count.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use wdm_core::{Conversion, Policy};
use wdm_interconnect::{
    ConnectionRequest, HoldPolicy, Interconnect, InterconnectConfig, RejectReason,
};

/// A generated multi-slot workload on an n-fiber, k-wavelength switch.
#[derive(Debug, Clone)]
struct Workload {
    n: usize,
    k: usize,
    e: usize,
    f: usize,
    /// Per slot: (src_fiber, src_wavelength, dst_fiber, duration) tuples;
    /// indexes are reduced mod n/k at use.
    slots: Vec<Vec<(usize, usize, usize, u32)>>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (2usize..6, 2usize..8).prop_flat_map(|(n, k)| {
        let reach = (0..k, 0..k).prop_filter("degree <= k", move |(e, f)| e + f < k);
        let slot = proptest::collection::vec((0..n, 0..k, 0..n, 1u32..5), 0..(n * k).min(12));
        (Just(n), Just(k), reach, proptest::collection::vec(slot, 1..25))
            .prop_map(|(n, k, (e, f), slots)| Workload { n, k, e, f, slots })
    })
}

fn dedupe_sources(reqs: Vec<ConnectionRequest>) -> Vec<ConnectionRequest> {
    let mut seen = std::collections::HashSet::new();
    reqs.into_iter().filter(|r| seen.insert((r.src_fiber, r.src_wavelength))).collect()
}

fn run_and_check(w: &Workload, hold: HoldPolicy, threads: usize) {
    let conv = Conversion::circular(w.k, w.e, w.f).unwrap();
    let cfg = InterconnectConfig::packet_switch(w.n, conv)
        .with_policy(Policy::Auto)
        .with_hold(hold)
        .with_threads(threads);
    let mut ic = Interconnect::new(cfg).unwrap();
    let (mut granted, mut completed) = (0u64, 0u64);
    for slot in &w.slots {
        let reqs: Vec<ConnectionRequest> = slot
            .iter()
            .map(|&(sf, sw, df, dur)| ConnectionRequest::burst(sf, sw, df, dur))
            .collect();
        let reqs = dedupe_sources(reqs);
        let result = ic.advance_slot(&reqs).unwrap();
        // Accounting: every request is granted or rejected exactly once.
        assert_eq!(result.offered(), reqs.len());
        granted += result.grants.len() as u64;
        completed += result.completed as u64;
        // Physical validity of the full fabric state.
        ic.crossbar().validate(&conv).unwrap();
        assert_eq!(ic.active_connections() as u64, granted - completed);
        // Source-busy rejections must correspond to a real holder.
        for rej in &result.rejections {
            if rej.reason == RejectReason::SourceBusy {
                let r = rej.request;
                let held = (0..w.n).any(|o| {
                    let xb = ic.crossbar();
                    (0..w.k).any(|ch| xb.driver(o, ch) == Some((r.src_fiber, r.src_wavelength)))
                });
                // The holder may also be a grant from this very slot.
                assert!(
                    held || result.grants.iter().any(|g| {
                        g.request.src_fiber == r.src_fiber
                            && g.request.src_wavelength == r.src_wavelength
                    }),
                    "source-busy rejection without a holder"
                );
            }
        }
        // Under rearrangement nothing is ever dropped mid-flight: active
        // count is consistent (already asserted) and the crossbar never
        // shrinks except by completions — covered by the equality above.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn non_disturb_invariants(w in workload()) {
        run_and_check(&w, HoldPolicy::NonDisturb, 1);
    }

    #[test]
    fn rearrange_invariants(w in workload()) {
        run_and_check(&w, HoldPolicy::Rearrange, 1);
    }

    #[test]
    fn threaded_matches_sequential(w in workload()) {
        let conv = Conversion::circular(w.k, w.e, w.f).unwrap();
        let mk = |threads: usize| {
            Interconnect::new(
                InterconnectConfig::packet_switch(w.n, conv).with_threads(threads),
            )
            .unwrap()
        };
        let mut seq = mk(1);
        let mut par = mk(3);
        for slot in &w.slots {
            let reqs: Vec<ConnectionRequest> = dedupe_sources(
                slot.iter()
                    .map(|&(sf, sw, df, dur)| ConnectionRequest::burst(sf, sw, df, dur))
                    .collect(),
            );
            let a = seq.advance_slot(&reqs).unwrap();
            let b = par.advance_slot(&reqs).unwrap();
            prop_assert_eq!(&a, &b);
        }
    }

    /// Slot results are insensitive to request ordering within a slot up to
    /// grant *count* (the matching size is order-independent; the concrete
    /// winners may differ only among same-wavelength candidates).
    #[test]
    fn grant_count_is_order_independent(w in workload(), swap_seed in 0usize..97) {
        let conv = Conversion::circular(w.k, w.e, w.f).unwrap();
        let mk = || Interconnect::new(InterconnectConfig::packet_switch(w.n, conv)).unwrap();
        let mut a = mk();
        let mut b = mk();
        for slot in &w.slots {
            let reqs = dedupe_sources(
                slot.iter()
                    .map(|&(sf, sw, df, dur)| ConnectionRequest::burst(sf, sw, df, dur))
                    .collect(),
            );
            let mut shuffled = reqs.clone();
            if shuffled.len() > 1 {
                let i = swap_seed % shuffled.len();
                let j = (swap_seed / 7 + 3) % shuffled.len();
                shuffled.swap(i, j);
            }
            let ra = a.advance_slot(&reqs).unwrap();
            let rb = b.advance_slot(&shuffled).unwrap();
            prop_assert_eq!(ra.grants.len(), rb.grants.len());
        }
    }
}
