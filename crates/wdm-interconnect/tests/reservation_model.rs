//! Property tests on the advance-reservation layer: over seeded random
//! schedules of cell arrivals, reservation arrivals, and cancellations,
//! the `_checked` admission twin is bit-identical to the plain path (its
//! full-ledger certificate never fires), no slot ever grants beyond the
//! k·d-feasible channel set while holds are active, and every admitted
//! hold resolves exactly once — at its start slot, unless cancelled first.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use wdm_core::{Conversion, Policy};
use wdm_interconnect::{
    ConnectionRequest, Interconnect, InterconnectConfig, PreemptionPolicy, ReservationRequest,
};

/// One slot's worth of driver activity, applied between `advance_slot`s.
#[derive(Debug, Clone)]
struct SlotEvents {
    /// Cell arrivals: (src_fiber, src_wavelength, dst_fiber, duration).
    cells: Vec<(usize, usize, usize, u32)>,
    /// Reservation arrivals: (src_fiber, src_wavelength, dst_fiber, lead,
    /// duration) with `start_slot = now + lead`.
    reservations: Vec<(usize, usize, usize, u64, u32)>,
    /// Cancellations, as indexes into the currently-pending ledger
    /// (reduced mod its length at use; no-ops when it is empty).
    cancels: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Schedule {
    n: usize,
    k: usize,
    e: usize,
    f: usize,
    compete: bool,
    slots: Vec<SlotEvents>,
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (2usize..5, 2usize..7).prop_flat_map(|(n, k)| {
        let reach = (0..k, 0..k).prop_filter("degree <= k", move |(e, f)| e + f < k);
        let cells = proptest::collection::vec((0..n, 0..k, 0..n, 1u32..4), 0..(n * k).min(8));
        let reservations = proptest::collection::vec((0..n, 0..k, 0..n, 0u64..6, 1u32..5), 0..3);
        let cancels = proptest::collection::vec(0usize..16, 0..2);
        let slot = (cells, reservations, cancels)
            .prop_map(|(cells, reservations, cancels)| SlotEvents { cells, reservations, cancels });
        (Just(n), Just(k), reach, proptest::bool::ANY, proptest::collection::vec(slot, 1..20))
            .prop_map(|(n, k, (e, f), compete, slots)| Schedule { n, k, e, f, compete, slots })
    })
}

fn build(s: &Schedule) -> Interconnect {
    let conv = Conversion::circular(s.k, s.e, s.f).unwrap();
    let preemption =
        if s.compete { PreemptionPolicy::Compete } else { PreemptionPolicy::ReservedFirst };
    let cfg = InterconnectConfig::packet_switch(s.n, conv)
        .with_policy(Policy::Auto)
        .with_preemption(preemption)
        .with_reservation_horizon(64);
    Interconnect::new(cfg).unwrap()
}

fn dedupe_sources(reqs: Vec<ConnectionRequest>) -> Vec<ConnectionRequest> {
    let mut seen = std::collections::HashSet::new();
    reqs.into_iter().filter(|r| seen.insert((r.src_fiber, r.src_wavelength))).collect()
}

fn cells_of(ev: &SlotEvents) -> Vec<ConnectionRequest> {
    dedupe_sources(
        ev.cells
            .iter()
            .map(|&(sf, sw, df, dur)| ConnectionRequest::burst(sf, sw, df, dur))
            .collect(),
    )
}

fn reservation_of(
    now: u64,
    &(sf, sw, df, lead, dur): &(usize, usize, usize, u64, u32),
) -> ReservationRequest {
    ReservationRequest {
        src_fiber: sf,
        src_wavelength: sw,
        dst_fiber: df,
        start_slot: now + lead,
        duration: dur,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The `_checked` admission twin (which re-certifies the entire ledger
    /// from scratch after every admission) grants the same ids, returns
    /// the same errors, and drives the fabric to the same per-slot results
    /// as the plain path — i.e. the fast path never admits anything the
    /// certificate would reject.
    #[test]
    fn checked_admission_is_bit_identical(s in schedule()) {
        let mut plain = build(&s);
        let mut checked = build(&s);
        for ev in &s.slots {
            let now = plain.slot();
            prop_assert_eq!(now, checked.slot());
            for r in &ev.reservations {
                let req = reservation_of(now, r);
                let a = plain.reserve(req);
                let b = checked.reserve_checked(req);
                prop_assert_eq!(&a, &b, "admission diverged for {:?}: plain {:?} vs checked {:?}", req, a, b);
            }
            for &c in &ev.cancels {
                let pending = plain.reservations().pending();
                if pending.is_empty() {
                    continue;
                }
                let id = pending[c % pending.len()].id;
                prop_assert_eq!(plain.cancel_reservation(id), checked.cancel_reservation(id));
            }
            let cells = cells_of(ev);
            let ra = plain.advance_slot(&cells).unwrap();
            let rb = checked.advance_slot(&cells).unwrap();
            prop_assert_eq!(&ra, &rb);
        }
    }

    /// With holds active, no slot ever grants beyond the k·d-feasible
    /// channel set: the crossbar stays physically valid under the
    /// conversion graph, every grant's output wavelength is d-reachable
    /// from its source wavelength, and per-fiber occupancy (carry-over
    /// actives plus this slot's cell and reservation grants) never
    /// exceeds k.
    #[test]
    fn grants_stay_k_d_feasible_with_holds_active(s in schedule()) {
        let conv = Conversion::circular(s.k, s.e, s.f).unwrap();
        let mut ic = build(&s);
        let (mut granted, mut completed) = (0u64, 0u64);
        for ev in &s.slots {
            let now = ic.slot();
            for r in &ev.reservations {
                // Admission outcome is irrelevant here; feasibility is a
                // property of whatever the slot actually grants.
                let _ = ic.reserve_checked(reservation_of(now, r));
            }
            let cells = cells_of(ev);
            let result = ic.advance_slot(&cells).unwrap();
            ic.crossbar().validate(&conv).unwrap();
            for g in &result.grants {
                prop_assert!(
                    conv.converts(g.request.src_wavelength, g.output_wavelength),
                    "cell grant outside conversion reach"
                );
            }
            for g in &result.reservation_grants {
                prop_assert!(
                    conv.converts(g.grant.request.src_wavelength, g.grant.output_wavelength),
                    "reservation grant outside conversion reach"
                );
            }
            granted += (result.grants.len() + result.reservation_grants.len()) as u64;
            completed += result.completed as u64;
            prop_assert_eq!(ic.active_connections() as u64, granted - completed);
            for fiber in 0..s.n {
                let occupied =
                    (0..s.k).filter(|&ch| ic.crossbar().driver(fiber, ch).is_some()).count();
                prop_assert!(occupied <= s.k, "fiber {} over capacity", fiber);
            }
        }
    }

    /// Ledger lifecycle: every admitted hold resolves exactly once — as a
    /// grant or expiry at precisely its start slot — unless cancelled
    /// first, in which case it never resolves at all. Denied admissions
    /// never surface anywhere.
    #[test]
    fn every_hold_resolves_exactly_once(s in schedule()) {
        let mut ic = build(&s);
        let mut admitted: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut cancelled: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut resolved: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for ev in &s.slots {
            let now = ic.slot();
            for r in &ev.reservations {
                let req = reservation_of(now, r);
                if let Ok(id) = ic.reserve(req) {
                    prop_assert!(admitted.insert(id, req.start_slot).is_none(), "id reused");
                }
            }
            for &c in &ev.cancels {
                let pending = ic.reservations().pending();
                if pending.is_empty() {
                    continue;
                }
                let id = pending[c % pending.len()].id;
                prop_assert!(ic.cancel_reservation(id));
                prop_assert!(cancelled.insert(id), "cancel of an already-cancelled id");
            }
            let result = ic.advance_slot(&cells_of(ev)).unwrap();
            let due: Vec<u64> = result
                .reservation_grants
                .iter()
                .map(|g| g.reservation)
                .chain(result.reservation_expired.iter().map(|e| e.reservation))
                .collect();
            for id in due {
                prop_assert!(resolved.insert(id), "hold {} resolved twice", id);
                prop_assert!(!cancelled.contains(&id), "cancelled hold {} resolved", id);
                let start = admitted.get(&id).copied();
                prop_assert_eq!(start, Some(now), "hold {} resolved off its start slot", id);
            }
        }
        // Whatever is still pending was admitted, not cancelled, not
        // resolved, and starts in the future.
        for r in ic.reservations().pending() {
            prop_assert!(admitted.contains_key(&r.id));
            prop_assert!(!cancelled.contains(&r.id) && !resolved.contains(&r.id));
            prop_assert!(r.request.start_slot >= ic.slot());
        }
    }
}
