//! Worker-thread determinism: scheduling the fibers of one interconnect on
//! 1 vs 8 worker threads must be observationally identical, slot for slot.
//!
//! The distributed step partitions output fibers across threads, each with
//! its own [`ScratchArena`]; since fibers never share state inside a slot,
//! the thread count can only change *when* a fiber is scheduled, never
//! *what* it computes. These tests drive two interconnects through a long
//! deterministic request schedule (multi-slot bursts included, so held
//! connections interact with later slots) and compare every `SlotResult`
//! and every per-fiber occupancy mask bit for bit.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wdm_core::Conversion;
use wdm_interconnect::{ConnectionRequest, HoldPolicy, Interconnect, InterconnectConfig};

/// Deterministic xorshift64* request generator (no dependency on `rand`'s
/// distribution code, so the schedule is stable by construction).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn slot_requests(rng: &mut Rng, n: usize, k: usize) -> Vec<ConnectionRequest> {
    let mut requests = Vec::new();
    for src in 0..n {
        for w in 0..k {
            let r = rng.next();
            if r % 10 < 7 {
                let dst = (r >> 8) as usize % n;
                let duration = 1 + (r >> 24) as u32 % 4;
                requests.push(ConnectionRequest::burst(src, w, dst, duration));
            }
        }
    }
    requests
}

fn run_lockstep(conv: Conversion, hold: HoldPolicy, slots: usize) {
    let n = 6;
    let k = conv.k();
    let mk = |threads: usize| {
        let config =
            InterconnectConfig::packet_switch(n, conv).with_hold(hold).with_threads(threads);
        Interconnect::new(config).unwrap()
    };
    let mut single = mk(1);
    let mut eight = mk(8);
    let mut rng = Rng(0xD17E_0001);

    for slot in 0..slots {
        let requests = slot_requests(&mut rng, n, k);
        let a = single.advance_slot(&requests).unwrap();
        let b = eight.advance_slot(&requests).unwrap();
        assert_eq!(a, b, "slot {slot}: SlotResult diverged between 1 and 8 threads");
        for fiber in 0..n {
            assert_eq!(
                single.occupied_mask(fiber),
                eight.occupied_mask(fiber),
                "slot {slot}: occupancy of fiber {fiber} diverged"
            );
        }
        assert_eq!(single.active_connections(), eight.active_connections(), "slot {slot}");
    }
}

#[test]
fn thread_count_is_invisible_non_circular() {
    run_lockstep(Conversion::symmetric_non_circular(10, 3).unwrap(), HoldPolicy::NonDisturb, 64);
}

#[test]
fn thread_count_is_invisible_circular() {
    run_lockstep(Conversion::symmetric_circular(10, 3).unwrap(), HoldPolicy::NonDisturb, 64);
}

#[test]
fn thread_count_is_invisible_full_range() {
    run_lockstep(Conversion::full(8).unwrap(), HoldPolicy::NonDisturb, 64);
}
