//! Warm-start equivalence at the interconnect level.
//!
//! The per-fiber schedulers repair the previous slot's matching on
//! consecutive [`Interconnect::advance_slot`] calls. That must be invisible
//! in everything the paper measures:
//!
//! * On single-slot packet traffic — where every slot presents the same
//!   instance to a warm and a pinned-cold interconnect — the per-slot grant
//!   and loss *cardinalities* are identical (the channel assignment may
//!   differ; repair preserves maximality, not the assignment vector).
//! * With multi-slot holds, advance reservations, and both preemption
//!   policies in play, a warm run is bit-for-bit deterministic: replaying
//!   the same request schedule reproduces every `SlotResult` and every
//!   occupancy mask. Debug builds additionally certify every repaired slot
//!   maximum via the scheduler's built-in certificate.
//! * [`Interconnect::reset_warm`] really pins the matching layer cold, and
//!   [`Interconnect::warm_stats`] accounts for every per-fiber slot.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use wdm_core::Conversion;
use wdm_interconnect::{
    ConnectionRequest, HoldPolicy, Interconnect, InterconnectConfig, PreemptionPolicy,
    ReservationRequest,
};

/// Deterministic xorshift64* generator (same shape as `determinism.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Coherent single-slot packet traffic: per input channel, a sticky flow
/// that keeps emitting toward a fixed destination and occasionally
/// retargets or pauses. Slot-to-slot the request multiset barely changes —
/// the regime the repair path is built for.
struct CoherentFlows {
    n: usize,
    k: usize,
    dst: Vec<Option<usize>>,
}

impl CoherentFlows {
    fn new(n: usize, k: usize) -> CoherentFlows {
        CoherentFlows { n, k, dst: vec![None; n * k] }
    }

    fn slot(&mut self, rng: &mut Rng, duration: u32) -> Vec<ConnectionRequest> {
        let mut requests = Vec::new();
        for src in 0..self.n {
            for w in 0..self.k {
                let cell = &mut self.dst[src * self.k + w];
                match *cell {
                    Some(d) => {
                        if rng.chance(5) {
                            *cell = None; // flow departs
                        } else {
                            requests.push(ConnectionRequest::burst(src, w, d, duration));
                        }
                    }
                    None => {
                        if rng.chance(10) {
                            let d = (rng.next() as usize) % self.n;
                            *cell = Some(d);
                            requests.push(ConnectionRequest::burst(src, w, d, duration));
                        }
                    }
                }
            }
        }
        requests
    }
}

/// On packet (duration-1) traffic every slot is the same instance for a
/// warm and a pinned-cold interconnect, so the grant/loss cardinalities
/// must agree slot for slot — and the warm one must actually be repairing.
#[test]
fn warm_matches_cold_cardinality_on_coherent_packets() {
    let (n, k, slots) = (6, 16, 256);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    for policy in [PreemptionPolicy::ReservedFirst, PreemptionPolicy::Compete] {
        let mk = || {
            Interconnect::new(InterconnectConfig::packet_switch(n, conv).with_preemption(policy))
                .unwrap()
        };
        let mut warm = mk();
        let mut cold = mk();
        let mut flows = CoherentFlows::new(n, k);
        let mut rng = Rng(0xBEE5_0001);
        for slot in 0..slots {
            let requests = flows.slot(&mut rng, 1);
            cold.reset_warm();
            let a = warm.advance_slot(&requests).unwrap();
            let b = cold.advance_slot(&requests).unwrap();
            assert_eq!(
                a.grants.len(),
                b.grants.len(),
                "slot {slot} ({policy:?}): warm grant count != cold grant count"
            );
            assert_eq!(
                a.contention_losses(),
                b.contention_losses(),
                "slot {slot} ({policy:?}): loss count diverged"
            );
        }
        let w = warm.warm_stats();
        assert_eq!(
            w.repaired + w.fallback + w.cold,
            (slots * n) as u64,
            "every per-fiber slot lands in exactly one warm bucket"
        );
        assert!(w.repair_rate() > 0.8, "coherent packets should repair most slots, got {w:?}");
        assert_eq!(cold.warm_stats().repaired, 0, "pinned-cold interconnect repaired a slot");
    }
}

/// Drives one interconnect through a mixed workload — coherent multi-slot
/// bursts plus periodic advance reservations — and returns the full
/// observable trace.
fn mixed_trace(
    hold: HoldPolicy,
    preemption: PreemptionPolicy,
    seed: u64,
) -> (Vec<String>, wdm_core::WarmStats) {
    let (n, k, slots) = (5, 12, 192);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let mut ic = Interconnect::new(
        InterconnectConfig::packet_switch(n, conv)
            .with_hold(hold)
            .with_preemption(preemption)
            .with_reservation_horizon(64),
    )
    .unwrap();
    let mut flows = CoherentFlows::new(n, k);
    let mut rng = Rng(seed);
    let mut trace = Vec::new();
    for slot in 0..slots as u64 {
        if slot % 7 == 0 {
            let r = rng.next();
            let req = ReservationRequest {
                src_fiber: (r % n as u64) as usize,
                src_wavelength: ((r >> 8) % k as u64) as usize,
                dst_fiber: ((r >> 16) % n as u64) as usize,
                start_slot: slot + 2 + (r >> 24) % 8,
                duration: 1 + ((r >> 32) % 4) as u32,
            };
            // Admission can legitimately fail (horizon/conflict); the
            // decision itself must be deterministic, so record it.
            trace.push(format!("reserve {:?}", ic.reserve(req).is_ok()));
        }
        let duration = 1 + (rng.next() % 3) as u32;
        let requests = flows.slot(&mut rng, duration);
        let result = ic.advance_slot(&requests).unwrap();
        trace.push(format!("slot {slot}: {result:?}"));
        for fiber in 0..n {
            trace.push(format!("mask {fiber}: {:?}", ic.occupied_mask(fiber)));
        }
    }
    (trace, ic.warm_stats())
}

/// Bit-identical replay: the warm path is deterministic under every
/// hold/preemption combination with reservations active, and the repair
/// path actually runs. (In debug builds every repaired slot is also
/// certified maximum by the scheduler's internal certificate.)
#[test]
fn warm_runs_are_bit_identical_across_policy_matrix() {
    for hold in [HoldPolicy::NonDisturb, HoldPolicy::Rearrange] {
        for preemption in [PreemptionPolicy::ReservedFirst, PreemptionPolicy::Compete] {
            let (trace_a, warm_a) = mixed_trace(hold, preemption, 0xC0FF_EE01);
            let (trace_b, warm_b) = mixed_trace(hold, preemption, 0xC0FF_EE01);
            assert_eq!(trace_a, trace_b, "{hold:?}/{preemption:?}: warm replay diverged");
            assert_eq!(warm_a, warm_b, "{hold:?}/{preemption:?}: warm counters diverged");
            // Rearrange never enters the matching scheduler (it re-places
            // everything through `rearrange_fiber`), so only the NonDisturb
            // rows exercise — and must exercise — the repair path.
            if hold == HoldPolicy::NonDisturb {
                assert!(
                    warm_a.repaired > 0,
                    "{hold:?}/{preemption:?}: mixed workload never exercised repair: {warm_a:?}"
                );
            } else {
                assert_eq!(warm_a, wdm_core::WarmStats::default());
            }
        }
    }
}

/// `reset_warm` zeroes the counters and the next slot runs cold again.
#[test]
fn reset_warm_restarts_the_accounting() {
    let (n, k) = (3, 8);
    let conv = Conversion::symmetric_circular(k, 3).unwrap();
    let mut ic = Interconnect::new(InterconnectConfig::packet_switch(n, conv)).unwrap();
    let mut flows = CoherentFlows::new(n, k);
    let mut rng = Rng(0xAB);
    for _ in 0..10 {
        let requests = flows.slot(&mut rng, 1);
        let _ = ic.advance_slot(&requests).unwrap();
    }
    assert!(ic.warm_stats().slots() > 0);
    ic.reset_warm();
    assert_eq!(ic.warm_stats(), wdm_core::WarmStats::default());
    let requests = flows.slot(&mut rng, 1);
    let _ = ic.advance_slot(&requests).unwrap();
    let w = ic.warm_stats();
    assert_eq!(w.repaired, 0, "first slot after reset must run cold");
    assert_eq!(w.cold, n as u64);
}
