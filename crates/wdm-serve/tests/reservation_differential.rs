//! Differential battery: the serving path's reservation admission and
//! per-slot outcomes are bit-identical to the offline §V model. One
//! [`SlotEngine`] and one bare [`Interconnect`] configured identically are
//! driven by the same seeded random schedule of cell arrivals, reservation
//! arrivals, cancellations, and (via collisions) timeout expiries; every
//! admission verdict, grant, deny, and expiry must match exactly.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use wdm_core::{Conversion, Error, Policy};
use wdm_interconnect::{
    ConnectionRequest, Interconnect, InterconnectConfig, PreemptionPolicy, RejectReason,
    ReservationRequest,
};
use wdm_serve::engine::{EngineConfig, Reply, SlotEngine, Verdict};
use wdm_serve::protocol::{DenyReason, ReserveRequest, SubmitRequest};

/// The client connection id every request arrives on (one client).
const CONN: u64 = 7;
const HORIZON: u64 = 64;

#[derive(Debug, Clone)]
struct SlotEvents {
    /// (src_fiber, src_wavelength, dst_fiber, duration).
    cells: Vec<(u32, u32, u32, u32)>,
    /// (src_fiber, src_wavelength, dst_fiber, lead, duration).
    reservations: Vec<(u32, u32, u32, u32, u32)>,
    /// Indexes into the currently-outstanding reservation ids (mod len).
    releases: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Schedule {
    n: u32,
    k: u32,
    e: usize,
    f: usize,
    compete: bool,
    slots: Vec<SlotEvents>,
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (2u32..5, 2u32..7).prop_flat_map(|(n, k)| {
        let ku = k as usize;
        let reach = (0..ku, 0..ku).prop_filter("degree <= k", move |(e, f)| e + f < ku);
        let cells =
            proptest::collection::vec((0..n, 0..k, 0..n, 1u32..4), 0..(n * k).min(8) as usize);
        let reservations = proptest::collection::vec((0..n, 0..k, 0..n, 0u32..6, 1u32..5), 0..3);
        let releases = proptest::collection::vec(0usize..16, 0..2);
        let slot = (cells, reservations, releases).prop_map(|(cells, reservations, releases)| {
            SlotEvents { cells, reservations, releases }
        });
        (Just(n), Just(k), reach, proptest::bool::ANY, proptest::collection::vec(slot, 1..16))
            .prop_map(|(n, k, (e, f), compete, slots)| Schedule { n, k, e, f, compete, slots })
    })
}

/// One admission verdict, as seen by both sides, must agree.
fn assert_same_admission(reply: &Reply, offline: &Result<u64, Error>, start_slot: u64) {
    match (&reply.verdict, offline) {
        (Verdict::Reserved { reservation, start_slot: s }, Ok(id)) => {
            assert_eq!(reservation, id, "ledger id diverged");
            assert_eq!(*s, start_slot);
        }
        (
            Verdict::Denied { reason: DenyReason::CapacityExhausted, .. },
            Err(Error::ReservationCapacityExhausted { .. }),
        )
        | (
            Verdict::Denied { reason: DenyReason::HorizonExceeded, .. },
            Err(Error::ReservationHorizonExceeded { .. }),
        ) => {}
        (verdict, offline) => {
            panic!("admission diverged: serve {verdict:?} vs offline {offline:?}")
        }
    }
}

fn reject_reason(reason: RejectReason) -> DenyReason {
    match reason {
        RejectReason::SourceBusy => DenyReason::SourceBusy,
        RejectReason::OutputContention => DenyReason::OutputContention,
    }
}

fn run_differential(s: &Schedule) {
    let conv = Conversion::circular(s.k as usize, s.e, s.f).unwrap();
    let preemption =
        if s.compete { PreemptionPolicy::Compete } else { PreemptionPolicy::ReservedFirst };
    let mut serve = SlotEngine::new(
        EngineConfig::new(s.n as usize, conv, Policy::Auto)
            .with_reservation_horizon(HORIZON)
            .with_preemption(preemption)
            .with_queue_capacity((s.n * s.k) as usize),
    )
    .unwrap();
    let mut offline = Interconnect::new(
        InterconnectConfig::packet_switch(s.n as usize, conv)
            .with_policy(Policy::Auto)
            .with_reservation_horizon(HORIZON)
            .with_preemption(preemption),
    )
    .unwrap();

    // Ledger id → the client id used on the serve side, for outstanding
    // (admitted, unresolved) reservations.
    let mut outstanding: Vec<(u64, u64)> = Vec::new();
    let mut next_client_id = 0u64;
    let mut replies = Vec::new();

    for ev in &s.slots {
        assert_eq!(serve.slot(), offline.slot());
        let now = offline.slot();

        for &(sf, sw, df, lead, dur) in &ev.reservations {
            let client_id = next_client_id;
            next_client_id += 1;
            let reply = serve.reserve(
                CONN,
                ReserveRequest {
                    id: client_id,
                    src_fiber: sf,
                    src_wavelength: sw,
                    dst_fiber: df,
                    start_in: lead,
                    duration: dur,
                },
            );
            let start_slot = now + u64::from(lead);
            let verdict = offline.reserve(ReservationRequest {
                src_fiber: sf as usize,
                src_wavelength: sw as usize,
                dst_fiber: df as usize,
                start_slot,
                duration: dur,
            });
            assert_same_admission(&reply, &verdict, start_slot);
            if let Ok(rid) = verdict {
                outstanding.push((rid, client_id));
            }
        }

        for &r in &ev.releases {
            if outstanding.is_empty() {
                continue;
            }
            let (rid, _) = outstanding[r % outstanding.len()];
            let a = serve.release(CONN, rid);
            let b = offline.cancel_reservation(rid);
            assert_eq!(a, b, "release diverged for ledger id {rid}");
            assert!(a, "an outstanding reservation is always cancellable");
            outstanding.retain(|&(id, _)| id != rid);
        }

        // Submit cells in shard-drain order (stable by destination fiber)
        // so the offline twin sees the exact batch the serve engine will
        // schedule. One request per source channel, like the generators.
        let mut cells: Vec<(u32, u32, u32, u32)> = {
            let mut seen = std::collections::HashSet::new();
            ev.cells.iter().copied().filter(|&(sf, sw, _, _)| seen.insert((sf, sw))).collect()
        };
        cells.sort_by_key(|&(_, _, df, _)| df);
        let mut batch = Vec::new();
        for &(sf, sw, df, dur) in &cells {
            let client_id = next_client_id;
            next_client_id += 1;
            let immediate = serve.submit(
                CONN,
                SubmitRequest {
                    id: client_id,
                    src_fiber: sf,
                    src_wavelength: sw,
                    dst_fiber: df,
                    duration: dur,
                },
            );
            assert!(immediate.is_none(), "in-range cells under queue capacity always enqueue");
            batch.push(ConnectionRequest {
                src_fiber: sf as usize,
                src_wavelength: sw as usize,
                dst_fiber: df as usize,
                duration: dur,
            });
        }

        replies.clear();
        let summary = serve.run_slot(&mut replies);
        let result = offline.advance_slot(&batch).unwrap();

        assert_eq!(summary.admitted, batch.len());
        assert_eq!(summary.grants, result.grants.len());
        assert_eq!(summary.denies, result.rejections.len());
        assert_eq!(summary.completed, result.completed);
        assert_eq!(summary.reservation_grants, result.reservation_grants.len());
        assert_eq!(summary.reservation_expiries, result.reservation_expired.len());

        // The reply stream mirrors the offline result piecewise, in order:
        // reservation grants, cell grants, cell denies, expiries.
        let mut stream = replies.iter();
        for g in &result.reservation_grants {
            let reply = stream.next().unwrap();
            let pos = outstanding.iter().position(|&(rid, _)| rid == g.reservation).unwrap();
            let (_, client_id) = outstanding.swap_remove(pos);
            assert_eq!(reply.id, client_id);
            let Verdict::Granted { output_wavelength, .. } = reply.verdict else {
                panic!("reservation activation must be a grant: {reply:?}")
            };
            assert_eq!(output_wavelength as usize, g.grant.output_wavelength);
        }
        for g in &result.grants {
            let reply = stream.next().unwrap();
            let Verdict::Granted { output_wavelength, .. } = reply.verdict else {
                panic!("cell grant expected: {reply:?}")
            };
            assert_eq!(output_wavelength as usize, g.output_wavelength);
        }
        for r in &result.rejections {
            let reply = stream.next().unwrap();
            let Verdict::Denied { reason, retry_after_slots: 1 } = reply.verdict else {
                panic!("cell deny expected: {reply:?}")
            };
            assert_eq!(reason, reject_reason(r.reason));
        }
        for x in &result.reservation_expired {
            let reply = stream.next().unwrap();
            let pos = outstanding.iter().position(|&(rid, _)| rid == x.reservation).unwrap();
            let (_, client_id) = outstanding.swap_remove(pos);
            assert_eq!(reply.id, client_id);
            let Verdict::Denied { reason, retry_after_slots: 0 } = reply.verdict else {
                panic!("expiry must be a terminal deny: {reply:?}")
            };
            assert_eq!(reason, reject_reason(x.rejection.reason));
        }
        assert!(stream.next().is_none(), "no unexplained replies");
    }
    // Nothing leaks: what the shadow map still holds is exactly what the
    // serve engine still holds.
    assert_eq!(outstanding.len(), serve.pending_reservations());
    assert_eq!(outstanding.len(), offline.reservations().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serve_path_matches_offline_model(s in schedule()) {
        run_differential(&s);
    }
}
