//! The decode-error matrix: every [`ProtocolError`] variant is reachable
//! from hostile input, and each maps to the *right* variant — a corrupt
//! length prefix must not masquerade as an I/O error, a truncated payload
//! must not read past the frame, and the 1 MiB frame cap must reject at
//! exactly cap+1 while cap-sized and cap−1-sized frames are still read in
//! full and judged on their contents.
//!
//! The transport-level variants the pure decoder cannot produce
//! (`VersionMismatch`, `ServerError`, `UnexpectedFrame`) are driven through
//! [`Client::connect`] against a scripted loopback listener; `Engine` comes
//! from the engine-config conversion.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::Read;
use std::net::TcpListener;

use wdm_serve::protocol::{
    read_frame, write_frame, DenyReason, Frame, ProtocolError, SubmitRequest, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use wdm_serve::Client;

/// Encodes one frame to wire bytes (length prefix included).
fn wire(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame).unwrap();
    buf
}

/// Decodes wire bytes, expecting an error.
fn decode_err(bytes: &[u8]) -> ProtocolError {
    match read_frame(&mut &bytes[..]) {
        Ok(frame) => panic!("expected a decode error, got {frame:?}"),
        Err(e) => e,
    }
}

/// A reader that fails with a non-EOF transport error on first read.
#[derive(Debug)]
struct FailingReader;

impl Read for FailingReader {
    fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
        Err(std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected"))
    }
}

#[test]
fn transport_failure_is_io_not_disconnected() {
    match read_frame(&mut FailingReader) {
        Err(ProtocolError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset);
        }
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn eof_anywhere_is_disconnected() {
    // Before any byte, mid-length-prefix, and mid-payload: all Disconnected.
    let full = wire(&Frame::SlotComplete { slot: 9 });
    for cut in [0, 2, full.len() - 1] {
        match read_frame(&mut &full[..cut]) {
            Err(ProtocolError::Disconnected) => {}
            other => panic!("cut at {cut}: expected Disconnected, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_reports_received_bytes() {
    let mut bytes = wire(&Frame::Hello { version: PROTOCOL_VERSION });
    bytes[5] = 0xAA; // first magic byte, just past prefix + tag
    match decode_err(&bytes) {
        ProtocolError::BadMagic { got } => assert_ne!(got, wdm_serve::protocol::MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn unknown_tag_reports_the_tag() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.push(0xF3);
    bytes.push(0);
    match decode_err(&bytes) {
        ProtocolError::UnknownTag { tag: 0xF3 } => {}
        other => panic!("expected UnknownTag, got {other:?}"),
    }
}

/// A length prefix of `len` followed by a SHUTDOWN tag and zero padding, so
/// the payload must be read in full and then rejected on structure.
fn padded_shutdown(len: u32) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + len as usize);
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.push(7); // TAG_SHUTDOWN
    bytes.resize(4 + len as usize, 0);
    bytes
}

#[test]
fn frame_cap_rejects_at_exactly_cap_plus_one() {
    // cap+1: rejected from the prefix alone — no payload bytes are even
    // present, yet the error is FrameTooLarge, not a read failure, which is
    // what proves the cap check runs before allocation.
    let prefix_only = (MAX_FRAME_LEN + 1).to_le_bytes();
    match read_frame(&mut &prefix_only[..]) {
        Err(ProtocolError::FrameTooLarge { len }) => assert_eq!(len, MAX_FRAME_LEN + 1),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // cap and cap−1: the length passes the cap check, the payload is read
    // to the last byte, and the verdict comes from frame structure (a
    // SHUTDOWN payload must be exactly one byte).
    for len in [MAX_FRAME_LEN, MAX_FRAME_LEN - 1] {
        let bytes = padded_shutdown(len);
        match read_frame(&mut &bytes[..]) {
            Err(ProtocolError::Malformed { frame: "SHUTDOWN" }) => {}
            other => panic!("len {len}: expected Malformed SHUTDOWN, got {other:?}"),
        }
    }
}

#[test]
fn near_cap_valid_submit_still_decodes() {
    // A genuinely valid frame close to the cap: 43,000 requests is a
    // 1,032,005-byte payload, within 2% of MAX_FRAME_LEN.
    let requests: Vec<SubmitRequest> = (0..43_000u64)
        .map(|id| SubmitRequest {
            id,
            src_fiber: (id % 7) as u32,
            src_wavelength: (id % 3) as u32,
            dst_fiber: (id % 5) as u32,
            duration: 1 + (id % 4) as u32,
        })
        .collect();
    let bytes = wire(&Frame::Submit { requests: requests.clone() });
    assert!(bytes.len() > (MAX_FRAME_LEN as usize * 98) / 100);
    match read_frame(&mut &bytes[..]) {
        Ok(Frame::Submit { requests: decoded }) => assert_eq!(decoded, requests),
        other => panic!("expected the SUBMIT back, got {other:?}"),
    }
}

#[test]
fn zero_length_frame_is_malformed() {
    let bytes = 0u32.to_le_bytes();
    match read_frame(&mut &bytes[..]) {
        Err(ProtocolError::Malformed { frame: "empty" }) => {}
        other => panic!("expected Malformed empty, got {other:?}"),
    }
}

#[test]
fn truncated_payloads_are_malformed_per_frame() {
    // Shorten each frame's payload by one byte (keeping the prefix honest)
    // and check the error names the right frame.
    let cases: Vec<(Frame, &str)> = vec![
        (Frame::Hello { version: PROTOCOL_VERSION }, "HELLO"),
        (
            Frame::HelloAck { version: PROTOCOL_VERSION, n: 4, k: 8, policy: "bfa".to_owned() },
            "HELLO_ACK",
        ),
        (
            Frame::Submit {
                requests: vec![SubmitRequest {
                    id: 1,
                    src_fiber: 0,
                    src_wavelength: 0,
                    dst_fiber: 0,
                    duration: 1,
                }],
            },
            "SUBMIT",
        ),
        (Frame::Grant { slot: 1, seq: 0, id: 2, output_wavelength: 3 }, "GRANT"),
        (
            Frame::Deny { slot: 1, id: 2, reason: DenyReason::SourceBusy, retry_after_slots: 0 },
            "DENY",
        ),
        (Frame::SlotComplete { slot: 1 }, "SLOT_COMPLETE"),
        (Frame::Error { code: 3, message: "m".to_owned() }, "ERROR"),
    ];
    for (frame, name) in cases {
        let mut bytes = wire(&frame);
        bytes.truncate(bytes.len() - 1);
        let short = u32::try_from(bytes.len() - 4).unwrap();
        bytes[..4].copy_from_slice(&short.to_le_bytes());
        match decode_err(&bytes) {
            ProtocolError::Malformed { frame } => assert_eq!(frame, name),
            other => panic!("{name}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn trailing_bytes_are_malformed() {
    // A structurally complete frame followed by junk inside the same
    // payload: `finish()` must reject, not silently drop the tail.
    for (frame, name) in [
        (Frame::Shutdown, "SHUTDOWN"),
        (Frame::Grant { slot: 1, seq: 0, id: 2, output_wavelength: 3 }, "GRANT"),
        (Frame::Hello { version: PROTOCOL_VERSION }, "HELLO"),
    ] {
        let mut bytes = wire(&frame);
        bytes.push(0xEE);
        let long = u32::try_from(bytes.len() - 4).unwrap();
        bytes[..4].copy_from_slice(&long.to_le_bytes());
        match decode_err(&bytes) {
            ProtocolError::Malformed { frame } => assert_eq!(frame, name),
            other => panic!("{name}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn non_utf8_policy_is_malformed() {
    let mut bytes = Vec::new();
    bytes.push(2); // TAG_HELLO_ACK
    bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    bytes.extend_from_slice(&4u32.to_le_bytes()); // n
    bytes.extend_from_slice(&8u32.to_le_bytes()); // k
    bytes.push(2); // policy length
    bytes.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
    let mut framed = Vec::new();
    framed.extend_from_slice(&u32::try_from(bytes.len()).unwrap().to_le_bytes());
    framed.extend_from_slice(&bytes);
    match decode_err(&framed) {
        ProtocolError::Malformed { frame: "HELLO_ACK" } => {}
        other => panic!("expected Malformed HELLO_ACK, got {other:?}"),
    }
}

#[test]
fn out_of_domain_deny_reason_is_bad_field() {
    for bad in [0u8, 7, 0xFF] {
        let mut bytes = wire(&Frame::Deny {
            slot: 1,
            id: 2,
            reason: DenyReason::QueueFull,
            retry_after_slots: 0,
        });
        bytes[4 + 1 + 8 + 8] = bad; // prefix + tag + slot + id → reason byte
        match decode_err(&bytes) {
            ProtocolError::BadField { frame: "DENY", field: "reason", value } => {
                assert_eq!(value, u64::from(bad));
            }
            other => panic!("reason {bad}: expected BadField, got {other:?}"),
        }
    }
}

#[test]
fn absurd_submit_count_is_bad_field_before_allocation() {
    // count = u32::MAX would claim a 96 GiB body: rejected from the count
    // field alone, inside a small (9-byte) payload.
    let mut payload = Vec::new();
    payload.push(3); // TAG_SUBMIT
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    payload.extend_from_slice(&[0, 0, 0, 0]); // a few stray body bytes
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
    bytes.extend_from_slice(&payload);
    match decode_err(&bytes) {
        ProtocolError::BadField { frame: "SUBMIT", field: "count", value } => {
            assert_eq!(value, u64::from(u32::MAX));
        }
        other => panic!("expected BadField count, got {other:?}"),
    }
}

/// Spawns a loopback listener that answers the first connection's HELLO
/// with the scripted reply frame, then runs `Client::connect` against it.
fn connect_against(reply: Frame) -> Result<Client, ProtocolError> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_frame(&mut stream).unwrap();
        assert!(matches!(hello, Frame::Hello { version: PROTOCOL_VERSION }));
        write_frame(&mut stream, &reply).unwrap();
        use std::io::Write as _;
        stream.flush().unwrap();
    });
    let result = Client::connect(&addr.to_string());
    server.join().unwrap();
    result
}

#[test]
fn skewed_handshake_version_is_version_mismatch() {
    let reply =
        Frame::HelloAck { version: PROTOCOL_VERSION + 1, n: 4, k: 8, policy: "bfa".to_owned() };
    match connect_against(reply) {
        Err(ProtocolError::VersionMismatch { ours, theirs }) => {
            assert_eq!(ours, PROTOCOL_VERSION);
            assert_eq!(theirs, PROTOCOL_VERSION + 1);
        }
        Ok(_) => panic!("handshake should not succeed across versions"),
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn error_reply_to_hello_is_server_error() {
    let reply = Frame::Error { code: 2, message: "go away".to_owned() };
    match connect_against(reply) {
        Err(ProtocolError::ServerError { code: 2, message }) => assert_eq!(message, "go away"),
        Ok(_) => panic!("handshake should not succeed on ERROR"),
        Err(other) => panic!("expected ServerError, got {other:?}"),
    }
}

#[test]
fn wrong_frame_during_handshake_is_unexpected_frame() {
    let reply = Frame::Grant { slot: 0, seq: 0, id: 0, output_wavelength: 0 };
    match connect_against(reply) {
        Err(ProtocolError::UnexpectedFrame { expected, .. }) => assert_eq!(expected, "HELLO_ACK"),
        Ok(_) => panic!("handshake should not succeed on GRANT"),
        Err(other) => panic!("expected UnexpectedFrame, got {other:?}"),
    }
}

#[test]
fn engine_rejection_wraps_the_core_error() {
    let core_err = wdm_core::Conversion::symmetric_non_circular(4, 9).unwrap_err();
    let err = ProtocolError::from(core_err.clone());
    match &err {
        ProtocolError::Engine(inner) => assert_eq!(*inner, core_err),
        other => panic!("expected Engine, got {other:?}"),
    }
}

#[test]
fn every_variant_displays_without_panicking() {
    let variants: Vec<ProtocolError> = vec![
        ProtocolError::Io(std::io::Error::other("x")),
        ProtocolError::Disconnected,
        ProtocolError::BadMagic { got: 0xDEAD_BEEF },
        ProtocolError::VersionMismatch { ours: 1, theirs: 2 },
        ProtocolError::UnknownTag { tag: 99 },
        ProtocolError::FrameTooLarge { len: MAX_FRAME_LEN + 1 },
        ProtocolError::Malformed { frame: "GRANT" },
        ProtocolError::BadField { frame: "DENY", field: "reason", value: 7 },
        ProtocolError::UnexpectedFrame { got: "GRANT", expected: "HELLO_ACK" },
        ProtocolError::ServerError { code: 3, message: "m".to_owned() },
        ProtocolError::Engine(wdm_core::Error::ZeroWavelengths),
    ];
    for v in variants {
        assert!(!v.to_string().is_empty(), "{v:?} must render");
    }
}
