//! Exhaustive loom models of the daemon's cross-thread protocol.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS=--cfg loom` — run via
//! `cargo xtask loom`. Each model drives the real
//! [`wdm_serve::serve_sync`] primitives — the bounded intake channel, the
//! [`ShardQueues`] admission structure, the [`SlotSequence`], the results
//! channel — through a miniature of the reader → coordinator → results
//! pipeline, inside `loom::model`, which executes it once per distinct
//! sequentially consistent interleaving and asserts in every one:
//!
//! * **no-lost-batch** — every submitted request id is answered exactly
//!   once, even when admission denies it (queue full) and even when a
//!   SHUTDOWN races the submission;
//! * **no-double-grant** — an id never receives two replies (the reply
//!   set is checked for duplicates after the join);
//! * **slot-sequence monotonicity** — the coordinator publishes slots
//!   monotone-dense and the results thread confirms each `SlotDone`
//!   arrived *after* its publication ([`SlotSequence`] asserts both);
//! * **results-written-before-join** — the reply log is read from the
//!   results thread's join value, so any interleaving where results could
//!   be lost at teardown surfaces as a missing reply;
//! * **clean shutdown with in-flight frames** — the drain order from
//!   `serve_sync`'s module docs terminates in every interleaving (a hang
//!   is reported by the shim's deadlock detection).
//!
//! Every test asserts a floor on the interleaving count reported by
//! `loom::model` (the shim's return value), so the exhaustiveness claim in
//! DESIGN.md §12 is itself regression-checked. Keep the models tiny: the
//! shim has no partial-order reduction, so each extra channel operation
//! multiplies the tree.

#![cfg(loom)]

use std::sync::Arc;

use wdm_serve::serve_sync::{self, AdmitRejection, ShardQueues, SlotSequence, StopFlag};

/// A submitted request: (reader id, request id, destination shard).
#[derive(Debug, Clone, Copy)]
struct Submit {
    id: u64,
    shard: usize,
}

/// One reader's intake event: a batch of requests, an advance reservation
/// (admitted immediately, activated at `start_slot`), a release of a
/// pending reservation, or SHUTDOWN.
#[derive(Debug)]
enum InEvent {
    Batch(Vec<Submit>),
    Reserve { id: u64, start_slot: u64 },
    Release { id: u64 },
    Shutdown,
}

/// What the coordinator streams to the results thread.
#[derive(Debug)]
enum OutEvent {
    Reply { id: u64, slot: u64, granted: bool },
    SlotDone { slot: u64 },
}

/// What the results thread hands back through its join: the replies in
/// arrival order, and each reply's position relative to SlotDone events
/// (reply_slot_done\[i\] = slots completed before reply i arrived).
#[derive(Debug, Default)]
struct ResultsLog {
    replies: Vec<(u64, u64, bool)>,
    done_slots: Vec<u64>,
    replies_after_own_slot_done: usize,
}

/// The coordinator's slot step: drain the shard queues into a batch and
/// answer every drained request as granted, publish the slot, notify.
/// Mirrors `SlotEngine::run_slot` + the `Server::run` slot section with
/// the scheduling core stubbed to "grant everything drained".
fn run_slot(
    queues: &mut ShardQueues<Submit>,
    slot: u64,
    seq: &SlotSequence,
    out_tx: &serve_sync::Sender<OutEvent>,
) {
    let mut batch = Vec::new();
    queues.drain_into(|s| batch.push(s));
    for s in &batch {
        out_tx
            .send(OutEvent::Reply { id: s.id, slot, granted: true })
            .expect("results thread lives until the sender side is dropped");
    }
    seq.publish(slot);
    out_tx
        .send(OutEvent::SlotDone { slot })
        .expect("results thread lives until the sender side is dropped");
}

/// The results thread: drains the out channel until disconnect, logging
/// replies and confirming every SlotDone against the shared sequence.
fn results_loop(out_rx: &serve_sync::Receiver<OutEvent>, seq: &SlotSequence) -> ResultsLog {
    let mut log = ResultsLog::default();
    while let Ok(ev) = out_rx.recv() {
        match ev {
            OutEvent::Reply { id, slot, granted } => {
                if log.done_slots.iter().any(|d| *d >= slot) {
                    log.replies_after_own_slot_done += 1;
                }
                log.replies.push((id, slot, granted));
            }
            OutEvent::SlotDone { slot } => {
                // Publish-before-notify in every interleaving.
                seq.confirm(slot);
                // Monotone-dense arrival order on the results side.
                assert_eq!(slot, log.done_slots.len() as u64, "SlotDone out of order");
                log.done_slots.push(slot);
            }
        }
    }
    log
}

/// Checks a finished run: every id in `expected` answered exactly once
/// (no-lost-batch + no-double-grant), replies never arrive after their own
/// slot's completion broadcast, and `slots` SlotDone events arrived.
fn check_log(log: &ResultsLog, expected: &[u64], slots: u64) {
    let mut answered: Vec<u64> = log.replies.iter().map(|(id, _, _)| *id).collect();
    answered.sort_unstable();
    let mut want = expected.to_vec();
    want.sort_unstable();
    assert_eq!(answered, want, "every request answered exactly once");
    assert_eq!(log.replies_after_own_slot_done, 0, "reply arrived after its SlotDone");
    assert_eq!(log.done_slots.len() as u64, slots, "every slot completed exactly once");
}

/// Config A — two readers, one single-request batch each, racing a
/// capacity-1 intake; the coordinator runs one slot per received batch, so
/// slot-sequence monotonicity is proven across *multiple* slots under
/// every arrival and blocked-sender wakeup order. The results stream is
/// validated by draining the out channel on the root thread after the
/// join, which proves the same ordering facts (replies before their
/// SlotDone, monotone-dense slots) for every reader/coordinator
/// interleaving while keeping the tree small enough to exhaust. (Configs C
/// and D explore a concurrently-draining results thread.)
#[test]
fn two_readers_two_slots_sequence_monotone() {
    let interleavings = loom::model(|| {
        let seq = Arc::new(SlotSequence::new());
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(1);
        let (out_tx, out_rx) = serve_sync::bounded::<OutEvent>(8);

        let second_tx = in_tx.clone();
        let readers: Vec<_> = [(1u64, 0usize, in_tx), (2u64, 1usize, second_tx)]
            .into_iter()
            .map(|(id, shard, tx)| {
                loom::thread::spawn(move || {
                    tx.send(InEvent::Batch(vec![Submit { id, shard }]))
                        .expect("coordinator outlives the readers");
                })
            })
            .collect();

        // Coordinator (this thread): one slot per received batch.
        let mut queues: ShardQueues<Submit> = ShardQueues::new(2, 4);
        for slot in 0..2u64 {
            let Ok(InEvent::Batch(batch)) = in_rx.recv() else {
                panic!("each reader sends exactly one batch")
            };
            for s in batch {
                queues.try_admit(s.shard, s).expect("queues sized for the load");
            }
            run_slot(&mut queues, slot, &seq, &out_tx);
        }
        for r in readers {
            r.join().expect("reader exits after its send");
        }
        drop(out_tx);
        let log = results_loop(&out_rx, &seq);
        check_log(&log, &[1, 2], 2);
        assert_eq!(seq.published(), 2);
    });
    eprintln!("loom_serve config A: {interleavings} interleavings");
    assert!(interleavings > 1000, "config A must be non-trivial, got {interleavings}");
}

/// Config B — three readers racing a capacity-1 intake channel: bounded
/// sends block, so every blocked-producer wakeup order (and every arrival
/// order) is explored; one slot answers all three batches. The focus is
/// the hand-off itself, so replies are collected by the coordinator
/// directly — no-lost-batch and no-double-grant must hold for every
/// wakeup order.
#[test]
fn three_readers_contend_bounded_intake() {
    let interleavings = loom::model(|| {
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(1);

        let tx2 = in_tx.clone();
        let tx3 = in_tx.clone();
        let readers: Vec<_> = [(10u64, in_tx), (20u64, tx2), (30u64, tx3)]
            .into_iter()
            .map(|(id, tx)| {
                loom::thread::spawn(move || {
                    tx.send(InEvent::Batch(vec![Submit { id, shard: 0 }]))
                        .expect("coordinator drains before dropping the receiver");
                })
            })
            .collect();

        // Coordinator: admit all batches (whatever their order), then run
        // a single slot over the combined queue.
        let mut queues: ShardQueues<Submit> = ShardQueues::new(1, 4);
        for _ in 0..3 {
            let Ok(InEvent::Batch(batch)) = in_rx.recv() else {
                panic!("each reader sends exactly one batch")
            };
            for s in batch {
                queues.try_admit(s.shard, s).expect("queues sized for the load");
            }
        }
        let mut replies: Vec<u64> = Vec::new();
        queues.drain_into(|s| replies.push(s.id));
        for r in readers {
            r.join().expect("reader exits after its send");
        }
        replies.sort_unstable();
        assert_eq!(replies, vec![10, 20, 30], "every batch admitted exactly once");
    });
    eprintln!("loom_serve config B: {interleavings} interleavings");
    assert!(interleavings > 1000, "config B must be non-trivial, got {interleavings}");
}

/// Config C — SHUTDOWN racing an in-flight SUBMIT from another reader: in
/// every arrival order the batch is still answered before teardown (the
/// drain-order guarantee), the stop flag is raised before the acceptor
/// gate is checked, and teardown completes cleanly.
#[test]
fn shutdown_races_inflight_batch() {
    let interleavings = loom::model(|| {
        let seq = Arc::new(SlotSequence::new());
        let stop = Arc::new(StopFlag::new());
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(2);
        let (out_tx, out_rx) = serve_sync::bounded::<OutEvent>(4);

        let results = {
            let seq = Arc::clone(&seq);
            loom::thread::spawn(move || results_loop(&out_rx, &seq))
        };
        let submitter = {
            let in_tx = in_tx.clone();
            loom::thread::spawn(move || {
                in_tx
                    .send(InEvent::Batch(vec![Submit { id: 7, shard: 0 }]))
                    .expect("coordinator drains the intake before dropping it");
            })
        };
        let shutter = {
            let in_tx = in_tx.clone();
            loom::thread::spawn(move || {
                in_tx.send(InEvent::Shutdown).expect("coordinator drains the intake");
            })
        };
        drop(in_tx);

        // Coordinator: drain the intake to disconnect (both events arrive
        // in some order), then answer everything admitted in a final slot
        // — queued work is never dropped by a shutdown.
        let mut queues: ShardQueues<Submit> = ShardQueues::new(1, 4);
        let mut saw_shutdown = false;
        while let Ok(ev) = in_rx.recv() {
            match ev {
                InEvent::Batch(batch) => {
                    for s in batch {
                        queues.try_admit(s.shard, s).expect("queues sized for the load");
                    }
                }
                InEvent::Shutdown => saw_shutdown = true,
                InEvent::Reserve { .. } | InEvent::Release { .. } => {
                    panic!("config C sends no reservation events")
                }
            }
        }
        assert!(saw_shutdown, "the SHUTDOWN event is never lost");
        stop.raise();
        run_slot(&mut queues, 0, &seq, &out_tx);
        submitter.join().expect("submitter exits");
        shutter.join().expect("shutter exits");
        assert!(stop.is_raised(), "acceptor gate raised before the join");
        drop(out_tx);
        let log = results.join().expect("results thread never panics");
        check_log(&log, &[7], 1);
    });
    eprintln!("loom_serve config C: {interleavings} interleavings");
    assert!(interleavings > 1000, "config C must be non-trivial, got {interleavings}");
}

/// Config D — admission overflow: a capacity-1 shard queue receives two
/// requests for the same shard; the second is denied Full *at admission*
/// and the deny reply is delivered like any other — both ids answered
/// exactly once, the granted one in the slot, the denied one before it.
#[test]
fn queue_full_deny_is_still_answered() {
    let interleavings = loom::model(|| {
        let seq = Arc::new(SlotSequence::new());
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(2);
        let (out_tx, out_rx) = serve_sync::bounded::<OutEvent>(4);

        let results = {
            let seq = Arc::clone(&seq);
            loom::thread::spawn(move || results_loop(&out_rx, &seq))
        };
        let reader = loom::thread::spawn(move || {
            in_tx
                .send(InEvent::Batch(vec![Submit { id: 1, shard: 0 }, Submit { id: 2, shard: 0 }]))
                .expect("coordinator outlives the reader");
        });

        let mut queues: ShardQueues<Submit> = ShardQueues::new(1, 1);
        let Ok(InEvent::Batch(batch)) = in_rx.recv() else {
            panic!("the reader sends exactly one batch")
        };
        for s in batch {
            match queues.try_admit(s.shard, s) {
                Ok(()) => {}
                Err(AdmitRejection::Full(rejected)) => {
                    // The admission deny is a reply too — never dropped.
                    out_tx
                        .send(OutEvent::Reply { id: rejected.id, slot: 0, granted: false })
                        .expect("results thread lives");
                }
                Err(AdmitRejection::InvalidShard(_)) => panic!("shard 0 exists"),
            }
        }
        run_slot(&mut queues, 0, &seq, &out_tx);
        reader.join().expect("reader exits");
        drop(out_tx);
        let log = results.join().expect("results thread never panics");
        check_log(&log, &[1, 2], 1);
        let granted: Vec<u64> =
            log.replies.iter().filter(|(_, _, g)| *g).map(|(id, _, _)| *id).collect();
        assert_eq!(granted, vec![1], "capacity-1 shard grants exactly the first request");
    });
    eprintln!("loom_serve config D: {interleavings} interleavings");
    assert!(interleavings > 1000, "config D must be non-trivial, got {interleavings}");
}

/// Config E — a RESERVE racing a RELEASE from another reader, with a cell
/// batch in flight: reservation admission happens at intake-processing
/// time (an ack reply is sent immediately), activation happens at the
/// reservation's start slot, and a release cancels a still-pending
/// reservation. In every arrival order: the ack is delivered exactly once,
/// the activation reply fires iff the release lost the race (arrived
/// before the reserve, hitting nothing), the cell batch is answered
/// exactly once, and the slot sequence stays monotone-dense. This is the
/// coordination shape of `InEvent::Reserve`/`InEvent::Release` in the real
/// daemon — reservations ride the same bounded intake and the same results
/// stream as cell traffic, with no extra locks.
#[test]
fn reserve_release_race_acked_exactly_once() {
    let interleavings = loom::model(|| {
        let seq = Arc::new(SlotSequence::new());
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(2);
        let (out_tx, out_rx) = serve_sync::bounded::<OutEvent>(8);

        let reserver = {
            let in_tx = in_tx.clone();
            loom::thread::spawn(move || {
                in_tx
                    .send(InEvent::Reserve { id: 5, start_slot: 1 })
                    .expect("coordinator drains the intake before dropping it");
            })
        };
        let releaser = {
            let in_tx = in_tx.clone();
            loom::thread::spawn(move || {
                in_tx.send(InEvent::Release { id: 5 }).expect("coordinator drains the intake");
            })
        };
        let submitter = {
            let in_tx = in_tx.clone();
            loom::thread::spawn(move || {
                in_tx
                    .send(InEvent::Batch(vec![Submit { id: 7, shard: 0 }]))
                    .expect("coordinator drains the intake");
            })
        };
        drop(in_tx);

        // Coordinator: drain the intake to disconnect, applying events in
        // arrival order against a miniature reservation store. The ack
        // reply (id 100 + rid) is emitted at admission; the activation
        // reply (the rid itself) at the start slot, unless released first.
        let mut queues: ShardQueues<Submit> = ShardQueues::new(1, 4);
        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut cancelled = false;
        while let Ok(ev) = in_rx.recv() {
            match ev {
                InEvent::Batch(batch) => {
                    for s in batch {
                        queues.try_admit(s.shard, s).expect("queues sized for the load");
                    }
                }
                InEvent::Reserve { id, start_slot } => {
                    pending.push((id, start_slot));
                    out_tx
                        .send(OutEvent::Reply { id: 100 + id, slot: 0, granted: true })
                        .expect("results drained after the coordinator");
                }
                InEvent::Release { id } => {
                    let before = pending.len();
                    pending.retain(|(rid, _)| *rid != id);
                    cancelled = pending.len() < before;
                }
                InEvent::Shutdown => panic!("config E sends no SHUTDOWN"),
            }
        }
        for slot in 0..2u64 {
            // Activation precedes the slot's cell matching, like the due
            // drain in `advance_slot_into`.
            pending.retain(|&(rid, start)| {
                if start == slot {
                    out_tx
                        .send(OutEvent::Reply { id: rid, slot, granted: true })
                        .expect("results drained after the coordinator");
                    false
                } else {
                    true
                }
            });
            run_slot(&mut queues, slot, &seq, &out_tx);
        }
        for r in [reserver, releaser, submitter] {
            r.join().expect("reader exits after its send");
        }
        drop(out_tx);
        let log = results_loop(&out_rx, &seq);
        let mut expected = vec![7u64, 105];
        if !cancelled {
            // The release arrived first and hit nothing: the reservation
            // survives to its start slot and must activate.
            expected.push(5);
        }
        check_log(&log, &expected, 2);
        assert!(pending.is_empty(), "no reservation outlives its start slot");
    });
    eprintln!("loom_serve config E: {interleavings} interleavings");
    assert!(interleavings > 1000, "config E must be non-trivial, got {interleavings}");
}
