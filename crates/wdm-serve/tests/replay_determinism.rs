//! The differential gate: a session served over real TCP, recorded by the
//! daemon, must replay bit-identically through the offline engine — for
//! FA (non-circular), BFA, and the approximate policy.
//!
//! Beyond `SessionTrace::replay`'s internal check, every GRANT frame the
//! client saw on the wire is matched against the recorded trace at the same
//! `(slot, seq)`, so the wire stream, the recording, and the offline replay
//! are all pinned to each other.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::time::Duration;

use wdm_core::{Conversion, Policy};
use wdm_serve::protocol::{Frame, SubmitRequest};
use wdm_serve::{Client, EngineConfig, Server, ServerConfig};

const N: usize = 4;
const K: usize = 8;
const SLOTS: u64 = 120;

/// A deterministic request stream: same formula regardless of policy.
fn batch_for(slot: u64, next_id: &mut u64) -> Vec<SubmitRequest> {
    let mut out = Vec::new();
    for i in 0..6u64 {
        let h = slot * 13 + i * 7;
        if h.is_multiple_of(3) {
            continue;
        }
        out.push(SubmitRequest {
            id: *next_id,
            src_fiber: (h % N as u64) as u32,
            src_wavelength: ((h / 3) % K as u64) as u32,
            dst_fiber: ((h / 5) % N as u64) as u32,
            duration: 1 + (h % 4) as u32,
        });
        *next_id += 1;
    }
    out
}

fn drive(policy: Policy, conversion: Conversion) {
    let config = ServerConfig {
        engine: EngineConfig::new(N, conversion, policy).with_trace(),
        slot_period: Duration::ZERO,
        max_slots: None,
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.n() as usize, N);
    assert_eq!(client.k() as usize, K);
    assert_eq!(client.policy(), policy.name());

    // id → submitted request, and the grants seen on the wire.
    let mut submitted: HashMap<u64, SubmitRequest> = HashMap::new();
    let mut wire_grants: Vec<(u64, u64, u64, u32)> = Vec::new();
    let mut next_id = 0u64;
    for slot in 0..SLOTS {
        let batch = batch_for(slot, &mut next_id);
        if batch.is_empty() {
            continue;
        }
        for r in &batch {
            submitted.insert(r.id, *r);
        }
        client.submit(&batch).unwrap();
        let mut outstanding = batch.len();
        while outstanding > 0 {
            match client.next_frame().unwrap() {
                Frame::Grant { slot, seq, id, output_wavelength } => {
                    wire_grants.push((slot, seq, id, output_wavelength));
                    outstanding -= 1;
                }
                Frame::Deny { .. } => outstanding -= 1,
                Frame::SlotComplete { .. } => {}
                other => panic!("unexpected frame: {other:?}"),
            }
        }
    }
    client.send_shutdown().unwrap();
    while client.next_frame().is_ok() {}

    let report = server_thread.join().unwrap().unwrap();
    let trace = report.trace.expect("server was configured to record");
    assert_eq!(report.grants, wire_grants.len() as u64, "wire and report agree");
    assert_eq!(trace.grant_count(), wire_grants.len(), "trace and wire agree");

    // 1. Offline replay is bit-identical.
    let replay = trace.replay().unwrap();
    assert_eq!(replay.grants, wire_grants.len());

    // 2. Every wire grant matches the recorded grant at (slot, seq).
    let mut by_slot_seq = HashMap::new();
    for ts in &trace.slots {
        for g in &ts.grants {
            by_slot_seq.insert((ts.slot, g.seq), *g);
        }
    }
    for &(slot, seq, id, output_wavelength) in &wire_grants {
        let recorded = by_slot_seq
            .get(&(slot, seq))
            .unwrap_or_else(|| panic!("no recorded grant at slot {slot} seq {seq}"));
        assert_eq!(recorded.output_wavelength as u32, output_wavelength);
        let sub = submitted[&id];
        assert_eq!(recorded.request.src_fiber as u32, sub.src_fiber);
        assert_eq!(recorded.request.src_wavelength as u32, sub.src_wavelength);
        assert_eq!(recorded.request.dst_fiber as u32, sub.dst_fiber);
        assert_eq!(recorded.request.duration, sub.duration);
    }
}

#[test]
fn fa_session_replays_bit_identically() {
    drive(Policy::FirstAvailable, Conversion::symmetric_non_circular(K, 3).unwrap());
}

#[test]
fn bfa_session_replays_bit_identically() {
    drive(Policy::BreakFirstAvailable, Conversion::symmetric_circular(K, 3).unwrap());
}

#[test]
fn approx_session_replays_bit_identically() {
    drive(Policy::Approximate, Conversion::symmetric_circular(K, 3).unwrap());
}

/// Two daemon sessions fed the identical request stream produce identical
/// traces — the server itself is deterministic, not just replayable.
#[test]
fn identical_sessions_produce_identical_traces() {
    let run_once = || {
        let config = ServerConfig {
            engine: EngineConfig::new(
                N,
                Conversion::symmetric_circular(K, 3).unwrap(),
                Policy::Auto,
            )
            .with_trace(),
            slot_period: Duration::ZERO,
            max_slots: None,
        };
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();
        let t = std::thread::spawn(move || server.run());
        let mut client = Client::connect(&addr).unwrap();
        let mut next_id = 0u64;
        for slot in 0..40 {
            let batch = batch_for(slot, &mut next_id);
            if batch.is_empty() {
                continue;
            }
            client.submit(&batch).unwrap();
            let mut outstanding = batch.len();
            while outstanding > 0 {
                match client.next_frame().unwrap() {
                    Frame::Grant { .. } | Frame::Deny { .. } => outstanding -= 1,
                    _ => {}
                }
            }
        }
        client.send_shutdown().unwrap();
        while client.next_frame().is_ok() {}
        t.join().unwrap().unwrap().trace.unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
}
