//! The differential gate: a session served over real TCP, recorded by the
//! daemon, must replay bit-identically through the offline engine — for
//! FA (non-circular), BFA, and the approximate policy.
//!
//! Beyond `SessionTrace::replay`'s internal check, every GRANT frame the
//! client saw on the wire is matched against the recorded trace at the same
//! `(slot, seq)`, so the wire stream, the recording, and the offline replay
//! are all pinned to each other.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::time::Duration;

use wdm_core::{Conversion, Policy};
use wdm_serve::protocol::{Frame, ReserveRequest, SubmitRequest};
use wdm_serve::{Client, EngineConfig, Server, ServerConfig};

const N: usize = 4;
const K: usize = 8;
const SLOTS: u64 = 120;

/// A deterministic request stream: same formula regardless of policy.
fn batch_for(slot: u64, next_id: &mut u64) -> Vec<SubmitRequest> {
    let mut out = Vec::new();
    for i in 0..6u64 {
        let h = slot * 13 + i * 7;
        if h.is_multiple_of(3) {
            continue;
        }
        out.push(SubmitRequest {
            id: *next_id,
            src_fiber: (h % N as u64) as u32,
            src_wavelength: ((h / 3) % K as u64) as u32,
            dst_fiber: ((h / 5) % N as u64) as u32,
            duration: 1 + (h % 4) as u32,
        });
        *next_id += 1;
    }
    out
}

fn drive(policy: Policy, conversion: Conversion) {
    let config = ServerConfig {
        engine: EngineConfig::new(N, conversion, policy).with_trace(),
        slot_period: Duration::ZERO,
        max_slots: None,
        scenario: None,
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(client.n() as usize, N);
    assert_eq!(client.k() as usize, K);
    assert_eq!(client.policy(), policy.name());

    // id → submitted request, and the grants seen on the wire.
    let mut submitted: HashMap<u64, SubmitRequest> = HashMap::new();
    let mut wire_grants: Vec<(u64, u64, u64, u32)> = Vec::new();
    let mut next_id = 0u64;
    for slot in 0..SLOTS {
        let batch = batch_for(slot, &mut next_id);
        if batch.is_empty() {
            continue;
        }
        for r in &batch {
            submitted.insert(r.id, *r);
        }
        client.submit(&batch).unwrap();
        let mut outstanding = batch.len();
        while outstanding > 0 {
            match client.next_frame().unwrap() {
                Frame::Grant { slot, seq, id, output_wavelength } => {
                    wire_grants.push((slot, seq, id, output_wavelength));
                    outstanding -= 1;
                }
                Frame::Deny { .. } => outstanding -= 1,
                Frame::SlotComplete { .. } => {}
                other => panic!("unexpected frame: {other:?}"),
            }
        }
    }
    client.send_shutdown().unwrap();
    while client.next_frame().is_ok() {}

    let report = server_thread.join().unwrap().unwrap();
    let trace = report.trace.expect("server was configured to record");
    assert_eq!(report.grants, wire_grants.len() as u64, "wire and report agree");
    assert_eq!(trace.grant_count(), wire_grants.len(), "trace and wire agree");

    // 1. Offline replay is bit-identical.
    let replay = trace.replay().unwrap();
    assert_eq!(replay.grants, wire_grants.len());

    // 2. Every wire grant matches the recorded grant at (slot, seq).
    let mut by_slot_seq = HashMap::new();
    for ts in &trace.slots {
        for g in &ts.grants {
            by_slot_seq.insert((ts.slot, g.seq), *g);
        }
    }
    for &(slot, seq, id, output_wavelength) in &wire_grants {
        let recorded = by_slot_seq
            .get(&(slot, seq))
            .unwrap_or_else(|| panic!("no recorded grant at slot {slot} seq {seq}"));
        assert_eq!(recorded.output_wavelength as u32, output_wavelength);
        let sub = submitted[&id];
        assert_eq!(recorded.request.src_fiber as u32, sub.src_fiber);
        assert_eq!(recorded.request.src_wavelength as u32, sub.src_wavelength);
        assert_eq!(recorded.request.dst_fiber as u32, sub.dst_fiber);
        assert_eq!(recorded.request.duration, sub.duration);
    }
}

#[test]
fn fa_session_replays_bit_identically() {
    drive(Policy::FirstAvailable, Conversion::symmetric_non_circular(K, 3).unwrap());
}

#[test]
fn bfa_session_replays_bit_identically() {
    drive(Policy::BreakFirstAvailable, Conversion::symmetric_circular(K, 3).unwrap());
}

#[test]
fn approx_session_replays_bit_identically() {
    drive(Policy::Approximate, Conversion::symmetric_circular(K, 3).unwrap());
}

/// A multi-slot session — cell traffic interleaved with advance
/// reservations that activate (and sometimes expire on busy sources)
/// several slots after admission — records a trace that replays
/// bit-identically offline, with every reservation activation the client
/// saw on the wire matched against the recorded grant stream.
#[test]
fn mixed_reservation_session_replays_bit_identically() {
    /// Reservation client ids live in their own namespace so wire replies
    /// classify by id alone (same convention as wdm-loadgen).
    const RESERVE_BASE: u64 = 1 << 32;
    const RESV_SLOTS: u64 = 80;

    let config = ServerConfig {
        engine: EngineConfig::new(N, Conversion::symmetric_circular(K, 3).unwrap(), Policy::Auto)
            .with_trace(),
        slot_period: Duration::ZERO,
        max_slots: None,
        scenario: None,
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&addr).unwrap();

    let mut next_id = 0u64;
    let mut next_reserve_id = RESERVE_BASE;
    // Reservation client ids awaiting their RESERVE_ACK / admission deny,
    // and acked ids awaiting activation (grant or expiry at start_slot).
    let mut awaiting_ack: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut awaiting_activation: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut wire_cell_grants = 0usize;
    // Activations seen on the wire: slot → output wavelengths in stream order.
    let mut wire_activations: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut wire_expiries = 0usize;
    let mut admission_denies = 0usize;

    let mut classify = |frame: Frame,
                        awaiting_ack: &mut std::collections::HashSet<u64>,
                        awaiting_activation: &mut std::collections::HashSet<u64>,
                        cells_outstanding: &mut usize| match frame {
        Frame::ReserveAck { id, .. } => {
            assert!(awaiting_ack.remove(&id), "unsolicited RESERVE_ACK for id {id}");
            awaiting_activation.insert(id);
        }
        Frame::Grant { slot, id, output_wavelength, .. } if id >= RESERVE_BASE => {
            assert!(awaiting_activation.remove(&id), "unsolicited activation for id {id}");
            wire_activations.entry(slot).or_default().push(output_wavelength);
        }
        Frame::Deny { id, .. } if id >= RESERVE_BASE => {
            if awaiting_ack.remove(&id) {
                admission_denies += 1;
            } else {
                assert!(awaiting_activation.remove(&id), "unsolicited expiry for id {id}");
                wire_expiries += 1;
            }
        }
        Frame::Grant { .. } => {
            wire_cell_grants += 1;
            *cells_outstanding -= 1;
        }
        Frame::Deny { .. } => *cells_outstanding -= 1,
        Frame::SlotComplete { .. } => {}
        other => panic!("unexpected frame: {other:?}"),
    };

    for slot in 0..RESV_SLOTS {
        let batch = batch_for(slot, &mut next_id);
        if !batch.is_empty() {
            client.submit(&batch).unwrap();
        }
        if slot.is_multiple_of(3) {
            let h = slot * 11 + 5;
            let id = next_reserve_id;
            next_reserve_id += 1;
            client
                .reserve(ReserveRequest {
                    id,
                    src_fiber: (h % N as u64) as u32,
                    src_wavelength: ((h / 3) % K as u64) as u32,
                    dst_fiber: ((h / 7) % N as u64) as u32,
                    start_in: 2 + (h % 3) as u32,
                    duration: 2 + (h % 2) as u32,
                })
                .unwrap();
            awaiting_ack.insert(id);
        }
        // Every RESERVE is answered (ack or deny) and every cell gets one
        // grant/deny; activations for earlier holds arrive interleaved and
        // are classified by id namespace wherever they land.
        let mut cells_outstanding = batch.len();
        while cells_outstanding > 0 || !awaiting_ack.is_empty() {
            let frame = client.next_frame().unwrap();
            classify(frame, &mut awaiting_ack, &mut awaiting_activation, &mut cells_outstanding);
        }
    }
    // Every admitted hold resolves eventually: the daemon keeps advancing
    // slots while reservations are pending, so just drain the stream.
    while !awaiting_activation.is_empty() {
        let mut unused = 0usize;
        let frame = client.next_frame().unwrap();
        classify(frame, &mut awaiting_ack, &mut awaiting_activation, &mut unused);
    }
    client.send_shutdown().unwrap();
    while client.next_frame().is_ok() {}

    let report = server_thread.join().unwrap().unwrap();
    let trace = report.trace.expect("server was configured to record");

    let admitted: usize = trace
        .slots
        .iter()
        .flat_map(|s| &s.reservations)
        .filter(|e| matches!(e, wdm_sim::trace::TraceReservationEvent::Reserve(_)))
        .count();
    let activations: usize = wire_activations.values().map(Vec::len).sum();
    assert!(activations > 0, "session must activate some holds");
    assert_eq!(admitted, activations + wire_expiries, "every admitted hold resolved on the wire");
    assert_eq!(
        awaiting_ack.len() + admission_denies,
        (next_reserve_id - RESERVE_BASE) as usize - admitted,
        "denied admissions never entered the ledger"
    );
    assert!(awaiting_ack.is_empty(), "every RESERVE was answered");

    // 1. Offline replay is bit-identical, reservations included.
    let replay = trace.replay().unwrap();
    assert_eq!(replay.grants, wire_cell_grants);
    assert_eq!(replay.reservation_grants, activations);

    // 2. Every activation the client saw matches the recorded reservation
    //    grant stream at the same slot, in order.
    for ts in &trace.slots {
        let wire = wire_activations.remove(&ts.slot).unwrap_or_default();
        assert_eq!(
            ts.reservation_grants.len(),
            wire.len(),
            "slot {}: trace and wire activation counts differ",
            ts.slot
        );
        for (recorded, wavelength) in ts.reservation_grants.iter().zip(wire) {
            assert_eq!(recorded.output_wavelength as u32, wavelength);
        }
    }
    assert!(wire_activations.is_empty(), "wire activations outside recorded slots");
}

/// Two daemon sessions fed the identical request stream produce identical
/// traces — the server itself is deterministic, not just replayable.
#[test]
fn identical_sessions_produce_identical_traces() {
    let run_once = || {
        let config = ServerConfig {
            engine: EngineConfig::new(
                N,
                Conversion::symmetric_circular(K, 3).unwrap(),
                Policy::Auto,
            )
            .with_trace(),
            slot_period: Duration::ZERO,
            max_slots: None,
            scenario: None,
        };
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();
        let t = std::thread::spawn(move || server.run());
        let mut client = Client::connect(&addr).unwrap();
        let mut next_id = 0u64;
        for slot in 0..40 {
            let batch = batch_for(slot, &mut next_id);
            if batch.is_empty() {
                continue;
            }
            client.submit(&batch).unwrap();
            let mut outstanding = batch.len();
            while outstanding > 0 {
                match client.next_frame().unwrap() {
                    Frame::Grant { .. } | Frame::Deny { .. } => outstanding -= 1,
                    _ => {}
                }
            }
        }
        client.send_shutdown().unwrap();
        while client.next_frame().is_ok() {}
        t.join().unwrap().unwrap().trace.unwrap()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
}
