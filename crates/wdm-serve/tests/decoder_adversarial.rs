//! The adversarial decoder harness.
//!
//! Two layers of hostile input against [`wdm_serve::protocol::read_frame`]:
//!
//! 1. a structure-aware property mutator — generate a valid frame, encode
//!    it, then truncate / extend / bit-flip / length-skew / version-skew the
//!    wire bytes and decode; and
//! 2. a committed regression corpus (`tests/corpus/*.bin`, ≥ 50 frames)
//!    replayed on every test run, so yesterday's crasher stays fixed
//!    without re-rolling the generator.
//!
//! Every input must produce `Ok(frame)` or a typed `ProtocolError` — never
//! a panic — and the decoder must never read past the declared frame
//! boundary (`4 + advertised_len` bytes), which is what the counting reader
//! checks. Run the `#[ignore]`d `regenerate_corpus` test to rebuild the
//! corpus deterministically after a wire-format change.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::Read;

use proptest::prelude::*;
use wdm_serve::protocol::{
    read_frame, write_frame, DenyReason, Frame, ReserveRequest, SubmitRequest, MAGIC,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// A reader over a byte slice that records how many bytes were consumed,
/// so tests can prove the decoder never reads past the frame it declared.
#[derive(Debug)]
struct CountingReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> CountingReader<'a> {
    fn new(data: &'a [u8]) -> CountingReader<'a> {
        CountingReader { data, pos: 0 }
    }

    fn consumed(&self) -> usize {
        self.pos
    }
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Decodes `bytes` through a counting reader and asserts the over-read
/// invariant; the decode result itself (Ok or typed error) is returned.
fn decode_counted(bytes: &[u8]) -> Result<Frame, wdm_serve::ProtocolError> {
    let mut reader = CountingReader::new(bytes);
    let result = read_frame(&mut reader);
    let consumed = reader.consumed();
    assert!(consumed <= bytes.len(), "reader past the buffer: {consumed} > {}", bytes.len());
    if bytes.len() >= 4 {
        let advertised = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        assert!(
            consumed as u64 <= 4 + u64::from(advertised),
            "decoder over-read: consumed {consumed} of a {advertised}-byte frame"
        );
    } else {
        assert!(consumed <= 4, "consumed {consumed} with no full length prefix");
    }
    if let Err(e) = &result {
        assert!(!e.to_string().is_empty(), "error must render: {e:?}");
    }
    result
}

/// Builds one structurally valid frame from integer seeds.
fn build_frame(kind: u8, a: u64, b: u32, len: usize) -> Frame {
    match kind % 11 {
        0 => Frame::Hello { version: a as u16 },
        1 => Frame::HelloAck {
            version: a as u16,
            n: b,
            k: b.rotate_left(7),
            policy: "p".repeat(len % 32),
        },
        2 => Frame::Submit {
            requests: (0..len % 48)
                .map(|i| SubmitRequest {
                    id: a.wrapping_add(i as u64),
                    src_fiber: b.wrapping_add(i as u32),
                    src_wavelength: b.rotate_right(i as u32 % 31),
                    dst_fiber: b ^ i as u32,
                    duration: 1 + (i as u32 % 7),
                })
                .collect(),
        },
        3 => Frame::Grant { slot: a, seq: a >> 16, id: a ^ u64::from(b), output_wavelength: b },
        4 => Frame::Deny {
            slot: a,
            id: a >> 8,
            reason: match a % 4 {
                0 => DenyReason::QueueFull,
                1 => DenyReason::SourceBusy,
                2 => DenyReason::OutputContention,
                _ => DenyReason::InvalidRequest,
            },
            retry_after_slots: b,
        },
        5 => Frame::SlotComplete { slot: a },
        6 => Frame::Shutdown,
        7 => Frame::Reserve {
            request: ReserveRequest {
                id: a,
                src_fiber: b,
                src_wavelength: b.rotate_left(11),
                dst_fiber: b ^ 0x55,
                start_in: (a % 64) as u32,
                duration: 1 + (b % 7),
            },
        },
        8 => Frame::ReserveAck {
            id: a,
            reservation_id: a.rotate_right(13),
            start_slot: a ^ u64::from(b),
        },
        9 => Frame::Release { reservation_id: a },
        _ => Frame::Error { code: b, message: "e".repeat(len % 64) },
    }
}

/// Applies one of six wire-level corruptions in place.
fn mutate(bytes: &mut Vec<u8>, kind: u8, pos: usize, val: u8) {
    match kind % 6 {
        // Truncate: cut the stream anywhere, including mid-prefix.
        0 => {
            let cut = pos % (bytes.len() + 1);
            bytes.truncate(cut);
        }
        // Extend: junk after the frame. Odd `val` also folds the junk into
        // the declared length (structural error); even `val` leaves the
        // prefix honest, so the junk must go entirely unread.
        1 => {
            let extra = 1 + pos % 9;
            bytes.extend(std::iter::repeat_n(val, extra));
            if val % 2 == 1 && bytes.len() >= 4 {
                let new_len = u32::try_from(bytes.len() - 4).unwrap();
                bytes[..4].copy_from_slice(&new_len.to_le_bytes());
            }
        }
        // Bit-flip one bit anywhere in the stream.
        2 => {
            if !bytes.is_empty() {
                let at = pos % bytes.len();
                bytes[at] ^= 1 << (val % 8);
            }
        }
        // Length-skew: advertise an arbitrary payload length (up to just
        // past the cap) over the unchanged payload bytes.
        3 => {
            if bytes.len() >= 4 {
                let skewed = (pos as u32) % (MAX_FRAME_LEN + 16);
                bytes[..4].copy_from_slice(&skewed.to_le_bytes());
            }
        }
        // Version-skew: overwrite the version field of handshake frames
        // (offset 9 for HELLO — after magic — and 5 for HELLO_ACK); for
        // other tags this lands in an ordinary field byte.
        4 => {
            let tag = bytes.get(4).copied().unwrap_or(0);
            let at = if tag == 1 { 9 } else { 5 };
            if bytes.len() > at {
                bytes[at] = val;
            }
        }
        // Tail-field skew: overwrite the last 4 payload bytes — for
        // RESERVE that is the duration, for DENY the retry hint, for
        // RESERVE_ACK the start slot's high word — probing field-domain
        // validation at the frame boundary without changing the length.
        _ => {
            let len = bytes.len();
            if len >= 9 {
                bytes[len - 4..].copy_from_slice(&[val, val.wrapping_mul(3), 0, val & 0x80]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Structure-aware mutation: valid frame, one corruption, decode.
    #[test]
    fn mutated_frames_decode_or_fail_typed(
        (kind, a, b, len) in (0u8..11, 0u64..1 << 48, 0u32..1 << 20, 0usize..64),
        (mkind, mpos, mval) in (0u8..6, 0usize..1 << 21, 0u8..=255),
    ) {
        let frame = build_frame(kind, a, b, len);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        mutate(&mut bytes, mkind, mpos, mval);
        // Ok or typed error both pass; a panic or over-read fails the test.
        let _ = decode_counted(&bytes);
    }

    /// Unstructured garbage: arbitrary byte strings, no valid skeleton.
    #[test]
    fn random_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0usize..96),
    ) {
        let _ = decode_counted(&bytes);
    }

    /// Double corruption: two independent mutations stack.
    #[test]
    fn doubly_mutated_frames_never_panic(
        (kind, a, b, len) in (0u8..11, 0u64..1 << 48, 0u32..1 << 20, 0usize..64),
        (k1, p1, v1) in (0u8..6, 0usize..1 << 21, 0u8..=255),
        (k2, p2, v2) in (0u8..6, 0usize..1 << 21, 0u8..=255),
    ) {
        let frame = build_frame(kind, a, b, len);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        mutate(&mut bytes, k1, p1, v1);
        mutate(&mut bytes, k2, p2, v2);
        let _ = decode_counted(&bytes);
    }
}

/// The committed corpus, rebuilt deterministically by `regenerate_corpus`.
/// Every case is a full wire image (length prefix included, possibly lying).
fn corpus_cases() -> Vec<(String, Vec<u8>)> {
    let base_frames: Vec<(&str, Frame)> = vec![
        ("hello", Frame::Hello { version: PROTOCOL_VERSION }),
        (
            "hello_ack",
            Frame::HelloAck { version: PROTOCOL_VERSION, n: 8, k: 64, policy: "bfa".to_owned() },
        ),
        (
            "submit",
            Frame::Submit {
                requests: vec![
                    SubmitRequest {
                        id: 1,
                        src_fiber: 0,
                        src_wavelength: 3,
                        dst_fiber: 1,
                        duration: 2,
                    },
                    SubmitRequest {
                        id: 2,
                        src_fiber: 1,
                        src_wavelength: 0,
                        dst_fiber: 0,
                        duration: 1,
                    },
                ],
            },
        ),
        ("submit_empty", Frame::Submit { requests: vec![] }),
        ("grant", Frame::Grant { slot: 12, seq: 3, id: 7, output_wavelength: 4 }),
        (
            "deny",
            Frame::Deny {
                slot: 12,
                id: 8,
                reason: DenyReason::OutputContention,
                retry_after_slots: 2,
            },
        ),
        ("slot_complete", Frame::SlotComplete { slot: 12 }),
        ("shutdown", Frame::Shutdown),
        (
            "reserve",
            Frame::Reserve {
                request: ReserveRequest {
                    id: 9,
                    src_fiber: 2,
                    src_wavelength: 5,
                    dst_fiber: 3,
                    start_in: 4,
                    duration: 3,
                },
            },
        ),
        ("reserve_ack", Frame::ReserveAck { id: 9, reservation_id: 17, start_slot: 16 }),
        ("release", Frame::Release { reservation_id: 17 }),
        ("error", Frame::Error { code: 3, message: "malformed frame".to_owned() }),
    ];

    let mut cases: Vec<(String, Vec<u8>)> = Vec::new();
    let mut push = |name: String, bytes: Vec<u8>| cases.push((name, bytes));

    for (name, frame) in &base_frames {
        let mut full = Vec::new();
        write_frame(&mut full, frame).unwrap();

        // Truncations: mid-prefix, tag only, one byte short.
        push(format!("{name}_trunc_prefix"), full[..full.len().min(2)].to_vec());
        if full.len() > 5 {
            push(format!("{name}_trunc_after_tag"), full[..5].to_vec());
        }
        push(format!("{name}_trunc_last"), full[..full.len() - 1].to_vec());

        // Honest one-byte-short payload: prefix rewritten to match the cut.
        if full.len() > 6 {
            let mut short = full[..full.len() - 1].to_vec();
            let len = u32::try_from(short.len() - 4).unwrap();
            short[..4].copy_from_slice(&len.to_le_bytes());
            push(format!("{name}_short_honest"), short);
        }

        // Bit flips: in the prefix, the tag, and the first payload byte.
        for (label, at) in [("prefix", 0usize), ("tag", 4), ("body", 5)] {
            if full.len() > at {
                let mut flipped = full.clone();
                flipped[at] ^= 0x80;
                push(format!("{name}_flip_{label}"), flipped);
            }
        }

        // Length skew: prefix claims one byte more than is present.
        let mut skewed = full.clone();
        let lying = u32::try_from(full.len() - 3).unwrap();
        skewed[..4].copy_from_slice(&lying.to_le_bytes());
        push(format!("{name}_len_plus_one"), skewed);

        // Trailing junk folded into the declared length.
        let mut junked = full.clone();
        junked.push(0xEE);
        let folded = u32::try_from(junked.len() - 4).unwrap();
        junked[..4].copy_from_slice(&folded.to_le_bytes());
        push(format!("{name}_trailing_junk"), junked);
    }

    // Frame-cap probes: over the cap (prefix alone), at the cap with a
    // structurally wrong body, and a cap-sized prefix over a starved body.
    push("cap_plus_one_prefix".to_owned(), (MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
    push("cap_u32_max_prefix".to_owned(), u32::MAX.to_le_bytes().to_vec());
    let mut at_cap = Vec::with_capacity(4 + MAX_FRAME_LEN as usize);
    at_cap.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes());
    at_cap.push(7); // SHUTDOWN tag, then zero padding to exactly the cap
    at_cap.resize(4 + MAX_FRAME_LEN as usize, 0);
    push("cap_padded_shutdown".to_owned(), at_cap);
    let mut starved = MAX_FRAME_LEN.to_le_bytes().to_vec();
    starved.extend_from_slice(&[3, 1, 0, 0]); // claims 1 MiB, ships 4 bytes
    push("cap_starved_body".to_owned(), starved);

    // Version and magic skew on the handshake.
    for version in [0u16, PROTOCOL_VERSION + 1, u16::MAX] {
        let mut v = Vec::new();
        write_frame(&mut v, &Frame::Hello { version }).unwrap();
        push(format!("hello_version_{version}"), v);
    }
    let mut bad_magic = Vec::new();
    write_frame(&mut bad_magic, &Frame::Hello { version: PROTOCOL_VERSION }).unwrap();
    bad_magic[5..9].copy_from_slice(&(MAGIC ^ 0x0101_0101).to_le_bytes());
    push("hello_bad_magic".to_owned(), bad_magic);

    // Unknown tags and the empty frame (12 is the first unassigned tag
    // after RELEASE = 11).
    for tag in [0u8, 12, 0x7F, 0xFF] {
        let mut v = 2u32.to_le_bytes().to_vec();
        v.push(tag);
        v.push(0);
        push(format!("unknown_tag_{tag}"), v);
    }
    push("zero_len_frame".to_owned(), 0u32.to_le_bytes().to_vec());
    push("empty_stream".to_owned(), Vec::new());

    // Out-of-domain fields (7 is the first unassigned deny reason after
    // HorizonExceeded = 6).
    for bad in [0u8, 7, 0xFF] {
        let mut v = Vec::new();
        write_frame(
            &mut v,
            &Frame::Deny { slot: 1, id: 2, reason: DenyReason::QueueFull, retry_after_slots: 0 },
        )
        .unwrap();
        v[4 + 1 + 8 + 8] = bad;
        push(format!("deny_reason_{bad}"), v);
    }
    let mut huge_count = Vec::new();
    huge_count.extend_from_slice(&9u32.to_le_bytes());
    huge_count.push(3); // SUBMIT
    huge_count.extend_from_slice(&u32::MAX.to_le_bytes());
    huge_count.extend_from_slice(&[0, 0, 0, 0]);
    push("submit_count_u32_max".to_owned(), huge_count);

    // String-length overruns and invalid UTF-8.
    let mut ack_overrun = Vec::new();
    ack_overrun.push(2); // HELLO_ACK
    ack_overrun.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    ack_overrun.extend_from_slice(&4u32.to_le_bytes());
    ack_overrun.extend_from_slice(&8u32.to_le_bytes());
    ack_overrun.push(200); // policy claims 200 bytes, none follow
    let mut framed = u32::try_from(ack_overrun.len()).unwrap().to_le_bytes().to_vec();
    framed.extend_from_slice(&ack_overrun);
    push("hello_ack_policy_overrun".to_owned(), framed);

    let mut ack_utf8 = Vec::new();
    ack_utf8.push(2);
    ack_utf8.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    ack_utf8.extend_from_slice(&4u32.to_le_bytes());
    ack_utf8.extend_from_slice(&8u32.to_le_bytes());
    ack_utf8.push(2);
    ack_utf8.extend_from_slice(&[0xFF, 0xFE]);
    let mut framed = u32::try_from(ack_utf8.len()).unwrap().to_le_bytes().to_vec();
    framed.extend_from_slice(&ack_utf8);
    push("hello_ack_bad_utf8".to_owned(), framed);

    let mut err_overrun = Vec::new();
    err_overrun.push(8); // ERROR
    err_overrun.extend_from_slice(&2u32.to_le_bytes());
    err_overrun.extend_from_slice(&u16::MAX.to_le_bytes()); // message claims 64 KiB
    let mut framed = u32::try_from(err_overrun.len()).unwrap().to_le_bytes().to_vec();
    framed.extend_from_slice(&err_overrun);
    push("error_message_overrun".to_owned(), framed);

    cases
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Rebuilds `tests/corpus/*.bin` from [`corpus_cases`]. Deterministic; run
/// with `cargo test -p wdm-serve --test decoder_adversarial -- --ignored`.
#[test]
#[ignore = "writes the committed corpus; run explicitly after wire changes"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    // Remove stale cases first: index prefixes and names shift when the
    // wire format grows, and an orphaned file from the old numbering would
    // silently survive the `corpus_matches_generator` check.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|ext| ext == "bin") {
            std::fs::remove_file(path).unwrap();
        }
    }
    for (index, (name, bytes)) in corpus_cases().into_iter().enumerate() {
        std::fs::write(dir.join(format!("{index:03}_{name}.bin")), bytes).unwrap();
    }
}

/// Replays every committed corpus file through the counting decoder.
#[test]
fn corpus_never_panics_or_over_reads() {
    let dir = corpus_dir();
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} missing: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "bin"))
        .collect();
    files.sort();
    assert!(files.len() >= 50, "corpus holds {} frames, need at least 50", files.len());

    let mut rejected = 0usize;
    for path in &files {
        let bytes = std::fs::read(path).unwrap();
        if decode_counted(&bytes).is_err() {
            rejected += 1;
        }
    }
    // The corpus is adversarial: the vast majority of frames must be
    // rejected (a few bit-flips land in don't-care field bits and still
    // decode — that is fine, they exercise the accept path).
    assert!(
        rejected * 10 >= files.len() * 8,
        "only {rejected} of {} corpus frames rejected — corpus has gone stale",
        files.len()
    );
}

/// The committed files must stay in sync with the generator, so a wire
/// format change cannot silently shrink the corpus.
#[test]
fn corpus_matches_generator() {
    let dir = corpus_dir();
    for (index, (name, bytes)) in corpus_cases().into_iter().enumerate() {
        let path = dir.join(format!("{index:03}_{name}.bin"));
        let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
            panic!("{} unreadable ({e}); re-run regenerate_corpus", path.display())
        });
        assert_eq!(on_disk, bytes, "{} diverges; re-run regenerate_corpus", path.display());
    }
}
