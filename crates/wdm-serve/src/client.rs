//! A blocking protocol client, used by `wdm-loadgen` and the smoke tests.

use std::net::TcpStream;

use crate::protocol::{
    read_frame, write_frame, Frame, ProtocolError, ReserveRequest, SubmitRequest, PROTOCOL_VERSION,
};

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    reader: ClientReader,
    writer: ClientWriter,
    n: u32,
    k: u32,
    policy: String,
}

/// The read half of a split [`Client`] (open-loop mode reads replies on a
/// separate thread from the paced writer).
#[derive(Debug)]
pub struct ClientReader {
    reader: std::io::BufReader<TcpStream>,
}

/// The write half of a split [`Client`].
#[derive(Debug)]
pub struct ClientWriter {
    writer: std::io::BufWriter<TcpStream>,
}

impl Client {
    /// Connects and runs the HELLO handshake.
    pub fn connect(addr: &str) -> Result<Client, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut writer = ClientWriter { writer: std::io::BufWriter::new(write_half) };
        let mut reader = ClientReader { reader: std::io::BufReader::new(stream) };
        writer.send(&Frame::Hello { version: PROTOCOL_VERSION })?;
        match reader.next_frame()? {
            Frame::HelloAck { version, n, k, policy } => {
                if version != PROTOCOL_VERSION {
                    return Err(ProtocolError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                Ok(Client { reader, writer, n, k, policy })
            }
            Frame::Error { code, message } => Err(ProtocolError::ServerError { code, message }),
            _ => Err(ProtocolError::UnexpectedFrame { got: "frame", expected: "HELLO_ACK" }),
        }
    }

    /// Fibers per side, as advertised by the server.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Wavelengths per fiber, as advertised by the server.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The server's scheduling policy short name.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Submits a batch of requests (one SUBMIT frame, flushed).
    pub fn submit(&mut self, requests: &[SubmitRequest]) -> Result<(), ProtocolError> {
        self.writer.submit(requests)
    }

    /// Asks for an advance reservation (one RESERVE frame, flushed). The
    /// verdict arrives as a RESERVE_ACK or DENY frame.
    pub fn reserve(&mut self, request: ReserveRequest) -> Result<(), ProtocolError> {
        self.writer.reserve(request)
    }

    /// Cancels a pending reservation (one RELEASE frame, flushed; one-way).
    pub fn release(&mut self, reservation_id: u64) -> Result<(), ProtocolError> {
        self.writer.release(reservation_id)
    }

    /// Reads the next server frame (GRANT, DENY, RESERVE_ACK,
    /// SLOT_COMPLETE, ERROR).
    pub fn next_frame(&mut self) -> Result<Frame, ProtocolError> {
        self.reader.next_frame()
    }

    /// Asks the daemon to finish the current slot and shut down.
    pub fn send_shutdown(&mut self) -> Result<(), ProtocolError> {
        self.writer.send(&Frame::Shutdown)
    }

    /// Splits into independently-owned read and write halves.
    pub fn into_split(self) -> (ClientReader, ClientWriter) {
        (self.reader, self.writer)
    }
}

impl ClientReader {
    /// Reads the next server frame.
    pub fn next_frame(&mut self) -> Result<Frame, ProtocolError> {
        read_frame(&mut self.reader)
    }
}

impl ClientWriter {
    /// Submits a batch of requests (one SUBMIT frame, flushed).
    pub fn submit(&mut self, requests: &[SubmitRequest]) -> Result<(), ProtocolError> {
        self.send(&Frame::Submit { requests: requests.to_vec() })
    }

    /// Asks for an advance reservation (one RESERVE frame, flushed).
    pub fn reserve(&mut self, request: ReserveRequest) -> Result<(), ProtocolError> {
        self.send(&Frame::Reserve { request })
    }

    /// Cancels a pending reservation (one RELEASE frame, flushed; one-way).
    pub fn release(&mut self, reservation_id: u64) -> Result<(), ProtocolError> {
        self.send(&Frame::Release { reservation_id })
    }

    /// Asks the daemon to finish the current slot and shut down.
    pub fn send_shutdown(&mut self) -> Result<(), ProtocolError> {
        self.send(&Frame::Shutdown)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        write_frame(&mut self.writer, frame)?;
        std::io::Write::flush(&mut self.writer)?;
        Ok(())
    }
}
