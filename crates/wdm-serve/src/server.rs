//! The daemon: acceptor, per-connection readers, coordinator slot loop,
//! and the results writer.
//!
//! Thread layout (all std threads, no async runtime — see DESIGN.md §11
//! and §12):
//!
//! * **acceptor** — polls a non-blocking listener, assigns connection ids,
//!   registers the write half with the results thread, and spawns one
//!   **reader** thread per connection;
//! * **readers** — run the HELLO handshake, then forward SUBMIT requests
//!   into a *bounded* intake channel (a blocking send is the backpressure:
//!   a flooding client stalls its own reader, never the daemon's memory);
//! * **coordinator** (the [`Server::run`] thread) — drains intake until the
//!   slot boundary, ticks the [`crate::SlotClock`], runs
//!   [`SlotEngine::run_slot`], publishes the slot to the shared
//!   [`SlotSequence`], and hands the reply stream to the results thread;
//! * **results** — owns every connection's buffered write half, encodes
//!   grant/deny frames, broadcasts SLOT_COMPLETE (confirming each slot
//!   against the [`SlotSequence`]), and flushes whenever its queue goes
//!   momentarily empty (prompt when quiet, batched under load).
//!
//! Every cross-thread structure here comes from [`crate::serve_sync`],
//! whose loom model (`tests/loom_serve.rs`) exhaustively checks the
//! intake → admit → slot → results protocol; the shutdown sequence
//! follows the drain order documented there — a client SHUTDOWN frame or
//! the configured `max_slots` stops the loop after the in-flight slot, and
//! queued requests are answered before the sockets close.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use wdm_sim::trace::SessionTrace;

use crate::clock::SlotClock;
use crate::engine::{EngineConfig, Reply, SlotEngine, Verdict};
use crate::protocol::{
    read_frame, write_frame, Frame, ProtocolError, ReserveRequest, SubmitRequest, PROTOCOL_VERSION,
};
use crate::scenario::{ScenarioRuntime, ScenarioSummary};
use crate::serve_sync::{
    self, Receiver, RecvTimeoutError, Sender, SlotSequence, StopFlag, TryRecvError,
};

/// How many in-flight intake events the readers may buffer ahead of the
/// coordinator before blocking (per server, not per connection).
const INTAKE_DEPTH: usize = 4096;

/// How many un-encoded result events the producers may buffer ahead of the
/// results writer. Bounded like every other queue in the daemon; this can
/// never deadlock because events flow into the results thread only — it
/// sends nothing back — so a full queue merely paces the coordinator to
/// the write side's drain rate.
const RESULTS_DEPTH: usize = 8192;

/// Acceptor poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_micros(500);

/// How long an idle free-running coordinator parks waiting for work.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The scheduling core.
    pub engine: EngineConfig,
    /// Slot period; `Duration::ZERO` free-runs (slots fire whenever work
    /// is queued).
    pub slot_period: Duration,
    /// Stop after this many executed slots (`None` = run until SHUTDOWN).
    pub max_slots: Option<u64>,
    /// A compiled scenario whose disruption timeline and fallback rule the
    /// coordinator applies at the planned slots (`None` = steady serving).
    /// Must have been compiled for this engine's `n`/`k` topology.
    pub scenario: Option<Arc<wdm_scenario::CompiledPlan>>,
}

/// What a finished server run did.
#[derive(Debug, Clone)]
#[must_use]
pub struct ServerReport {
    /// Slots executed.
    pub slots: u64,
    /// Requests granted.
    pub grants: u64,
    /// Requests denied at scheduling time (source-busy + contention).
    pub denies: u64,
    /// Requests denied at admission (invalid + queue-full), including
    /// advance reservations the capacity ledger turned away.
    pub admission_denies: u64,
    /// Advance reservations admitted into the capacity ledger.
    pub reservations: u64,
    /// Admitted reservations that activated and were granted their hold.
    pub reservation_grants: u64,
    /// Admitted reservations that expired at their start slot.
    pub reservation_expiries: u64,
    /// Connections accepted over the run.
    pub connections: u64,
    /// What the scenario runtime did, when one was configured.
    pub scenario: Option<ScenarioSummary>,
    /// The recorded session, when the engine was configured to record.
    pub trace: Option<SessionTrace>,
}

/// Events flowing readers → coordinator. A SUBMIT frame travels as one
/// event so a client's batch is admitted atomically — it can never be
/// split across a slot boundary, which keeps single-client closed-loop
/// sessions fully deterministic.
#[derive(Debug)]
enum InEvent {
    Submit { conn: u64, requests: Vec<SubmitRequest> },
    Reserve { conn: u64, request: ReserveRequest },
    Release { conn: u64, reservation_id: u64 },
    Shutdown,
}

/// Events flowing acceptor/readers/coordinator → results writer.
#[derive(Debug)]
enum OutEvent {
    Register { conn: u64, stream: TcpStream },
    HelloOk { conn: u64 },
    Fatal { conn: u64, code: u32, message: String },
    Reply(Reply),
    SlotDone { slot: u64 },
    Close { conn: u64 },
    Finish,
}

/// A bound-but-not-yet-running daemon. Binding is separate from running so
/// callers (tests, the loadgen smoke) can learn the ephemeral port first.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
}

impl Server {
    /// Binds the listening socket (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server, ProtocolError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr, config })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the daemon until SHUTDOWN or `max_slots`, then tears every
    /// thread down and reports. Blocking — spawn a thread to run it
    /// alongside clients in-process.
    pub fn run(self) -> Result<ServerReport, ProtocolError> {
        let Server { listener, addr: _, config } = self;
        let mut engine = SlotEngine::new(config.engine)?;
        let mut scenario = match &config.scenario {
            Some(plan) => Some(ScenarioRuntime::new(Arc::clone(plan), &engine)?),
            None => None,
        };
        let hello = HelloInfo {
            n: u32::try_from(engine.n()).unwrap_or(u32::MAX),
            k: u32::try_from(engine.k()).unwrap_or(u32::MAX),
            policy: engine.policy().name().to_owned(),
        };

        let stop_accepting = Arc::new(StopFlag::new());
        let slot_seq = Arc::new(SlotSequence::new());
        let (in_tx, in_rx) = serve_sync::bounded::<InEvent>(INTAKE_DEPTH);
        let (out_tx, out_rx) = serve_sync::bounded::<OutEvent>(RESULTS_DEPTH);

        let results = {
            let slot_seq = Arc::clone(&slot_seq);
            std::thread::spawn(move || results_loop(&out_rx, &hello, &slot_seq))
        };
        let acceptor = {
            let stop = Arc::clone(&stop_accepting);
            let out_tx = out_tx.clone();
            std::thread::spawn(move || acceptor_loop(&listener, &stop, &in_tx, &out_tx))
        };

        let mut clock = SlotClock::new(config.slot_period);
        let mut report = ServerReport {
            slots: 0,
            grants: 0,
            denies: 0,
            admission_denies: 0,
            reservations: 0,
            reservation_grants: 0,
            reservation_expiries: 0,
            connections: 0,
            scenario: None,
            trace: None,
        };
        let mut out: Vec<Reply> = Vec::new();
        let mut stop = false;

        'slots: loop {
            // 1. Intake window: admit submissions until the slot boundary.
            if clock.free_running() {
                loop {
                    match in_rx.try_recv() {
                        Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop)?,
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => break 'slots,
                    }
                }
            } else {
                loop {
                    let remaining = clock.remaining();
                    if remaining.is_zero() {
                        break;
                    }
                    match in_rx.recv_timeout(remaining) {
                        Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop)?,
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break 'slots,
                    }
                }
            }
            clock.wait();

            if stop && engine.pending() == 0 {
                break;
            }
            if engine.pending() == 0 && engine.pending_reservations() == 0 && clock.free_running() {
                // Free-run advances time only when there is work: slots are
                // work units, so in-flight connections age one slot per
                // executed slot — timing can never leak into the trace. A
                // pending reservation counts as work: its start slot must
                // arrive, so slots keep executing until it activates.
                match in_rx.recv_timeout(IDLE_PARK) {
                    Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop)?,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break 'slots,
                }
                continue;
            }

            // 2. The slot: drain shards, schedule, stream replies. The slot
            // is published to the shared sequence *before* its SlotDone
            // event is enqueued (the results thread confirms the order).
            // Scenario disruptions and fallback decisions land first, so a
            // failure planned for slot s is in force when s is scheduled;
            // replies to outage-cancelled reservations lead the stream.
            out.clear();
            if let Some(rt) = scenario.as_mut() {
                rt.before_slot(&mut engine, clock.lag_slots(), &mut out);
            }
            let summary = engine.run_slot(&mut out);
            report.grants += summary.grants as u64;
            report.denies += summary.denies as u64;
            report.reservation_grants += summary.reservation_grants as u64;
            report.reservation_expiries += summary.reservation_expiries as u64;
            for r in &out {
                send_out(&out_tx, OutEvent::Reply(*r))?;
            }
            slot_seq.publish(summary.slot);
            send_out(&out_tx, OutEvent::SlotDone { slot: summary.slot })?;
            report.slots += 1;

            if stop && engine.pending() == 0 {
                break;
            }
            if let Some(max) = config.max_slots {
                if report.slots >= max {
                    break;
                }
            }
        }

        // Teardown, in the serve_sync drain order: raise the stop flag and
        // join the acceptor (no new readers past this point), send Finish
        // and drop the results sender (the writer drains, flushes, closes
        // every socket — unblocking the readers), join the results writer,
        // join the readers, and only then drop the intake receiver.
        stop_accepting.raise();
        let reader_handles: Vec<std::thread::JoinHandle<()>> = acceptor.join().unwrap_or_default();
        report.connections = reader_handles.len() as u64;
        // A failed Finish send means the results thread already exited —
        // it only does that early by panicking, which the join surfaces.
        let finish_sent = out_tx.send(OutEvent::Finish).is_ok();
        drop(out_tx);
        if results.join().is_err() || !finish_sent {
            return Err(ProtocolError::Disconnected);
        }
        for h in reader_handles {
            // A reader that panicked already closed its connection; the
            // report is still sound, so keep joining the rest.
            let _ = h.join();
        }
        drop(in_rx);
        report.scenario = scenario.map(|rt| rt.summary());
        report.trace = engine.take_trace();
        Ok(report)
    }
}

/// Topology advertised in HELLO_ACK.
#[derive(Debug, Clone)]
struct HelloInfo {
    n: u32,
    k: u32,
    policy: String,
}

/// Forwards an event to the results writer, typing the only failure —
/// the writer is gone — as a disconnect for the coordinator to propagate.
fn send_out(out_tx: &Sender<OutEvent>, ev: OutEvent) -> Result<(), ProtocolError> {
    out_tx.send(ev).map_err(|_| ProtocolError::Disconnected)
}

/// Best-effort send for paths that terminate regardless of delivery: a
/// failed send means the receiving thread is already tearing down, which
/// also ends the caller's code path. Absorbing the typed error *here*, in
/// one audited place, is the handled alternative to `let _ = tx.send(..)`
/// at call sites (which the `channels` lint bans).
fn send_final<T>(tx: &Sender<T>, ev: T) {
    let Ok(()) = tx.send(ev) else { return };
}

fn handle_in(
    ev: InEvent,
    engine: &mut SlotEngine,
    out_tx: &Sender<OutEvent>,
    report: &mut ServerReport,
    stop: &mut bool,
) -> Result<(), ProtocolError> {
    match ev {
        InEvent::Submit { conn, requests } => {
            for req in requests {
                if let Some(reply) = engine.submit(conn, req) {
                    report.admission_denies += 1;
                    send_out(out_tx, OutEvent::Reply(reply))?;
                }
            }
        }
        InEvent::Reserve { conn, request } => {
            let reply = engine.reserve(conn, request);
            match reply.verdict {
                Verdict::Reserved { .. } => report.reservations += 1,
                Verdict::Denied { .. } => report.admission_denies += 1,
                Verdict::Granted { .. } => {
                    unreachable!("admission never grants; grants come from run_slot")
                }
            }
            send_out(out_tx, OutEvent::Reply(reply))?;
        }
        InEvent::Release { conn, reservation_id } => {
            // One-way by protocol contract: unknown ids, foreign owners,
            // and already-activated reservations are silent no-ops.
            let _released = engine.release(conn, reservation_id);
        }
        InEvent::Shutdown => *stop = true,
    }
    Ok(())
}

/// Accepts connections until told to stop; returns the reader handles so
/// the coordinator can join them after the sockets are shut down.
fn acceptor_loop(
    listener: &TcpListener,
    stop: &StopFlag,
    in_tx: &Sender<InEvent>,
    out_tx: &Sender<OutEvent>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    if listener.set_nonblocking(true).is_err() {
        return handles;
    }
    let mut next_conn: u64 = 0;
    while !stop.is_raised() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let _ = stream.set_nodelay(true);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                if out_tx.send(OutEvent::Register { conn, stream: write_half }).is_err() {
                    // Results writer gone: the daemon is tearing down.
                    break;
                }
                let in_tx = in_tx.clone();
                let out_tx = out_tx.clone();
                handles.push(std::thread::spawn(move || {
                    reader_loop(conn, stream, &in_tx, &out_tx);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    handles
}

/// One connection's read side: HELLO handshake, then SUBMIT/SHUTDOWN until
/// disconnect or a protocol violation (which closes only this connection).
///
/// Every event send is handled: a failed send means the receiving thread is
/// tearing down, which ends this connection too — readers exit, they never
/// drop an event silently.
fn reader_loop(conn: u64, stream: TcpStream, in_tx: &Sender<InEvent>, out_tx: &Sender<OutEvent>) {
    let mut reader = std::io::BufReader::new(stream);
    let handshake_sent = match read_frame(&mut reader) {
        Ok(Frame::Hello { version }) if version == PROTOCOL_VERSION => {
            out_tx.send(OutEvent::HelloOk { conn }).is_ok()
        }
        Ok(Frame::Hello { version }) => {
            let fatal = OutEvent::Fatal {
                conn,
                code: 2,
                message: format!(
                    "protocol version mismatch: server {PROTOCOL_VERSION}, client {version}"
                ),
            };
            send_final(out_tx, fatal);
            return;
        }
        Ok(_) => {
            let fatal = OutEvent::Fatal {
                conn,
                code: 3,
                message: "expected HELLO as the first frame".to_owned(),
            };
            send_final(out_tx, fatal);
            return;
        }
        Err(_) => {
            send_final(out_tx, OutEvent::Close { conn });
            return;
        }
    };
    if !handshake_sent {
        return;
    }
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Submit { requests }) => {
                if in_tx.send(InEvent::Submit { conn, requests }).is_err() {
                    send_final(out_tx, OutEvent::Close { conn });
                    return;
                }
            }
            Ok(Frame::Reserve { request }) => {
                if in_tx.send(InEvent::Reserve { conn, request }).is_err() {
                    send_final(out_tx, OutEvent::Close { conn });
                    return;
                }
            }
            Ok(Frame::Release { reservation_id }) => {
                if in_tx.send(InEvent::Release { conn, reservation_id }).is_err() {
                    send_final(out_tx, OutEvent::Close { conn });
                    return;
                }
            }
            Ok(Frame::Shutdown) => {
                if in_tx.send(InEvent::Shutdown).is_err() {
                    // The coordinator is already past its intake loop —
                    // shutdown is in progress, which is what was asked for.
                    send_final(out_tx, OutEvent::Close { conn });
                    return;
                }
            }
            Ok(_) => {
                let fatal = OutEvent::Fatal {
                    conn,
                    code: 3,
                    message: "clients may only send SUBMIT, RESERVE, RELEASE, or SHUTDOWN"
                        .to_owned(),
                };
                send_final(out_tx, fatal);
                return;
            }
            Err(_) => {
                send_final(out_tx, OutEvent::Close { conn });
                return;
            }
        }
    }
}

/// The single writer thread: owns every connection's buffered write half.
fn results_loop(out_rx: &Receiver<OutEvent>, hello: &HelloInfo, slot_seq: &SlotSequence) {
    // Connection ids are dense and small; a Vec doubles as the map.
    let mut writers: Vec<Option<std::io::BufWriter<TcpStream>>> = Vec::new();
    let mut dirty = false;
    loop {
        // Flush-on-quiet: batch while the queue has depth, flush the moment
        // it empties so a lone reply never waits for the next slot.
        let ev = match out_rx.try_recv() {
            Ok(ev) => ev,
            Err(TryRecvError::Empty) => {
                if dirty {
                    flush_all(&mut writers);
                    dirty = false;
                }
                match out_rx.recv() {
                    Ok(ev) => ev,
                    Err(_) => return,
                }
            }
            Err(TryRecvError::Disconnected) => return,
        };
        match ev {
            OutEvent::Register { conn, stream } => {
                let idx = conn as usize;
                if writers.len() <= idx {
                    writers.resize_with(idx + 1, || None);
                }
                writers[idx] = Some(std::io::BufWriter::new(stream));
            }
            OutEvent::HelloOk { conn } => {
                let ack = Frame::HelloAck {
                    version: PROTOCOL_VERSION,
                    n: hello.n,
                    k: hello.k,
                    policy: hello.policy.clone(),
                };
                send_to(&mut writers, conn, &ack);
                dirty = true;
            }
            OutEvent::Fatal { conn, code, message } => {
                send_to(&mut writers, conn, &Frame::Error { code, message });
                close_conn(&mut writers, conn);
            }
            OutEvent::Reply(reply) => {
                let frame = match reply.verdict {
                    Verdict::Granted { seq, output_wavelength } => {
                        Frame::Grant { slot: reply.slot, seq, id: reply.id, output_wavelength }
                    }
                    Verdict::Denied { reason, retry_after_slots } => {
                        Frame::Deny { slot: reply.slot, id: reply.id, reason, retry_after_slots }
                    }
                    Verdict::Reserved { reservation, start_slot } => {
                        Frame::ReserveAck { id: reply.id, reservation_id: reservation, start_slot }
                    }
                };
                send_to(&mut writers, reply.conn, &frame);
                dirty = true;
            }
            OutEvent::SlotDone { slot } => {
                // Publish-before-notify: the coordinator published this
                // slot before enqueuing the event.
                slot_seq.confirm(slot);
                for conn in 0..writers.len() as u64 {
                    send_to(&mut writers, conn, &Frame::SlotComplete { slot });
                }
                dirty = true;
            }
            OutEvent::Close { conn } => close_conn(&mut writers, conn),
            OutEvent::Finish => {
                flush_all(&mut writers);
                for conn in 0..writers.len() as u64 {
                    close_conn(&mut writers, conn);
                }
                return;
            }
        }
    }
}

/// Writes a frame to one connection; a write failure drops the writer (the
/// reader side notices the closed socket and unwinds the connection).
fn send_to(writers: &mut [Option<std::io::BufWriter<TcpStream>>], conn: u64, frame: &Frame) {
    let idx = conn as usize;
    let Some(slot) = writers.get_mut(idx) else {
        return;
    };
    let Some(w) = slot.as_mut() else {
        return;
    };
    if write_frame(w, frame).is_err() {
        *slot = None;
    }
}

fn flush_all(writers: &mut [Option<std::io::BufWriter<TcpStream>>]) {
    for slot in writers.iter_mut() {
        if let Some(w) = slot.as_mut() {
            if std::io::Write::flush(w).is_err() {
                *slot = None;
            }
        }
    }
}

/// Flushes, shuts the socket down both ways (unblocking the reader thread),
/// and forgets the writer.
fn close_conn(writers: &mut [Option<std::io::BufWriter<TcpStream>>], conn: u64) {
    let idx = conn as usize;
    let Some(slot) = writers.get_mut(idx) else {
        return;
    };
    if let Some(mut w) = slot.take() {
        let _ = std::io::Write::flush(&mut w);
        let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
    }
}
