//! The daemon: acceptor, per-connection readers, coordinator slot loop,
//! and the results writer.
//!
//! Thread layout (all std threads, no async runtime — see DESIGN.md §11):
//!
//! * **acceptor** — polls a non-blocking listener, assigns connection ids,
//!   registers the write half with the results thread, and spawns one
//!   **reader** thread per connection;
//! * **readers** — run the HELLO handshake, then forward SUBMIT requests
//!   into a *bounded* intake channel (a blocking send is the backpressure:
//!   a flooding client stalls its own reader, never the daemon's memory);
//! * **coordinator** (the [`Server::run`] thread) — drains intake until the
//!   slot boundary, ticks the [`crate::SlotClock`], runs
//!   [`SlotEngine::run_slot`], and hands the reply stream to the results
//!   thread;
//! * **results** — owns every connection's buffered write half, encodes
//!   grant/deny frames, broadcasts SLOT_COMPLETE, and flushes whenever its
//!   queue goes momentarily empty (prompt when quiet, batched under load).
//!
//! Shutdown: a client SHUTDOWN frame or the configured `max_slots` stops
//! the loop after the in-flight slot; queued requests are answered before
//! the sockets close.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use wdm_sim::trace::SessionTrace;

use crate::clock::SlotClock;
use crate::engine::{EngineConfig, Reply, SlotEngine, Verdict};
use crate::protocol::{
    read_frame, write_frame, Frame, ProtocolError, SubmitRequest, PROTOCOL_VERSION,
};

/// How many in-flight intake events the readers may buffer ahead of the
/// coordinator before blocking (per server, not per connection).
const INTAKE_DEPTH: usize = 4096;

/// Acceptor poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_micros(500);

/// How long an idle free-running coordinator parks waiting for work.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The scheduling core.
    pub engine: EngineConfig,
    /// Slot period; `Duration::ZERO` free-runs (slots fire whenever work
    /// is queued).
    pub slot_period: Duration,
    /// Stop after this many executed slots (`None` = run until SHUTDOWN).
    pub max_slots: Option<u64>,
}

/// What a finished server run did.
#[derive(Debug, Clone)]
#[must_use]
pub struct ServerReport {
    /// Slots executed.
    pub slots: u64,
    /// Requests granted.
    pub grants: u64,
    /// Requests denied at scheduling time (source-busy + contention).
    pub denies: u64,
    /// Requests denied at admission (invalid + queue-full).
    pub admission_denies: u64,
    /// Connections accepted over the run.
    pub connections: u64,
    /// The recorded session, when the engine was configured to record.
    pub trace: Option<SessionTrace>,
}

/// Events flowing readers → coordinator. A SUBMIT frame travels as one
/// event so a client's batch is admitted atomically — it can never be
/// split across a slot boundary, which keeps single-client closed-loop
/// sessions fully deterministic.
#[derive(Debug)]
enum InEvent {
    Submit { conn: u64, requests: Vec<SubmitRequest> },
    Shutdown,
}

/// Events flowing acceptor/readers/coordinator → results writer.
#[derive(Debug)]
enum OutEvent {
    Register { conn: u64, stream: TcpStream },
    HelloOk { conn: u64 },
    Fatal { conn: u64, code: u32, message: String },
    Reply(Reply),
    SlotDone { slot: u64 },
    Close { conn: u64 },
    Finish,
}

/// A bound-but-not-yet-running daemon. Binding is separate from running so
/// callers (tests, the loadgen smoke) can learn the ephemeral port first.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
}

impl Server {
    /// Binds the listening socket (use port 0 for an ephemeral port).
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server, ProtocolError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { listener, addr, config })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the daemon until SHUTDOWN or `max_slots`, then tears every
    /// thread down and reports. Blocking — spawn a thread to run it
    /// alongside clients in-process.
    pub fn run(self) -> Result<ServerReport, ProtocolError> {
        let Server { listener, addr: _, config } = self;
        let mut engine = SlotEngine::new(config.engine)?;
        let hello = HelloInfo {
            n: u32::try_from(engine.n()).unwrap_or(u32::MAX),
            k: u32::try_from(engine.k()).unwrap_or(u32::MAX),
            policy: engine.policy().name().to_owned(),
        };

        let stop_accepting = Arc::new(AtomicBool::new(false));
        let (in_tx, in_rx) = mpsc::sync_channel::<InEvent>(INTAKE_DEPTH);
        let (out_tx, out_rx) = mpsc::channel::<OutEvent>();

        let results = std::thread::spawn(move || results_loop(&out_rx, &hello));
        let acceptor = {
            let stop = Arc::clone(&stop_accepting);
            let out_tx = out_tx.clone();
            std::thread::spawn(move || acceptor_loop(&listener, &stop, &in_tx, &out_tx))
        };

        let mut clock = SlotClock::new(config.slot_period);
        let mut report = ServerReport {
            slots: 0,
            grants: 0,
            denies: 0,
            admission_denies: 0,
            connections: 0,
            trace: None,
        };
        let mut out: Vec<Reply> = Vec::new();
        let mut stop = false;

        'slots: loop {
            // 1. Intake window: admit submissions until the slot boundary.
            if clock.free_running() {
                loop {
                    match in_rx.try_recv() {
                        Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop),
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => break 'slots,
                    }
                }
            } else {
                loop {
                    let remaining = clock.remaining();
                    if remaining.is_zero() {
                        break;
                    }
                    match in_rx.recv_timeout(remaining) {
                        Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop),
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break 'slots,
                    }
                }
            }
            clock.wait();

            if stop && engine.pending() == 0 {
                break;
            }
            if engine.pending() == 0 && clock.free_running() {
                // Free-run advances time only when there is work: slots are
                // work units, so in-flight connections age one slot per
                // executed slot — timing can never leak into the trace.
                match in_rx.recv_timeout(IDLE_PARK) {
                    Ok(ev) => handle_in(ev, &mut engine, &out_tx, &mut report, &mut stop),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break 'slots,
                }
                continue;
            }

            // 2. The slot: drain shards, schedule, stream replies.
            out.clear();
            let summary = engine.run_slot(&mut out);
            report.grants += summary.grants as u64;
            report.denies += summary.denies as u64;
            for r in &out {
                let _ = out_tx.send(OutEvent::Reply(*r));
            }
            let _ = out_tx.send(OutEvent::SlotDone { slot: summary.slot });
            report.slots += 1;

            if stop && engine.pending() == 0 {
                break;
            }
            if let Some(max) = config.max_slots {
                if report.slots >= max {
                    break;
                }
            }
        }

        // Teardown: stop accepting, close sockets (which unblocks the
        // readers), then join everything.
        stop_accepting.store(true, Ordering::SeqCst);
        let reader_handles = match acceptor.join() {
            Ok(handles) => handles,
            Err(_) => Vec::new(),
        };
        report.connections = reader_handles.len() as u64;
        let _ = out_tx.send(OutEvent::Finish);
        drop(out_tx);
        if results.join().is_err() {
            return Err(ProtocolError::Disconnected);
        }
        for h in reader_handles {
            let _ = h.join();
        }
        drop(in_rx);
        report.trace = engine.take_trace();
        Ok(report)
    }
}

/// Topology advertised in HELLO_ACK.
#[derive(Debug, Clone)]
struct HelloInfo {
    n: u32,
    k: u32,
    policy: String,
}

fn handle_in(
    ev: InEvent,
    engine: &mut SlotEngine,
    out_tx: &mpsc::Sender<OutEvent>,
    report: &mut ServerReport,
    stop: &mut bool,
) {
    match ev {
        InEvent::Submit { conn, requests } => {
            for req in requests {
                if let Some(reply) = engine.submit(conn, req) {
                    report.admission_denies += 1;
                    let _ = out_tx.send(OutEvent::Reply(reply));
                }
            }
        }
        InEvent::Shutdown => *stop = true,
    }
}

/// Accepts connections until told to stop; returns the reader handles so
/// the coordinator can join them after the sockets are shut down.
fn acceptor_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    in_tx: &mpsc::SyncSender<InEvent>,
    out_tx: &mpsc::Sender<OutEvent>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    if listener.set_nonblocking(true).is_err() {
        return handles;
    }
    let mut next_conn: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = next_conn;
                next_conn += 1;
                let _ = stream.set_nodelay(true);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let _ = out_tx.send(OutEvent::Register { conn, stream: write_half });
                let in_tx = in_tx.clone();
                let out_tx = out_tx.clone();
                handles.push(std::thread::spawn(move || {
                    reader_loop(conn, stream, &in_tx, &out_tx);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    handles
}

/// One connection's read side: HELLO handshake, then SUBMIT/SHUTDOWN until
/// disconnect or a protocol violation (which closes only this connection).
fn reader_loop(
    conn: u64,
    stream: TcpStream,
    in_tx: &mpsc::SyncSender<InEvent>,
    out_tx: &mpsc::Sender<OutEvent>,
) {
    let mut reader = std::io::BufReader::new(stream);
    match read_frame(&mut reader) {
        Ok(Frame::Hello { version }) if version == PROTOCOL_VERSION => {
            let _ = out_tx.send(OutEvent::HelloOk { conn });
        }
        Ok(Frame::Hello { version }) => {
            let _ = out_tx.send(OutEvent::Fatal {
                conn,
                code: 2,
                message: format!(
                    "protocol version mismatch: server {PROTOCOL_VERSION}, client {version}"
                ),
            });
            return;
        }
        Ok(_) => {
            let _ = out_tx.send(OutEvent::Fatal {
                conn,
                code: 3,
                message: "expected HELLO as the first frame".to_owned(),
            });
            return;
        }
        Err(_) => {
            let _ = out_tx.send(OutEvent::Close { conn });
            return;
        }
    }
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Submit { requests }) => {
                if in_tx.send(InEvent::Submit { conn, requests }).is_err() {
                    let _ = out_tx.send(OutEvent::Close { conn });
                    return;
                }
            }
            Ok(Frame::Shutdown) => {
                let _ = in_tx.send(InEvent::Shutdown);
            }
            Ok(_) => {
                let _ = out_tx.send(OutEvent::Fatal {
                    conn,
                    code: 3,
                    message: "clients may only send SUBMIT or SHUTDOWN".to_owned(),
                });
                return;
            }
            Err(_) => {
                let _ = out_tx.send(OutEvent::Close { conn });
                return;
            }
        }
    }
}

/// The single writer thread: owns every connection's buffered write half.
fn results_loop(out_rx: &mpsc::Receiver<OutEvent>, hello: &HelloInfo) {
    // Connection ids are dense and small; a Vec doubles as the map.
    let mut writers: Vec<Option<std::io::BufWriter<TcpStream>>> = Vec::new();
    let mut dirty = false;
    loop {
        // Flush-on-quiet: batch while the queue has depth, flush the moment
        // it empties so a lone reply never waits for the next slot.
        let ev = match out_rx.try_recv() {
            Ok(ev) => ev,
            Err(mpsc::TryRecvError::Empty) => {
                if dirty {
                    flush_all(&mut writers);
                    dirty = false;
                }
                match out_rx.recv() {
                    Ok(ev) => ev,
                    Err(_) => return,
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => return,
        };
        match ev {
            OutEvent::Register { conn, stream } => {
                let idx = conn as usize;
                if writers.len() <= idx {
                    writers.resize_with(idx + 1, || None);
                }
                writers[idx] = Some(std::io::BufWriter::new(stream));
            }
            OutEvent::HelloOk { conn } => {
                let ack = Frame::HelloAck {
                    version: PROTOCOL_VERSION,
                    n: hello.n,
                    k: hello.k,
                    policy: hello.policy.clone(),
                };
                send_to(&mut writers, conn, &ack);
                dirty = true;
            }
            OutEvent::Fatal { conn, code, message } => {
                send_to(&mut writers, conn, &Frame::Error { code, message });
                close_conn(&mut writers, conn);
            }
            OutEvent::Reply(reply) => {
                let frame = match reply.verdict {
                    Verdict::Granted { seq, output_wavelength } => {
                        Frame::Grant { slot: reply.slot, seq, id: reply.id, output_wavelength }
                    }
                    Verdict::Denied { reason, retry_after_slots } => {
                        Frame::Deny { slot: reply.slot, id: reply.id, reason, retry_after_slots }
                    }
                };
                send_to(&mut writers, reply.conn, &frame);
                dirty = true;
            }
            OutEvent::SlotDone { slot } => {
                for conn in 0..writers.len() as u64 {
                    send_to(&mut writers, conn, &Frame::SlotComplete { slot });
                }
                dirty = true;
            }
            OutEvent::Close { conn } => close_conn(&mut writers, conn),
            OutEvent::Finish => {
                flush_all(&mut writers);
                for conn in 0..writers.len() as u64 {
                    close_conn(&mut writers, conn);
                }
                return;
            }
        }
    }
}

/// Writes a frame to one connection; a write failure drops the writer (the
/// reader side notices the closed socket and unwinds the connection).
fn send_to(writers: &mut [Option<std::io::BufWriter<TcpStream>>], conn: u64, frame: &Frame) {
    let idx = conn as usize;
    let Some(slot) = writers.get_mut(idx) else {
        return;
    };
    let Some(w) = slot.as_mut() else {
        return;
    };
    if write_frame(w, frame).is_err() {
        *slot = None;
    }
}

fn flush_all(writers: &mut [Option<std::io::BufWriter<TcpStream>>]) {
    for slot in writers.iter_mut() {
        if let Some(w) = slot.as_mut() {
            if std::io::Write::flush(w).is_err() {
                *slot = None;
            }
        }
    }
}

/// Flushes, shuts the socket down both ways (unblocking the reader thread),
/// and forgets the writer.
fn close_conn(writers: &mut [Option<std::io::BufWriter<TcpStream>>], conn: u64) {
    let idx = conn as usize;
    let Some(slot) = writers.get_mut(idx) else {
        return;
    };
    if let Some(mut w) = slot.take() {
        let _ = std::io::Write::flush(&mut w);
        let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
    }
}
