//! # wdm-serve
//!
//! A slot-clocked TCP scheduling daemon over the paper's distributed
//! per-output-fiber architecture — std threads and bounded queues only, no
//! async runtime:
//!
//! * [`protocol`] — the versioned length-prefixed binary wire protocol
//!   (SUBMIT batches in, per-slot GRANT/DENY streams out), with every
//!   malformed input mapped to a typed [`protocol::ProtocolError`];
//! * [`clock`] — the deterministic fixed-cadence slot clock (catch-up
//!   without drift; zero period free-runs);
//! * [`engine`] — the TCP-free decision core: bounded per-destination-fiber
//!   admission queues (deny-with-reason + retry-after on overload, never
//!   unbounded buffering) draining each slot into the offline
//!   [`wdm_interconnect::Interconnect`], which runs the same
//!   [`wdm_interconnect::FiberUnit`] shards as every other consumer — the
//!   steady-state slot loop allocates nothing and a recorded session
//!   replays bit-for-bit through [`wdm_sim::trace`];
//! * [`serve_sync`] — the cross-thread coordination primitives (bounded
//!   channel, stop flag, slot-sequence counter, shard admission queues) on
//!   `cfg(loom)`-swappable atomics/mutexes/condvars, exhaustively
//!   model-checked by `tests/loom_serve.rs` under `cargo xtask loom`; the
//!   canonical shutdown drain order is documented there;
//! * [`scenario`] — the scenario runtime: drives a compiled
//!   `wdm-scenario` plan's disruption timeline (converter failures, fiber
//!   outages) and degraded-mode policy fallback against the live engine,
//!   with no wire-format change;
//! * [`server`] — the daemon: acceptor + per-connection reader threads
//!   feeding a bounded intake channel, the coordinator slot loop, and a
//!   results thread streaming grant/deny frames back;
//! * [`client`] — a blocking client used by `wdm-loadgen` and the smoke
//!   tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod client;
pub mod clock;
pub mod engine;
pub mod protocol;
pub mod scenario;
pub mod serve_sync;
pub mod server;

pub use client::Client;
pub use clock::SlotClock;
pub use engine::{EngineConfig, Reply, SlotEngine, SlotSummary, Verdict};
pub use protocol::{
    DenyReason, Frame, ProtocolError, ReserveRequest, SubmitRequest, PROTOCOL_VERSION,
};
pub use scenario::{ScenarioRuntime, ScenarioSummary};
pub use server::{Server, ServerConfig, ServerReport};
pub use wdm_interconnect::PreemptionPolicy;
