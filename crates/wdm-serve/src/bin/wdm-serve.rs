//! `wdm-serve` — the slot-clocked scheduling daemon, plus offline trace
//! replay.
//!
//! ```sh
//! wdm-serve serve --addr 127.0.0.1:0 --addr-file addr.txt --n 8 --k 64 \
//!     --degree 7 --policy bfa --period-us 1000 --trace session.json
//! wdm-serve replay --trace session.json      # differential gate
//! ```
//!
//! The default address binds an OS-assigned ephemeral port (`:0`) so
//! concurrent daemons — CI jobs, parallel test runs — never race for a
//! fixed port; `--addr-file` writes the actual bound address once the
//! listener is up, which doubles as a readiness signal for scripts.

use std::process::ExitCode;
use std::time::Duration;

use wdm_core::{Conversion, Policy};
use wdm_serve::{EngineConfig, Server, ServerConfig};
use wdm_sim::trace::SessionTrace;

fn usage() -> &'static str {
    "usage:\n  wdm-serve serve [--addr <host:port>] [--addr-file <path>] [--n <fibers>]\n               [--k <wavelengths>] [--degree <d>] [--non-circular]\n               [--policy auto|fa|bfa|approx|hk] [--period-us <us>]\n               [--max-slots <slots>] [--queue-capacity <cap>]\n               [--trace <out.json>] [--scenario <plan.toml>]\n  wdm-serve replay --trace <session.json>\n\n  --addr defaults to 127.0.0.1:0 (ephemeral port); --addr-file writes the\n  bound address after the listener is up (readiness signal for scripts).\n  --scenario takes the interconnect topology and policy from the plan\n  (overriding --n/--k/--degree/--policy) and applies its disruption\n  timeline and fallback rule at the planned slots; drive the same plan\n  from `wdm-loadgen --scenario`. Incompatible with --trace (a session\n  trace cannot replay mid-run disruptions)."
}

struct ServeArgs {
    addr: String,
    addr_file: Option<String>,
    n: usize,
    k: usize,
    degree: usize,
    circular: bool,
    policy: Policy,
    period_us: u64,
    max_slots: Option<u64>,
    queue_capacity: usize,
    trace_path: Option<String>,
    scenario_path: Option<String>,
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        addr: "127.0.0.1:0".to_owned(),
        addr_file: None,
        n: 8,
        k: 64,
        degree: 7,
        circular: true,
        policy: Policy::Auto,
        period_us: 1000,
        max_slots: None,
        queue_capacity: 1024,
        trace_path: None,
        scenario_path: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--addr-file" => out.addr_file = Some(value("--addr-file")?),
            "--n" => out.n = parse_num(&value("--n")?, "--n")?,
            "--k" => out.k = parse_num(&value("--k")?, "--k")?,
            "--degree" => out.degree = parse_num(&value("--degree")?, "--degree")?,
            "--non-circular" => out.circular = false,
            "--policy" => {
                let name = value("--policy")?;
                out.policy = name.parse().map_err(|e| format!("{e}"))?;
            }
            "--period-us" => out.period_us = parse_num(&value("--period-us")?, "--period-us")?,
            "--max-slots" => {
                out.max_slots = Some(parse_num(&value("--max-slots")?, "--max-slots")?);
            }
            "--queue-capacity" => {
                out.queue_capacity = parse_num(&value("--queue-capacity")?, "--queue-capacity")?;
            }
            "--trace" => out.trace_path = Some(value("--trace")?),
            "--scenario" => out.scenario_path = Some(value("--scenario")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse().map_err(|_| format!("{flag}: not a number: {text}"))
}

fn run_serve(args: &ServeArgs) -> Result<(), String> {
    // A scenario plan fixes the topology and policy; explicit flags would
    // silently disagree with the plan's compiled events, so the plan wins.
    let scenario = match &args.scenario_path {
        Some(path) => {
            if args.trace_path.is_some() {
                return Err(
                    "--scenario is incompatible with --trace: a session trace cannot replay \
                     mid-run disruptions"
                        .to_owned(),
                );
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let plan = wdm_scenario::load_plan(&text).map_err(|e| format!("{path}: {e}"))?;
            Some(std::sync::Arc::new(plan))
        }
        None => None,
    };
    let (n, conversion, policy) = match &scenario {
        Some(plan) => (plan.n(), plan.conversion(), plan.policy()),
        None => {
            let conversion = if args.circular {
                Conversion::symmetric_circular(args.k, args.degree)
            } else {
                Conversion::symmetric_non_circular(args.k, args.degree)
            }
            .map_err(|e| format!("conversion: {e}"))?;
            (args.n, conversion, args.policy)
        }
    };
    let mut engine =
        EngineConfig::new(n, conversion, policy).with_queue_capacity(args.queue_capacity);
    if args.trace_path.is_some() {
        engine = engine.with_trace();
    }
    let config = ServerConfig {
        engine,
        slot_period: Duration::from_micros(args.period_us),
        max_slots: args.max_slots,
        scenario: scenario.clone(),
    };
    let server =
        Server::bind(&args.addr, config).map_err(|e| format!("bind {}: {e}", args.addr))?;
    if let Some(path) = &args.addr_file {
        // Written only after the listener is up: the file appearing is the
        // readiness signal, and its contents are the real (possibly
        // ephemeral) port a client should dial.
        std::fs::write(path, format!("{}\n", server.local_addr()))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    eprintln!(
        "wdm-serve: listening on {} (n={} k={} d={} policy={} period={}us)",
        server.local_addr(),
        n,
        conversion.k(),
        conversion.degree(),
        policy,
        args.period_us,
    );
    if let Some(plan) = &scenario {
        eprintln!(
            "wdm-serve: scenario `{}` — {} phases, {} disruption events over {} slots",
            plan.name(),
            plan.phases().len(),
            plan.events().len(),
            plan.total_slots(),
        );
    }
    let report = server.run().map_err(|e| format!("server: {e}"))?;
    eprintln!(
        "wdm-serve: done — {} slots, {} grants, {} denies, {} admission denies, {} connections",
        report.slots, report.grants, report.denies, report.admission_denies, report.connections,
    );
    if let Some(s) = &report.scenario {
        eprintln!(
            "wdm-serve: scenario — {} events applied, {} connections dropped, {} reservations \
             cancelled; fallback engaged {}x / reverted {}x over {} slots",
            s.events_applied,
            s.dropped_connections,
            s.cancelled_reservations,
            s.fallback_engagements,
            s.fallback_reverts,
            s.engaged_slots,
        );
    }
    if let Some(path) = &args.trace_path {
        let Some(trace) = report.trace else {
            return Err("server produced no trace".to_owned());
        };
        let json = trace.to_json().map_err(|e| format!("serialize trace: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wdm-serve: wrote session trace to {path}");
    }
    Ok(())
}

fn run_replay(trace_path: &str) -> Result<(), String> {
    let json =
        std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let trace = SessionTrace::from_json(&json).map_err(|e| format!("parse {trace_path}: {e}"))?;
    let report = trace.replay().map_err(|e| format!("replay diverged: {e}"))?;
    println!(
        "replay ok: {} slots, {} grants bit-identical (policy {})",
        report.slots, report.grants, trace.config.policy,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "serve" => parse_serve(rest).and_then(|a| run_serve(&a)),
        Some((cmd, rest)) if cmd == "replay" => {
            let mut trace_path = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--trace" {
                    trace_path = it.next().cloned();
                } else {
                    eprintln!("unknown argument: {arg}\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
            match trace_path {
                Some(path) => run_replay(&path),
                None => Err("replay needs --trace <session.json>".to_owned()),
            }
        }
        Some((cmd, _)) if cmd == "--help" || cmd == "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        _ => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("wdm-serve: {err}");
            ExitCode::FAILURE
        }
    }
}
