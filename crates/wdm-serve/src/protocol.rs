//! The versioned length-prefixed binary wire protocol.
//!
//! Every frame is `u32` little-endian payload length, then the payload:
//! a one-byte frame tag followed by the tag's fixed-layout little-endian
//! fields (see the README frame-layout table). The handshake is
//! `HELLO(magic, version)` → `HELLO_ACK(version, n, k, policy)`; a version
//! mismatch is answered with an `ERROR` frame and the connection closes.
//!
//! All decoding errors are typed [`ProtocolError`]s — the lint wall bans
//! panics in this crate, so a malformed frame can never take the daemon
//! down, only the offending connection.

use std::io::{Read, Write};

/// `"WDM1"` — first field of the HELLO frame.
pub const MAGIC: u32 = 0x5744_4D31;

/// Current wire-protocol version, checked in both directions.
///
/// Version history: v1 carried cell traffic only (HELLO..ERROR, tags 1–8);
/// v2 added advance reservations (RESERVE/RESERVE_ACK/RELEASE, tags 9–11)
/// and the `CapacityExhausted`/`HorizonExceeded` deny reasons.
pub const PROTOCOL_VERSION: u16 = 2;

/// Upper bound on a frame payload; anything larger is rejected before
/// allocation (a corrupt length prefix must not OOM the daemon).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// One request inside a SUBMIT batch. `id` is chosen by the client and
/// echoed verbatim on the matching GRANT/DENY frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Client-chosen request identifier, echoed on the reply.
    pub id: u64,
    /// Source input fiber.
    pub src_fiber: u32,
    /// Wavelength the request arrives on.
    pub src_wavelength: u32,
    /// Destination output fiber.
    pub dst_fiber: u32,
    /// Slots the connection holds once granted (min 1).
    pub duration: u32,
}

/// One advance-reservation request inside a RESERVE frame. `id` is chosen
/// by the client and echoed on the RESERVE_ACK (admitted) or DENY
/// (rejected) reply, and again on the GRANT/DENY emitted when the
/// reservation reaches its start slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReserveRequest {
    /// Client-chosen request identifier, echoed on every reply about this
    /// reservation.
    pub id: u64,
    /// Source input fiber.
    pub src_fiber: u32,
    /// Wavelength the connection will arrive on.
    pub src_wavelength: u32,
    /// Destination output fiber.
    pub dst_fiber: u32,
    /// Slots from *now* (the slot the daemon admits the request in) until
    /// the hold starts; 0 reserves the very next slot boundary.
    pub start_in: u32,
    /// Slots the connection holds once activated (min 1).
    pub duration: u32,
}

/// Why the daemon denied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DenyReason {
    /// The destination shard's bounded admission queue was full — resubmit
    /// after the retry-after hint. This is overload, not an error.
    QueueFull = 1,
    /// The source input channel already carries an in-flight connection (or
    /// an earlier request in the same slot claimed it).
    SourceBusy = 2,
    /// Lost the wavelength-level output contention — the loss the paper's
    /// matching algorithms minimize.
    OutputContention = 3,
    /// The request's fiber/wavelength indices or duration are out of range
    /// for the served interconnect.
    InvalidRequest = 4,
    /// An advance reservation could not be admitted: some slot of its
    /// interval has no bookable channel capacity left (output fiber full,
    /// or the source input channel is already committed).
    CapacityExhausted = 5,
    /// An advance reservation extends beyond the daemon's admission
    /// horizon — retry with a nearer start or shorter duration.
    HorizonExceeded = 6,
}

impl DenyReason {
    /// The wire byte for this reason (inverse of [`Self::from_wire`]).
    pub fn wire(self) -> u8 {
        match self {
            DenyReason::QueueFull => 1,
            DenyReason::SourceBusy => 2,
            DenyReason::OutputContention => 3,
            DenyReason::InvalidRequest => 4,
            DenyReason::CapacityExhausted => 5,
            DenyReason::HorizonExceeded => 6,
        }
    }

    /// Decodes the wire byte.
    pub fn from_wire(byte: u8) -> Result<DenyReason, ProtocolError> {
        match byte {
            1 => Ok(DenyReason::QueueFull),
            2 => Ok(DenyReason::SourceBusy),
            3 => Ok(DenyReason::OutputContention),
            4 => Ok(DenyReason::InvalidRequest),
            5 => Ok(DenyReason::CapacityExhausted),
            6 => Ok(DenyReason::HorizonExceeded),
            other => Err(ProtocolError::BadField {
                frame: "DENY",
                field: "reason",
                value: u64::from(other),
            }),
        }
    }
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server opener: magic + protocol version.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// Server → client handshake reply with the served topology.
    HelloAck {
        /// Server protocol version.
        version: u16,
        /// Number of fibers per side.
        n: u32,
        /// Wavelengths per fiber.
        k: u32,
        /// Scheduling policy short-name byte length + UTF-8 bytes.
        policy: String,
    },
    /// Client → server: a batch of requests for the next slot.
    Submit {
        /// The batched requests.
        requests: Vec<SubmitRequest>,
    },
    /// Server → client: a request was granted an output channel.
    Grant {
        /// Slot the grant took effect.
        slot: u64,
        /// Per-slot sequence number (position in the slot's grant stream).
        seq: u64,
        /// The client-chosen request id.
        id: u64,
        /// Assigned output wavelength channel on the destination fiber.
        output_wavelength: u32,
    },
    /// Server → client: a request was denied this slot.
    Deny {
        /// Slot the denial was decided.
        slot: u64,
        /// The client-chosen request id.
        id: u64,
        /// Why.
        reason: DenyReason,
        /// Hint: slots to wait before resubmitting (0 = don't retry).
        retry_after_slots: u32,
    },
    /// Server → client: all replies for `slot` have been sent.
    SlotComplete {
        /// The completed slot.
        slot: u64,
    },
    /// Client → server: finish the current slot, then shut the daemon down.
    Shutdown,
    /// Client → server: ask for an advance reservation of a future
    /// multi-slot hold (§V circuit/burst connections booked ahead).
    Reserve {
        /// The reservation request.
        request: ReserveRequest,
    },
    /// Server → client: a RESERVE was admitted into the capacity ledger.
    /// A GRANT (or DENY, if activation fails) follows at `start_slot`.
    ReserveAck {
        /// The client-chosen request id from the RESERVE frame.
        id: u64,
        /// Server-assigned reservation handle, usable in RELEASE.
        reservation_id: u64,
        /// Absolute slot at which the hold will activate.
        start_slot: u64,
    },
    /// Client → server: cancel a pending (not-yet-activated) reservation.
    /// One-way — cancelling an unknown or already-activated reservation is
    /// a silent no-op.
    Release {
        /// The server-assigned handle from RESERVE_ACK.
        reservation_id: u64,
    },
    /// Server → client: terminal protocol error; the connection closes.
    Error {
        /// Stable numeric code (1 = bad magic, 2 = version mismatch,
        /// 3 = malformed frame).
        code: u32,
        /// Human-readable description.
        message: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_SUBMIT: u8 = 3;
const TAG_GRANT: u8 = 4;
const TAG_DENY: u8 = 5;
const TAG_SLOT_COMPLETE: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_ERROR: u8 = 8;
const TAG_RESERVE: u8 = 9;
const TAG_RESERVE_ACK: u8 = 10;
const TAG_RELEASE: u8 = 11;

/// Errors crossing the wire boundary: transport failures and malformed or
/// unexpected frames. I/O errors never panic; they close the connection.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Transport-level read/write failure.
    Io(std::io::Error),
    /// The peer closed the connection mid-frame or before one.
    Disconnected,
    /// HELLO did not open with [`MAGIC`].
    BadMagic {
        /// The four bytes received instead.
        got: u32,
    },
    /// The two sides speak different protocol versions.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// Unknown frame tag byte.
    UnknownTag {
        /// The tag received.
        tag: u8,
    },
    /// Length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
    },
    /// Payload shorter or longer than its tag's layout requires.
    Malformed {
        /// Frame name.
        frame: &'static str,
    },
    /// A field carried an out-of-domain value.
    BadField {
        /// Frame name.
        frame: &'static str,
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The peer sent a frame that is valid but not allowed in the current
    /// protocol state (e.g. SUBMIT before HELLO).
    UnexpectedFrame {
        /// What arrived.
        got: &'static str,
        /// What the state machine expected.
        expected: &'static str,
    },
    /// The server reported a terminal error.
    ServerError {
        /// The ERROR frame's code.
        code: u32,
        /// The ERROR frame's message.
        message: String,
    },
    /// The scheduling engine rejected a configuration.
    Engine(wdm_core::Error),
    /// A scenario plan does not fit the session it was applied to — e.g.
    /// its interconnect topology disagrees with the live engine's.
    Scenario {
        /// What mismatched.
        message: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(out, "transport error: {e}"),
            ProtocolError::Disconnected => write!(out, "peer disconnected"),
            ProtocolError::BadMagic { got } => {
                write!(out, "bad HELLO magic 0x{got:08x} (expected 0x{MAGIC:08x})")
            }
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(out, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            ProtocolError::UnknownTag { tag } => write!(out, "unknown frame tag {tag}"),
            ProtocolError::FrameTooLarge { len } => {
                write!(out, "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            ProtocolError::Malformed { frame } => write!(out, "malformed {frame} frame"),
            ProtocolError::BadField { frame, field, value } => {
                write!(out, "{frame} frame field {field} has out-of-domain value {value}")
            }
            ProtocolError::UnexpectedFrame { got, expected } => {
                write!(out, "unexpected {got} frame (expected {expected})")
            }
            ProtocolError::ServerError { code, message } => {
                write!(out, "server error {code}: {message}")
            }
            ProtocolError::Engine(e) => write!(out, "engine configuration rejected: {e}"),
            ProtocolError::Scenario { message } => write!(out, "scenario mismatch: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<wdm_core::Error> for ProtocolError {
    fn from(e: wdm_core::Error) -> ProtocolError {
        ProtocolError::Engine(e)
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Disconnected
        } else {
            ProtocolError::Io(e)
        }
    }
}

/// A little-endian payload writer over a reused byte buffer.
#[derive(Debug, Default)]
struct Payload {
    buf: Vec<u8>,
}

impl Payload {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A little-endian payload reader.
#[derive(Debug)]
struct Cursor<'a> {
    buf: &'a [u8],
    frame: &'static str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < len {
            return Err(ProtocolError::Malformed { frame: self.frame });
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        let Ok(arr) = <[u8; 2]>::try_from(b) else {
            return Err(ProtocolError::Malformed { frame: self.frame });
        };
        Ok(u16::from_le_bytes(arr))
    }
    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        let Ok(arr) = <[u8; 4]>::try_from(b) else {
            return Err(ProtocolError::Malformed { frame: self.frame });
        };
        Ok(u32::from_le_bytes(arr))
    }
    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let Ok(arr) = <[u8; 8]>::try_from(b) else {
            return Err(ProtocolError::Malformed { frame: self.frame });
        };
        Ok(u64::from_le_bytes(arr))
    }
    fn finish(self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed { frame: self.frame })
        }
    }
}

/// Encodes and writes one frame (length prefix + payload). The writer is
/// not flushed — batch frames, then flush once per slot.
#[wdm_attr::panic_free]
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtocolError> {
    let mut p = Payload::default();
    match frame {
        Frame::Hello { version } => {
            p.u8(TAG_HELLO);
            p.u32(MAGIC);
            p.u16(*version);
        }
        Frame::HelloAck { version, n, k, policy } => {
            p.u8(TAG_HELLO_ACK);
            p.u16(*version);
            p.u32(*n);
            p.u32(*k);
            let name = policy.as_bytes();
            let Ok(len) = u8::try_from(name.len()) else {
                return Err(ProtocolError::Malformed { frame: "HELLO_ACK" });
            };
            p.u8(len);
            p.bytes(name);
        }
        Frame::Submit { requests } => {
            p.u8(TAG_SUBMIT);
            let Ok(count) = u32::try_from(requests.len()) else {
                return Err(ProtocolError::Malformed { frame: "SUBMIT" });
            };
            p.u32(count);
            for r in requests {
                p.u64(r.id);
                p.u32(r.src_fiber);
                p.u32(r.src_wavelength);
                p.u32(r.dst_fiber);
                p.u32(r.duration);
            }
        }
        Frame::Grant { slot, seq, id, output_wavelength } => {
            p.u8(TAG_GRANT);
            p.u64(*slot);
            p.u64(*seq);
            p.u64(*id);
            p.u32(*output_wavelength);
        }
        Frame::Deny { slot, id, reason, retry_after_slots } => {
            p.u8(TAG_DENY);
            p.u64(*slot);
            p.u64(*id);
            p.u8(reason.wire());
            p.u32(*retry_after_slots);
        }
        Frame::SlotComplete { slot } => {
            p.u8(TAG_SLOT_COMPLETE);
            p.u64(*slot);
        }
        Frame::Shutdown => p.u8(TAG_SHUTDOWN),
        Frame::Reserve { request } => {
            p.u8(TAG_RESERVE);
            p.u64(request.id);
            p.u32(request.src_fiber);
            p.u32(request.src_wavelength);
            p.u32(request.dst_fiber);
            p.u32(request.start_in);
            p.u32(request.duration);
        }
        Frame::ReserveAck { id, reservation_id, start_slot } => {
            p.u8(TAG_RESERVE_ACK);
            p.u64(*id);
            p.u64(*reservation_id);
            p.u64(*start_slot);
        }
        Frame::Release { reservation_id } => {
            p.u8(TAG_RELEASE);
            p.u64(*reservation_id);
        }
        Frame::Error { code, message } => {
            p.u8(TAG_ERROR);
            p.u32(*code);
            let msg = message.as_bytes();
            let Ok(len) = u16::try_from(msg.len()) else {
                return Err(ProtocolError::Malformed { frame: "ERROR" });
            };
            p.u16(len);
            p.bytes(msg);
        }
    }
    let Ok(len) = u32::try_from(p.buf.len()) else {
        return Err(ProtocolError::FrameTooLarge { len: u32::MAX });
    };
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&p.buf)?;
    Ok(())
}

/// Reads and decodes one frame. Blocks until a full frame arrives; a clean
/// EOF before the length prefix maps to [`ProtocolError::Disconnected`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    if len == 0 {
        return Err(ProtocolError::Malformed { frame: "empty" });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode(&payload)
}

fn decode(payload: &[u8]) -> Result<Frame, ProtocolError> {
    let Some((&tag, body)) = payload.split_first() else {
        return Err(ProtocolError::Malformed { frame: "empty" });
    };
    match tag {
        TAG_HELLO => {
            let mut c = Cursor { buf: body, frame: "HELLO" };
            let magic = c.u32()?;
            if magic != MAGIC {
                return Err(ProtocolError::BadMagic { got: magic });
            }
            let version = c.u16()?;
            c.finish()?;
            Ok(Frame::Hello { version })
        }
        TAG_HELLO_ACK => {
            let mut c = Cursor { buf: body, frame: "HELLO_ACK" };
            let version = c.u16()?;
            let n = c.u32()?;
            let k = c.u32()?;
            let len = c.u8()? as usize;
            let name = c.take(len)?;
            let Ok(policy) = std::str::from_utf8(name) else {
                return Err(ProtocolError::Malformed { frame: "HELLO_ACK" });
            };
            let policy = policy.to_owned();
            c.finish()?;
            Ok(Frame::HelloAck { version, n, k, policy })
        }
        TAG_SUBMIT => {
            let mut c = Cursor { buf: body, frame: "SUBMIT" };
            let count = c.u32()?;
            // 24 bytes per request: a cheap sanity bound before allocating.
            if u64::from(count) * 24 > u64::from(MAX_FRAME_LEN) {
                return Err(ProtocolError::BadField {
                    frame: "SUBMIT",
                    field: "count",
                    value: u64::from(count),
                });
            }
            let mut requests = Vec::with_capacity(count as usize);
            for _ in 0..count {
                requests.push(SubmitRequest {
                    id: c.u64()?,
                    src_fiber: c.u32()?,
                    src_wavelength: c.u32()?,
                    dst_fiber: c.u32()?,
                    duration: c.u32()?,
                });
            }
            c.finish()?;
            Ok(Frame::Submit { requests })
        }
        TAG_GRANT => {
            let mut c = Cursor { buf: body, frame: "GRANT" };
            let frame = Frame::Grant {
                slot: c.u64()?,
                seq: c.u64()?,
                id: c.u64()?,
                output_wavelength: c.u32()?,
            };
            c.finish()?;
            Ok(frame)
        }
        TAG_DENY => {
            let mut c = Cursor { buf: body, frame: "DENY" };
            let slot = c.u64()?;
            let id = c.u64()?;
            let reason = DenyReason::from_wire(c.u8()?)?;
            let retry_after_slots = c.u32()?;
            c.finish()?;
            Ok(Frame::Deny { slot, id, reason, retry_after_slots })
        }
        TAG_SLOT_COMPLETE => {
            let mut c = Cursor { buf: body, frame: "SLOT_COMPLETE" };
            let slot = c.u64()?;
            c.finish()?;
            Ok(Frame::SlotComplete { slot })
        }
        TAG_SHUTDOWN => {
            let c = Cursor { buf: body, frame: "SHUTDOWN" };
            c.finish()?;
            Ok(Frame::Shutdown)
        }
        TAG_ERROR => {
            let mut c = Cursor { buf: body, frame: "ERROR" };
            let code = c.u32()?;
            let len = c.u16()? as usize;
            let msg = c.take(len)?;
            let message = String::from_utf8_lossy(msg).into_owned();
            c.finish()?;
            Ok(Frame::Error { code, message })
        }
        TAG_RESERVE => {
            let mut c = Cursor { buf: body, frame: "RESERVE" };
            let request = ReserveRequest {
                id: c.u64()?,
                src_fiber: c.u32()?,
                src_wavelength: c.u32()?,
                dst_fiber: c.u32()?,
                start_in: c.u32()?,
                duration: c.u32()?,
            };
            c.finish()?;
            Ok(Frame::Reserve { request })
        }
        TAG_RESERVE_ACK => {
            let mut c = Cursor { buf: body, frame: "RESERVE_ACK" };
            let frame =
                Frame::ReserveAck { id: c.u64()?, reservation_id: c.u64()?, start_slot: c.u64()? };
            c.finish()?;
            Ok(frame)
        }
        TAG_RELEASE => {
            let mut c = Cursor { buf: body, frame: "RELEASE" };
            let reservation_id = c.u64()?;
            c.finish()?;
            Ok(Frame::Release { reservation_id })
        }
        tag => Err(ProtocolError::UnknownTag { tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), frame);
        assert!(r.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::Hello { version: PROTOCOL_VERSION });
        round_trip(Frame::HelloAck {
            version: PROTOCOL_VERSION,
            n: 8,
            k: 64,
            policy: "bfa".to_owned(),
        });
        round_trip(Frame::Submit {
            requests: vec![
                SubmitRequest { id: 7, src_fiber: 0, src_wavelength: 3, dst_fiber: 1, duration: 2 },
                SubmitRequest { id: 8, src_fiber: 1, src_wavelength: 0, dst_fiber: 0, duration: 1 },
            ],
        });
        round_trip(Frame::Submit { requests: vec![] });
        round_trip(Frame::Grant { slot: 12, seq: 0, id: 7, output_wavelength: 4 });
        round_trip(Frame::Deny {
            slot: 12,
            id: 8,
            reason: DenyReason::QueueFull,
            retry_after_slots: 1,
        });
        round_trip(Frame::SlotComplete { slot: 12 });
        round_trip(Frame::Shutdown);
        round_trip(Frame::Error { code: 2, message: "version mismatch".to_owned() });
        round_trip(Frame::Reserve {
            request: ReserveRequest {
                id: 9,
                src_fiber: 2,
                src_wavelength: 5,
                dst_fiber: 3,
                start_in: 16,
                duration: 4,
            },
        });
        round_trip(Frame::ReserveAck { id: 9, reservation_id: 1, start_slot: 28 });
        round_trip(Frame::Release { reservation_id: 1 });
    }

    #[test]
    fn truncated_reserve_rejected() {
        let mut wire = Vec::new();
        let request = ReserveRequest {
            id: 1,
            src_fiber: 0,
            src_wavelength: 0,
            dst_fiber: 1,
            start_in: 2,
            duration: 3,
        };
        write_frame(&mut wire, &Frame::Reserve { request }).unwrap();
        let short = (wire.len() - 4 - 4) as u32;
        wire.truncate(wire.len() - 4);
        wire[..4].copy_from_slice(&short.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(ProtocolError::Malformed { frame: "RESERVE" })
        ));
    }

    #[test]
    fn reserve_trailing_bytes_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Release { reservation_id: 7 }).unwrap();
        let long = (wire.len() - 4 + 1) as u32;
        wire.push(0);
        wire[..4].copy_from_slice(&long.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(ProtocolError::Malformed { frame: "RELEASE" })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Hello { version: 1 }).unwrap();
        wire[5] ^= 0xff; // corrupt the magic inside the payload
        assert!(matches!(read_frame(&mut &wire[..]), Err(ProtocolError::BadMagic { .. })));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Grant { slot: 1, seq: 2, id: 3, output_wavelength: 4 })
            .unwrap();
        // Shrink the payload but keep the length prefix honest about it.
        let short = (wire.len() - 4 - 2) as u32;
        wire.truncate(wire.len() - 2);
        wire[..4].copy_from_slice(&short.to_le_bytes());
        assert!(matches!(read_frame(&mut &wire[..]), Err(ProtocolError::Malformed { .. })));
    }

    #[test]
    fn oversized_frame_rejected() {
        let wire = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(read_frame(&mut &wire[..]), Err(ProtocolError::FrameTooLarge { .. })));
    }

    #[test]
    fn eof_maps_to_disconnected() {
        assert!(matches!(read_frame(&mut &[][..]), Err(ProtocolError::Disconnected)));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(99);
        assert!(matches!(read_frame(&mut &wire[..]), Err(ProtocolError::UnknownTag { tag: 99 })));
    }

    #[test]
    fn deny_reasons_round_trip() {
        for reason in [
            DenyReason::QueueFull,
            DenyReason::SourceBusy,
            DenyReason::OutputContention,
            DenyReason::InvalidRequest,
            DenyReason::CapacityExhausted,
            DenyReason::HorizonExceeded,
        ] {
            assert_eq!(DenyReason::from_wire(reason.wire()).unwrap(), reason);
        }
        assert!(DenyReason::from_wire(0).is_err());
        assert!(DenyReason::from_wire(7).is_err());
    }
}
