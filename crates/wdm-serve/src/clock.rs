//! The deterministic slot clock.
//!
//! The daemon's time base is a fixed-period tick: slot boundaries land at
//! `start + i * period` regardless of how long each slot's scheduling took,
//! so a slow slot is followed by shorter waits (catch-up) rather than by a
//! drifting cadence. A zero period free-runs: slots fire back to back with
//! no sleeping, which is what the load generator's throughput mode and the
//! CI smoke job use.

use std::time::{Duration, Instant};

/// A fixed-cadence slot ticker.
#[derive(Debug, Clone)]
pub struct SlotClock {
    period: Duration,
    next: Instant,
}

impl SlotClock {
    /// A clock ticking every `period`, starting one period from now.
    /// `Duration::ZERO` free-runs.
    pub fn new(period: Duration) -> SlotClock {
        SlotClock::starting_at(period, Instant::now())
    }

    /// A clock whose slot boundaries land at `start + i * period` for
    /// `i >= 1`. With [`Self::tick_at`] this makes the catch-up arithmetic
    /// testable against synthetic instants, with no real sleeping.
    pub fn starting_at(period: Duration, start: Instant) -> SlotClock {
        SlotClock { period, next: start + period }
    }

    /// The slot period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Whether the clock free-runs (zero period).
    pub fn free_running(&self) -> bool {
        self.period.is_zero()
    }

    /// Time remaining until the next slot boundary (zero when overdue or
    /// free-running) — how long intake may keep draining submissions.
    pub fn remaining(&self) -> Duration {
        if self.free_running() {
            return Duration::ZERO;
        }
        self.next.saturating_duration_since(Instant::now())
    }

    /// How many slot boundaries the caller is overdue by at `now`: zero
    /// when on schedule (or free-running), one the moment the next
    /// boundary passes un-ticked, and one more per additional period of
    /// lateness. This is the live lag signal the scenario fallback
    /// controller thresholds on — the pure seam under
    /// [`Self::lag_slots`], testable with synthetic instants.
    pub fn lag_slots_at(&self, now: Instant) -> u64 {
        if self.free_running() {
            return 0;
        }
        let overdue = now.saturating_duration_since(self.next);
        if overdue.is_zero() {
            return 0;
        }
        let periods = overdue.as_nanos() / self.period.as_nanos().max(1);
        u64::try_from(periods).unwrap_or(u64::MAX).saturating_add(1)
    }

    /// [`Self::lag_slots_at`] against the real clock.
    pub fn lag_slots(&self) -> u64 {
        self.lag_slots_at(Instant::now())
    }

    /// The pure tick step: given the current instant, returns how long to
    /// sleep until the next slot boundary (zero when overdue or
    /// free-running) and advances the boundary by exactly one period.
    ///
    /// Boundaries stay on the fixed `start + i * period` grid no matter how
    /// late the caller is, so lateness is worked off over subsequent slots
    /// (each overdue tick returns zero) instead of shifting the cadence.
    /// This is the deterministic seam the catch-up tests drive with
    /// synthetic instants; [`Self::wait`] is the thin sleeping wrapper.
    pub fn tick_at(&mut self, now: Instant) -> Duration {
        if self.free_running() {
            return Duration::ZERO;
        }
        let sleep = self.next.saturating_duration_since(now);
        self.next += self.period;
        sleep
    }

    /// Blocks until the next slot boundary and schedules the one after.
    /// When the loop is behind, returns immediately (no sleep) but still
    /// advances the boundary by exactly one period, so lateness is worked
    /// off over subsequent slots instead of compounding.
    pub fn wait(&mut self) {
        let sleep = self.tick_at(Instant::now());
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_run_never_sleeps() {
        let mut clock = SlotClock::new(Duration::ZERO);
        let start = Instant::now();
        for _ in 0..1000 {
            clock.wait();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(clock.free_running());
        assert_eq!(clock.remaining(), Duration::ZERO);
    }

    #[test]
    fn cadence_is_fixed_not_drifting() {
        let mut clock = SlotClock::new(Duration::from_millis(2));
        let start = Instant::now();
        for _ in 0..5 {
            clock.wait();
        }
        let elapsed = start.elapsed();
        // 5 ticks of 2 ms: at least 10 ms, and catch-up keeps it close.
        assert!(elapsed >= Duration::from_millis(10), "elapsed {elapsed:?}");
    }

    #[test]
    fn lateness_is_worked_off() {
        let mut clock = SlotClock::new(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        // Several overdue boundaries: each wait returns without sleeping.
        let start = Instant::now();
        for _ in 0..4 {
            clock.wait();
        }
        assert!(start.elapsed() < Duration::from_millis(4));
    }

    // The remaining tests drive tick_at with synthetic instants: no real
    // sleeping, every duration assertion exact.

    const P: Duration = Duration::from_millis(10);

    #[test]
    fn tick_at_on_time_sleeps_one_period() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(P, start);
        // Arriving exactly at each boundary: the next sleep is one period.
        assert_eq!(clock.tick_at(start), P);
        assert_eq!(clock.tick_at(start + P), P);
        assert_eq!(clock.tick_at(start + 2 * P), P);
    }

    #[test]
    fn tick_at_early_arrival_sleeps_the_remainder() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(P, start);
        // 3 ms into the first slot: sleep the remaining 7 ms.
        assert_eq!(clock.tick_at(start + Duration::from_millis(3)), Duration::from_millis(7));
        // 1 ms into the second: 9 ms remain to the boundary at start+2P.
        assert_eq!(clock.tick_at(start + P + Duration::from_millis(1)), Duration::from_millis(9));
    }

    #[test]
    fn tick_at_under_lag_returns_zero_until_caught_up() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(P, start);
        // A 35 ms stall straddles boundaries at 10, 20 and 30 ms: the next
        // three ticks are overdue (zero sleep) and the fourth sleeps only
        // the 5 ms back to the fixed grid — lateness never compounds.
        let late = start + Duration::from_millis(35);
        assert_eq!(clock.tick_at(late), Duration::ZERO);
        assert_eq!(clock.tick_at(late), Duration::ZERO);
        assert_eq!(clock.tick_at(late), Duration::ZERO);
        assert_eq!(clock.tick_at(late), Duration::from_millis(5));
        // Fully caught up: the cadence is the original grid, not late+i*P.
        assert_eq!(clock.tick_at(start + 4 * P), P);
    }

    #[test]
    fn tick_at_boundaries_stay_on_the_grid_after_repeated_lag() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(P, start);
        // Alternate on-time and 2.5-periods-late arrivals; sum of sleeps
        // over i ticks must equal i*P minus total lag absorbed — i.e. the
        // grid never drifts.
        let mut slept = Duration::ZERO;
        let mut now = start;
        for i in 1..=20u32 {
            if i % 4 == 0 {
                now += 2 * P + P / 2; // fall behind
            }
            let sleep = clock.tick_at(now);
            slept += sleep;
            now += sleep; // waking exactly at the boundary (ideal sleeper)
        }
        // After 20 ticks the boundary is exactly start + 21*P regardless of
        // the lag pattern: next tick from `now` sleeps (start+21P) - now.
        let expected = (start + 21 * P).saturating_duration_since(now);
        assert_eq!(clock.tick_at(now), expected);
    }

    #[test]
    fn lag_slots_counts_overdue_boundaries() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(P, start);
        // On time or early: no lag.
        assert_eq!(clock.lag_slots_at(start), 0);
        assert_eq!(clock.lag_slots_at(start + Duration::from_millis(9)), 0);
        // Past the first boundary: one overdue slot; each further period
        // adds one.
        assert_eq!(clock.lag_slots_at(start + Duration::from_millis(11)), 1);
        assert_eq!(clock.lag_slots_at(start + Duration::from_millis(21)), 2);
        assert_eq!(clock.lag_slots_at(start + Duration::from_millis(35)), 3);
        // Ticking works the lag off: after one tick the boundary advanced
        // a period, so the same instant is one slot less overdue.
        let late = start + Duration::from_millis(35);
        assert_eq!(clock.tick_at(late), Duration::ZERO);
        assert_eq!(clock.lag_slots_at(late), 2);
        // A free-running clock never lags.
        let free = SlotClock::starting_at(Duration::ZERO, start);
        assert_eq!(free.lag_slots_at(start + Duration::from_secs(5)), 0);
    }

    #[test]
    fn tick_at_free_running_never_advances_or_sleeps() {
        let start = Instant::now();
        let mut clock = SlotClock::starting_at(Duration::ZERO, start);
        for offset in [0u64, 1, 100] {
            assert_eq!(clock.tick_at(start + Duration::from_millis(offset)), Duration::ZERO);
        }
        assert!(clock.free_running());
    }
}
