//! The deterministic slot clock.
//!
//! The daemon's time base is a fixed-period tick: slot boundaries land at
//! `start + i * period` regardless of how long each slot's scheduling took,
//! so a slow slot is followed by shorter waits (catch-up) rather than by a
//! drifting cadence. A zero period free-runs: slots fire back to back with
//! no sleeping, which is what the load generator's throughput mode and the
//! CI smoke job use.

use std::time::{Duration, Instant};

/// A fixed-cadence slot ticker.
#[derive(Debug, Clone)]
pub struct SlotClock {
    period: Duration,
    next: Instant,
}

impl SlotClock {
    /// A clock ticking every `period`, starting one period from now.
    /// `Duration::ZERO` free-runs.
    pub fn new(period: Duration) -> SlotClock {
        SlotClock { period, next: Instant::now() + period }
    }

    /// The slot period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Whether the clock free-runs (zero period).
    pub fn free_running(&self) -> bool {
        self.period.is_zero()
    }

    /// Time remaining until the next slot boundary (zero when overdue or
    /// free-running) — how long intake may keep draining submissions.
    pub fn remaining(&self) -> Duration {
        if self.free_running() {
            return Duration::ZERO;
        }
        self.next.saturating_duration_since(Instant::now())
    }

    /// Blocks until the next slot boundary and schedules the one after.
    /// When the loop is behind, returns immediately (no sleep) but still
    /// advances the boundary by exactly one period, so lateness is worked
    /// off over subsequent slots instead of compounding.
    pub fn wait(&mut self) {
        if self.free_running() {
            return;
        }
        let now = Instant::now();
        if let Some(sleep) = self.next.checked_duration_since(now) {
            std::thread::sleep(sleep);
        }
        self.next += self.period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_run_never_sleeps() {
        let mut clock = SlotClock::new(Duration::ZERO);
        let start = Instant::now();
        for _ in 0..1000 {
            clock.wait();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert!(clock.free_running());
        assert_eq!(clock.remaining(), Duration::ZERO);
    }

    #[test]
    fn cadence_is_fixed_not_drifting() {
        let mut clock = SlotClock::new(Duration::from_millis(2));
        let start = Instant::now();
        for _ in 0..5 {
            clock.wait();
        }
        let elapsed = start.elapsed();
        // 5 ticks of 2 ms: at least 10 ms, and catch-up keeps it close.
        assert!(elapsed >= Duration::from_millis(10), "elapsed {elapsed:?}");
    }

    #[test]
    fn lateness_is_worked_off() {
        let mut clock = SlotClock::new(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        // Several overdue boundaries: each wait returns without sleeping.
        let start = Instant::now();
        for _ in 0..4 {
            clock.wait();
        }
        assert!(start.elapsed() < Duration::from_millis(4));
    }
}
