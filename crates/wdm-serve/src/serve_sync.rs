//! Daemon coordination primitives, model-checkable under loom.
//!
//! Everything the four server roles (acceptor, per-connection readers,
//! coordinator slot loop, results writer — see [`crate::server`]) use to
//! talk *across threads* lives here, built on `cfg(loom)`-swappable
//! primitives exactly like [`wdm_sim::sweep_sync`]:
//!
//! * [`bounded`] — the bounded blocking channel (`sync_channel` semantics)
//!   used for both the reader→coordinator intake hand-off and the
//!   everyone→results event stream. Backpressure is the bound: a flooding
//!   client stalls its own reader, never the daemon's memory;
//! * [`StopFlag`] — the accept-gate the coordinator raises at shutdown;
//! * [`SlotSequence`] — the published-slot counter proving per-slot
//!   sequence monotonicity between the coordinator (publisher) and the
//!   results writer (confirmer);
//! * [`ShardQueues`] — the bounded per-destination admission queues behind
//!   [`crate::SlotEngine`]: batch-atomic admission, deny-when-full, drained
//!   fully every slot.
//!
//! Under `--cfg loom` (set by `cargo xtask loom` via `RUSTFLAGS`) the
//! mutexes/condvars/atomics below come from the in-tree `loom` shim, and
//! `wdm-serve/tests/loom_serve.rs` explores **every** sequentially
//! consistent interleaving of the intake → admit → slot → results protocol,
//! proving no-lost-batch, no-double-grant, slot-sequence monotonicity,
//! results-written-before-join, and clean shutdown with in-flight frames.
//!
//! # Lock hierarchy
//!
//! Every mutex in this module is a **leaf** lock: no code path acquires any
//! other lock while holding one (`cargo xtask lint`'s `lock_order` pass
//! enforces the declared hierarchy workspace-wide). Channel condvar
//! notifies are always issued while holding the channel's state lock — the
//! discipline the loom shim's `Condvar` model requires for soundness.
//!
//! # The shutdown drain order
//!
//! This is the daemon's *single* documented teardown sequence; `server.rs`
//! implements it and the loom model replays it with in-flight frames:
//!
//! 1. The coordinator decides to stop (client SHUTDOWN frame or
//!    `max_slots`) and keeps running slots until every already-admitted
//!    request has been answered (`pending() == 0`) — queued work is never
//!    dropped.
//! 2. The coordinator raises the [`StopFlag`] and joins the acceptor: no
//!    new connections or reader threads exist past this point.
//! 3. The coordinator sends the final `Finish` event and drops its results
//!    sender. The results writer drains the (already fully populated)
//!    event queue in order — replies strictly before their slot's
//!    completion broadcast — then flushes and closes every socket.
//! 4. The coordinator joins the results writer, then every reader: their
//!    sockets are closed (step 3), so blocked reads fail and the readers
//!    exit. A reader racing shutdown sees a typed [`SendError`] from the
//!    intake channel — never a hang, never a silent drop.
//! 5. The intake receiver is dropped last, after the readers are joined.

use std::collections::VecDeque;

#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, MutexGuard};

use std::sync::Arc;
#[cfg(not(loom))]
use std::time::{Duration, Instant};

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Locks a channel-state mutex, riding through poisoning: the state is a
/// plain queue plus liveness counters, valid at every instruction boundary,
/// and a panicking peer must not wedge the teardown paths that run next.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What sits behind a channel's state mutex. The sender count and receiver
/// liveness live *inside* the lock so disconnect checks cost no extra
/// shared operations (one lock acquisition per send/recv keeps the loom
/// decision tree small).
#[derive(Debug)]
struct ChanState<T> {
    queue: VecDeque<T>,
    /// Live [`Sender`] clones; 0 means `recv` on an empty queue reports
    /// disconnection instead of blocking.
    senders: usize,
    /// The [`Receiver`] is alive; false fails every send with the value.
    rx_alive: bool,
}

#[derive(Debug)]
struct Chan<T> {
    state: Mutex<ChanState<T>>,
    /// Capacity bound (immutable; outside the lock).
    cap: usize,
    /// Signalled (lock held) when the queue gains an item or the last
    /// sender disconnects.
    not_empty: Condvar,
    /// Signalled (lock held) when the queue loses an item or the receiver
    /// disconnects.
    not_full: Condvar,
}

/// Creates a bounded blocking channel with `std::sync::mpsc::sync_channel`
/// semantics: `send` blocks once `cap` items are in flight (`cap` is
/// clamped to at least 1 — rendezvous channels are not provided), `recv`
/// blocks on empty, and either side disconnecting turns the other side's
/// blocking calls into typed errors. Built on the `cfg(loom)`-swappable
/// mutex + condvar pair so `cargo xtask loom` can model it exhaustively.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState { queue: VecDeque::new(), senders: 1, rx_alive: true }),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

/// The sending half of a [`bounded`] channel. Cloneable; the channel
/// disconnects for the receiver when the last clone drops.
#[derive(Debug)]
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Blocking send: waits while the channel is full. Fails — returning
    /// the value — once the receiver is gone, so no event is ever silently
    /// dropped (`cargo xtask lint`'s `channels` pass bans discarding the
    /// result).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock(&self.chan.state);
        while state.rx_alive && state.queue.len() >= self.chan.cap {
            state =
                self.chan.not_full.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if !state.rx_alive {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        // Notify while holding the lock (loom-model soundness requirement).
        self.chan.not_empty.notify_all();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.chan.state).senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan.state);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver blocked on an empty queue so it can observe
            // the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

/// The receiving half of a [`bounded`] channel (single consumer).
#[derive(Debug)]
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Blocking receive: waits for an item, or reports [`RecvError`] once
    /// the queue is empty *and* every sender is gone (queued items are
    /// always delivered before the disconnect — the drain guarantee the
    /// shutdown order relies on).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = lock(&self.chan.state);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.chan.not_full.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state =
                self.chan.not_empty.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = lock(&self.chan.state);
        if let Some(value) = state.queue.pop_front() {
            self.chan.not_full.notify_all();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receive with a deadline, for the coordinator's slot-boundary intake
    /// window. Not available under `--cfg loom`: the model has no clock, so
    /// the loom build delegates to blocking [`Receiver::recv`] — model code
    /// must drive shutdown through disconnects, which is exactly what the
    /// drain order does.
    #[cfg(not(loom))]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut state = lock(&self.chan.state);
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.chan.not_full.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let Some(deadline) = deadline else {
                // Effectively-infinite timeout: block without a deadline.
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            };
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .chan
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    /// Loom stand-in for [`Receiver::recv_timeout`] (see above): blocks
    /// until an item or a disconnect — timeouts are not modeled.
    #[cfg(loom)]
    pub fn recv_timeout(&self, _timeout: core::time::Duration) -> Result<T, RecvTimeoutError> {
        self.recv().map_err(|RecvError| RecvTimeoutError::Disconnected)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.chan.state);
        state.rx_alive = false;
        // Senders blocked on a full queue must wake to observe the
        // disconnect and get their value back.
        self.chan.not_full.notify_all();
    }
}

/// The shutdown gate the coordinator raises and the acceptor polls (step 2
/// of the drain order). A plain `bool` behind the loom-swappable atomic so
/// the model can prove raise-before-join ordering.
#[derive(Debug, Default)]
pub struct StopFlag {
    flag: AtomicUsize,
}

impl StopFlag {
    /// A lowered flag.
    pub fn new() -> StopFlag {
        StopFlag { flag: AtomicUsize::new(0) }
    }

    /// Raises the flag (idempotent).
    pub fn raise(&self) {
        self.flag.store(1, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_raised(&self) -> bool {
        self.flag.load(Ordering::SeqCst) != 0
    }
}

/// The published-slot counter shared coordinator → results writer.
///
/// The coordinator [`publish`](SlotSequence::publish)es each slot *before*
/// enqueuing its `SlotDone` event; the results writer
/// [`confirm`](SlotSequence::confirm)s on receipt. Both sides assert the
/// monotone-dense discipline (slot `s` is published exactly once, after
/// `s-1`), so a duplicated, reordered, or skipped slot broadcast trips an
/// assertion in every build — and the loom model proves no interleaving
/// can trip it.
#[derive(Debug, Default)]
pub struct SlotSequence {
    published: AtomicUsize,
}

impl SlotSequence {
    /// A sequence with nothing published.
    pub fn new() -> SlotSequence {
        SlotSequence { published: AtomicUsize::new(0) }
    }

    /// Coordinator-side: marks `slot` complete. Single-publisher: asserts
    /// the sequence stays monotone-dense.
    pub fn publish(&self, slot: u64) {
        let prev = self.published.fetch_add(1, Ordering::SeqCst);
        assert!(
            u64::try_from(prev) == Ok(slot),
            "slot sequence must be monotone-dense: publishing {slot} after {prev}"
        );
    }

    /// Slots published so far (the next slot to publish).
    pub fn published(&self) -> u64 {
        let count = self.published.load(Ordering::SeqCst);
        let Ok(count) = u64::try_from(count) else { unreachable!("published count exceeds u64") };
        count
    }

    /// Results-side: asserts `slot` was published before its completion
    /// broadcast was observed (publish-before-notify ordering).
    pub fn confirm(&self, slot: u64) {
        let published = self.published();
        assert!(
            slot < published,
            "slot {slot} broadcast before publication (published: {published})"
        );
    }
}

/// Why [`ShardQueues::try_admit`] refused a request; carries the value back
/// so the caller can answer the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum AdmitRejection<T> {
    /// The shard index is out of range for this queue set.
    InvalidShard(T),
    /// The shard's bounded queue is full — retry next slot (queues drain
    /// fully every slot, so the hint is exact).
    Full(T),
}

/// Bounded per-destination-fiber admission queues — the paper's per-output
/// partition, extracted from the slot engine so the admission policy
/// (batch-atomic, deny-when-full, drained fully every slot) is one
/// auditable structure the loom model can drive directly.
///
/// Owned by the coordinator thread; cross-thread hand-off happens *before*
/// admission (the intake channel) so a client batch travels as one event
/// and can never be split across a slot boundary.
#[derive(Debug)]
pub struct ShardQueues<T> {
    queues: Vec<VecDeque<T>>,
    capacity: usize,
}

impl<T> ShardQueues<T> {
    /// `shards` bounded FIFO queues of `capacity` each (clamped to ≥ 1).
    pub fn new(shards: usize, capacity: usize) -> ShardQueues<T> {
        ShardQueues {
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            capacity: capacity.max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Per-shard capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits `item` into shard `shard`'s queue, or rejects it (returning
    /// the item) when the shard is unknown or full. Never buffers without
    /// bound.
    pub fn try_admit(&mut self, shard: usize, item: T) -> Result<(), AdmitRejection<T>> {
        let Some(queue) = self.queues.get_mut(shard) else {
            return Err(AdmitRejection::InvalidShard(item));
        };
        if queue.len() >= self.capacity {
            return Err(AdmitRejection::Full(item));
        }
        queue.push_back(item);
        Ok(())
    }

    /// Items waiting across all shards.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Drains every shard (shard order, FIFO within a shard) into `sink`.
    /// Allocation-free: part of the zero-alloc slot loop.
    pub fn drain_into(&mut self, mut sink: impl FnMut(T)) {
        for queue in &mut self.queues {
            while let Some(item) = queue.pop_front() {
                sink(item);
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::{
        bounded, AdmitRejection, RecvTimeoutError, ShardQueues, SlotSequence, StopFlag,
        TryRecvError,
    };
    use std::time::Duration;

    #[test]
    fn channel_delivers_in_order_and_reports_disconnects() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn queued_items_survive_sender_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "drain before disconnect");
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_to_dead_receiver_returns_the_value() {
        let (tx, rx) = bounded::<String>(2);
        drop(rx);
        let err = tx.send("lost?".to_owned()).unwrap_err();
        assert_eq!(err.0, "lost?");
    }

    #[test]
    fn full_channel_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2).map(|()| "delivered"));
        // The blocked send completes once we make room.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(sender.join().unwrap(), Ok("delivered"));
    }

    #[test]
    fn blocked_send_fails_when_receiver_drops() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        let err = sender.join().unwrap().unwrap_err();
        assert_eq!(err.0, 2, "the undeliverable value comes back");
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn clone_keeps_channel_alive_until_last_sender() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(3).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn stop_flag_is_sticky() {
        let flag = StopFlag::new();
        assert!(!flag.is_raised());
        flag.raise();
        flag.raise();
        assert!(flag.is_raised());
    }

    #[test]
    fn slot_sequence_publishes_and_confirms() {
        let seq = SlotSequence::new();
        assert_eq!(seq.published(), 0);
        seq.publish(0);
        seq.confirm(0);
        seq.publish(1);
        seq.confirm(1);
        seq.confirm(0);
        assert_eq!(seq.published(), 2);
    }

    #[test]
    #[should_panic(expected = "monotone-dense")]
    fn slot_sequence_rejects_skips() {
        let seq = SlotSequence::new();
        seq.publish(1);
    }

    #[test]
    #[should_panic(expected = "broadcast before publication")]
    fn slot_sequence_rejects_early_confirm() {
        let seq = SlotSequence::new();
        seq.confirm(0);
    }

    #[test]
    fn shard_queues_bound_admission_and_drain_in_order() {
        let mut q: ShardQueues<u32> = ShardQueues::new(2, 2);
        assert_eq!(q.shards(), 2);
        assert_eq!(q.capacity(), 2);
        q.try_admit(0, 10).unwrap();
        q.try_admit(1, 20).unwrap();
        q.try_admit(0, 11).unwrap();
        assert_eq!(q.try_admit(0, 12), Err(AdmitRejection::Full(12)));
        assert_eq!(q.try_admit(9, 13), Err(AdmitRejection::InvalidShard(13)));
        assert_eq!(q.pending(), 3);
        let mut drained = Vec::new();
        q.drain_into(|v| drained.push(v));
        assert_eq!(drained, vec![10, 11, 20], "shard order, FIFO within");
        assert!(q.is_empty());
        // Draining reopens admission.
        q.try_admit(0, 14).unwrap();
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut q: ShardQueues<u8> = ShardQueues::new(1, 0);
        assert_eq!(q.capacity(), 1);
        q.try_admit(0, 1).unwrap();
        assert_eq!(q.try_admit(0, 2), Err(AdmitRejection::Full(2)));
    }
}
