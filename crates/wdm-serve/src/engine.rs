//! The TCP-free slot engine: bounded per-destination admission queues in
//! front of the offline [`Interconnect`].
//!
//! This is the daemon's whole decision core, deliberately free of any I/O
//! so the differential and zero-allocation tests can drive it directly.
//! Requests are admitted into one bounded queue per destination fiber (the
//! shard boundary — the paper's per-output-fiber partition); each slot
//! drains the queues in fiber order, FIFO within a fiber, and feeds the
//! batch to [`Interconnect::advance_slot_into`], which runs the `N`
//! independent [`wdm_interconnect::FiberUnit`] schedulers. Because the
//! daemon and the offline engine execute the *same* code on the *same*
//! input order, a recorded session replays bit-for-bit.
//!
//! Overload policy: admission never buffers without bound. A full shard
//! queue denies immediately with [`DenyReason::QueueFull`] and a
//! retry-after hint of one slot (queues drain fully every slot, so the
//! hint is exact, not heuristic).
//!
//! At steady state (queues and scratch buffers grown to their working
//! sizes, trace recording off) [`SlotEngine::run_slot`] performs zero heap
//! allocations — pinned by the `wdm-alloc-count` regression.

use wdm_attr::{allow_reach, hot_path, panic_free};
use wdm_core::{Conversion, ConversionKind, Error, Policy};
use wdm_interconnect::{
    ConnectionRequest, DisruptionImpact, Interconnect, InterconnectConfig, PreemptionPolicy,
    RejectReason, Reservation, ReservationRequest, SlotResult, DEFAULT_RESERVATION_HORIZON,
};
use wdm_scenario::{DisruptionChange, DisruptionEvent};
use wdm_sim::trace::{SessionTrace, TraceConfig};

use crate::protocol::{DenyReason, ReserveRequest, SubmitRequest};
use crate::serve_sync::{AdmitRejection, ShardQueues};

/// Configuration of a [`SlotEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of input = output fibers (`N`).
    pub n: usize,
    /// The wavelength conversion scheme.
    pub conversion: Conversion,
    /// Wavelength-level scheduling policy.
    pub policy: Policy,
    /// Bounded admission-queue capacity per destination-fiber shard.
    pub queue_capacity: usize,
    /// Record a [`SessionTrace`] for offline replay (allocates per slot —
    /// leave off when pinning the zero-allocation path).
    pub record_trace: bool,
    /// Advance-reservation admission horizon in slots.
    pub reservation_horizon: u64,
    /// How activating reservations meet same-slot cell traffic.
    pub preemption: PreemptionPolicy,
}

impl EngineConfig {
    /// A config with the daemon's default shard queue capacity (1024).
    pub fn new(n: usize, conversion: Conversion, policy: Policy) -> EngineConfig {
        EngineConfig {
            n,
            conversion,
            policy,
            queue_capacity: 1024,
            record_trace: false,
            reservation_horizon: DEFAULT_RESERVATION_HORIZON,
            preemption: PreemptionPolicy::default(),
        }
    }

    /// Sets the per-shard admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> EngineConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Enables session-trace recording.
    pub fn with_trace(mut self) -> EngineConfig {
        self.record_trace = true;
        self
    }

    /// Sets the advance-reservation admission horizon.
    pub fn with_reservation_horizon(mut self, horizon: u64) -> EngineConfig {
        self.reservation_horizon = horizon;
        self
    }

    /// Sets the reservation preemption policy.
    pub fn with_preemption(mut self, preemption: PreemptionPolicy) -> EngineConfig {
        self.preemption = preemption;
        self
    }
}

/// The daemon's answer to one submitted request. Must be delivered — a
/// dropped reply strands the client's request forever, hence `must_use`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct Reply {
    /// Connection the submitting client arrived on.
    pub conn: u64,
    /// The client-chosen request id.
    pub id: u64,
    /// Slot the decision was made.
    pub slot: u64,
    /// Grant or deny.
    pub verdict: Verdict,
}

/// The decision inside a [`Reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Granted: an output channel was assigned on the destination fiber.
    Granted {
        /// Per-slot grant sequence number.
        seq: u64,
        /// The assigned output wavelength.
        output_wavelength: u32,
    },
    /// Denied, with the reason and a retry hint.
    Denied {
        /// Why.
        reason: DenyReason,
        /// Slots to wait before resubmitting (0 = don't retry).
        retry_after_slots: u32,
    },
    /// An advance reservation was admitted into the capacity ledger; a
    /// `Granted` or `Denied` follows when the start slot runs.
    Reserved {
        /// The ledger-assigned reservation id (usable in a release).
        reservation: u64,
        /// Absolute slot the hold will activate.
        start_slot: u64,
    },
}

/// What one slot did, in aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub struct SlotSummary {
    /// The slot that just ran (0-based).
    pub slot: u64,
    /// Requests drained from the shard queues into the engine.
    pub admitted: usize,
    /// Requests granted.
    pub grants: usize,
    /// Requests denied (source-busy + output contention).
    pub denies: usize,
    /// Earlier connections that completed at the start of this slot.
    pub completed: usize,
    /// Advance reservations that activated and were granted this slot.
    pub reservation_grants: usize,
    /// Advance reservations that expired at activation this slot.
    pub reservation_expiries: usize,
}

/// A queued request remembering which connection and client id it answers.
#[derive(Debug, Clone, Copy)]
struct Tagged {
    conn: u64,
    id: u64,
    request: ConnectionRequest,
}

/// One admitted-but-not-yet-activated reservation: the ledger id, the
/// owning connection, the client-chosen wire id, and the destination fiber
/// (kept so an outage cancelling the booking can answer its client — the
/// ledger reports cancellations only as a count).
#[derive(Debug, Clone, Copy)]
struct Hold {
    rid: u64,
    conn: u64,
    id: u64,
    dst_fiber: usize,
}

/// Bounded per-destination admission queues feeding the offline engine —
/// see the module docs for the full slot discipline.
#[derive(Debug)]
pub struct SlotEngine {
    engine: Interconnect,
    policy: Policy,
    queues: ShardQueues<Tagged>,
    // Per-slot scratch, reused across slots (zero allocations at steady
    // state): the drained batch, its (conn, id) tags, the engine result,
    // and the consumed flags used to map grants back to tags.
    batch: Vec<ConnectionRequest>,
    tags: Vec<(u64, u64)>,
    result: SlotResult,
    consumed: Vec<bool>,
    // Admitted-but-not-yet-activated reservations. An entry leaves the
    // map exactly once — at activation (grant or expiry), at an
    // owner-checked release, or when a fiber outage cancels the booking
    // (the client is answered immediately, never left stranded).
    holds: Vec<Hold>,
    trace: Option<SessionTrace>,
}

impl SlotEngine {
    /// Builds the engine. Fails on a zero-fiber config or if `n`/`k` do not
    /// fit the wire protocol's `u32` fields.
    pub fn new(config: EngineConfig) -> Result<SlotEngine, Error> {
        let k = config.conversion.k();
        if u32::try_from(config.n).is_err() || u32::try_from(k).is_err() {
            return Err(Error::LengthMismatch {
                expected: u32::MAX as usize,
                actual: config.n.max(k),
            });
        }
        let engine = Interconnect::new(
            InterconnectConfig::packet_switch(config.n, config.conversion)
                .with_policy(config.policy)
                .with_reservation_horizon(config.reservation_horizon)
                .with_preemption(config.preemption),
        )?;
        let trace = config.record_trace.then(|| {
            let (e, f) = (config.conversion.e(), config.conversion.f());
            let mut tc = if config.conversion.is_full() {
                let mut full = TraceConfig::circular(config.n, k, e, f, config.policy);
                full.kind = "full".to_owned();
                full
            } else {
                match config.conversion.kind() {
                    ConversionKind::Circular => {
                        TraceConfig::circular(config.n, k, e, f, config.policy)
                    }
                    ConversionKind::NonCircular => {
                        TraceConfig::non_circular(config.n, k, e, f, config.policy)
                    }
                }
            };
            tc.reservation_horizon = config.reservation_horizon;
            tc.preemption = match config.preemption {
                PreemptionPolicy::ReservedFirst => "reserved_first".to_owned(),
                PreemptionPolicy::Compete => "compete".to_owned(),
            };
            SessionTrace::new(tc)
        });
        Ok(SlotEngine {
            engine,
            policy: config.policy,
            queues: ShardQueues::new(config.n, config.queue_capacity),
            batch: Vec::new(),
            tags: Vec::new(),
            result: SlotResult::default(),
            consumed: Vec::new(),
            holds: Vec::new(),
            trace,
        })
    }

    /// Number of fibers per side.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// Wavelengths per fiber.
    pub fn k(&self) -> usize {
        self.engine.k()
    }

    /// The scheduling policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The next slot to run (slots completed so far).
    pub fn slot(&self) -> u64 {
        self.engine.slot()
    }

    /// Requests waiting in the shard queues.
    pub fn pending(&self) -> usize {
        self.queues.pending()
    }

    /// In-flight multi-slot connections.
    pub fn active_connections(&self) -> usize {
        self.engine.active_connections()
    }

    /// Admitted-but-not-yet-activated reservations.
    pub fn pending_reservations(&self) -> usize {
        self.holds.len()
    }

    /// Warm-start scheduling counters summed over every fiber scheduler
    /// since startup (or the last [`Interconnect::reset_warm`] downstream).
    pub fn warm_stats(&self) -> wdm_core::WarmStats {
        self.engine.warm_stats()
    }

    /// True when running a slot would be a semantic no-op: nothing queued,
    /// nothing in flight to age, and no reservation waiting for its start
    /// slot. Free-running servers skip these slots (skipping is sound
    /// precisely because the engine state is untouched).
    pub fn is_idle(&self) -> bool {
        self.engine.active_connections() == 0
            && self.queues.is_empty()
            && self.engine.reservations().is_empty()
    }

    /// The recorded session so far, if recording is on.
    pub fn trace(&self) -> Option<&SessionTrace> {
        self.trace.as_ref()
    }

    /// Takes the recorded session, leaving recording off.
    pub fn take_trace(&mut self) -> Option<SessionTrace> {
        self.trace.take()
    }

    /// Admits one request into its destination shard's bounded queue.
    /// Returns an immediate deny [`Reply`] when the request is invalid for
    /// this interconnect or the shard queue is full; `None` means queued —
    /// the verdict arrives from the next [`Self::run_slot`].
    #[hot_path]
    pub fn submit(&mut self, conn: u64, req: SubmitRequest) -> Option<Reply> {
        let slot = self.engine.slot();
        let deny = |reason, retry| {
            Some(Reply {
                conn,
                id: req.id,
                slot,
                verdict: Verdict::Denied { reason, retry_after_slots: retry },
            })
        };
        let (n, k) = (self.engine.n(), self.engine.k());
        let (src_fiber, src_wavelength, dst_fiber) =
            (req.src_fiber as usize, req.src_wavelength as usize, req.dst_fiber as usize);
        if src_fiber >= n || dst_fiber >= n || src_wavelength >= k || req.duration == 0 {
            return deny(DenyReason::InvalidRequest, 0);
        }
        let tagged = Tagged {
            conn,
            id: req.id,
            request: ConnectionRequest {
                src_fiber,
                src_wavelength,
                dst_fiber,
                duration: req.duration,
            },
        };
        match self.queues.try_admit(dst_fiber, tagged) {
            Ok(()) => None,
            Err(AdmitRejection::InvalidShard(_)) => deny(DenyReason::InvalidRequest, 0),
            // Queues drain fully every slot, so "one slot" is exact.
            Err(AdmitRejection::Full(_)) => deny(DenyReason::QueueFull, 1),
        }
    }

    /// Admits an advance reservation, answering immediately: `Reserved`
    /// carries the ledger id and absolute start slot; a denial carries the
    /// typed reason (capacity, horizon, or invalid fields). Unlike cell
    /// submission there is no queueing — the capacity ledger decides now.
    pub fn reserve(&mut self, conn: u64, req: ReserveRequest) -> Reply {
        let slot = self.engine.slot();
        let deny = |reason| Reply {
            conn,
            id: req.id,
            slot,
            verdict: Verdict::Denied { reason, retry_after_slots: 0 },
        };
        let (n, k) = (self.engine.n(), self.engine.k());
        let (src_fiber, src_wavelength, dst_fiber) =
            (req.src_fiber as usize, req.src_wavelength as usize, req.dst_fiber as usize);
        if src_fiber >= n || dst_fiber >= n || src_wavelength >= k || req.duration == 0 {
            return deny(DenyReason::InvalidRequest);
        }
        let start_slot = slot.saturating_add(u64::from(req.start_in));
        let request = ReservationRequest {
            src_fiber,
            src_wavelength,
            dst_fiber,
            start_slot,
            duration: req.duration,
        };
        match self.engine.reserve(request) {
            Ok(rid) => {
                self.holds.push(Hold { rid, conn, id: req.id, dst_fiber });
                if let Some(trace) = &mut self.trace {
                    trace.record_reservation(Reservation { id: rid, request });
                }
                Reply {
                    conn,
                    id: req.id,
                    slot,
                    verdict: Verdict::Reserved { reservation: rid, start_slot },
                }
            }
            Err(Error::ReservationHorizonExceeded { .. }) => deny(DenyReason::HorizonExceeded),
            Err(Error::ReservationCapacityExhausted { .. }) => deny(DenyReason::CapacityExhausted),
            Err(_) => deny(DenyReason::InvalidRequest),
        }
    }

    /// Cancels a pending reservation, owner-checked: only the connection
    /// that made the reservation may release it. Returns `false` (a silent
    /// no-op on the wire) for unknown ids, foreign owners, or reservations
    /// that already activated.
    pub fn release(&mut self, conn: u64, reservation_id: u64) -> bool {
        let Some(pos) = self.holds.iter().position(|h| h.rid == reservation_id && h.conn == conn)
        else {
            return false;
        };
        let cancelled = self.engine.cancel_reservation(reservation_id);
        debug_assert!(cancelled, "a registered hold is always pending in the store");
        self.holds.swap_remove(pos);
        if let Some(trace) = &mut self.trace {
            trace.record_release(reservation_id);
        }
        true
    }

    /// Runs one slot: drains every shard queue (fiber order, FIFO within a
    /// fiber), schedules the batch through the offline engine, and appends
    /// one [`Reply`] per drained request to `out` — grants first in
    /// per-slot sequence order (activated reservations lead the stream),
    /// then denies in engine rejection order, then reservation expiries.
    #[hot_path]
    #[panic_free]
    pub fn run_slot(&mut self, out: &mut Vec<Reply>) -> SlotSummary {
        let slot = self.engine.slot();
        self.batch.clear();
        self.tags.clear();
        let SlotEngine { queues, batch, tags, .. } = self;
        queues.drain_into(|t| {
            batch.push(t.request);
            tags.push((t.conn, t.id));
        });
        expect_invariant(
            self.engine.advance_slot_into(&self.batch, &mut self.result),
            "submit() validated every queued request",
        );
        self.consumed.clear();
        self.consumed.resize(self.batch.len(), false);
        // Activated reservations lead the grant stream: under the default
        // ReservedFirst preemption they were scheduled first, and keeping
        // one fixed stream order makes replays deterministic either way.
        let mut reservation_grants = 0usize;
        for g in &self.result.reservation_grants {
            let (conn, id) = claim_hold(&mut self.holds, g.reservation);
            let output_wavelength = expect_invariant(
                u32::try_from(g.grant.output_wavelength),
                "k fits in u32 (checked at construction)",
            );
            out.push(Reply {
                conn,
                id,
                slot,
                verdict: Verdict::Granted { seq: reservation_grants as u64, output_wavelength },
            });
            reservation_grants += 1;
        }
        let mut grants = 0usize;
        for (seq, g) in self.result.grants.iter().enumerate() {
            let (conn, id) = claim_tag(&self.batch, &mut self.consumed, &self.tags, &g.request);
            let output_wavelength = expect_invariant(
                u32::try_from(g.output_wavelength),
                "k fits in u32 (checked at construction)",
            );
            out.push(Reply {
                conn,
                id,
                slot,
                verdict: Verdict::Granted {
                    seq: (reservation_grants + seq) as u64,
                    output_wavelength,
                },
            });
            grants += 1;
        }
        let mut denies = 0usize;
        for r in &self.result.rejections {
            let (conn, id) = claim_tag(&self.batch, &mut self.consumed, &self.tags, &r.request);
            let reason = match r.reason {
                RejectReason::SourceBusy => DenyReason::SourceBusy,
                RejectReason::OutputContention => DenyReason::OutputContention,
            };
            out.push(Reply {
                conn,
                id,
                slot,
                verdict: Verdict::Denied { reason, retry_after_slots: 1 },
            });
            denies += 1;
        }
        // Reservations that reached their start slot but could not
        // activate expire terminally — the ledger never retries them.
        let mut reservation_expiries = 0usize;
        for x in &self.result.reservation_expired {
            let (conn, id) = claim_hold(&mut self.holds, x.reservation);
            let reason = match x.rejection.reason {
                RejectReason::SourceBusy => DenyReason::SourceBusy,
                RejectReason::OutputContention => DenyReason::OutputContention,
            };
            out.push(Reply {
                conn,
                id,
                slot,
                verdict: Verdict::Denied { reason, retry_after_slots: 0 },
            });
            reservation_expiries += 1;
        }
        if let Some(trace) = &mut self.trace {
            trace.record_slot_full(
                &self.batch,
                &self.result.grants,
                &self.result.reservation_grants,
            );
        }
        SlotSummary {
            slot,
            admitted: self.batch.len(),
            grants,
            denies,
            completed: self.result.completed,
            reservation_grants,
            reservation_expiries,
        }
    }

    /// Applies one scenario disruption event against the live engine,
    /// before the affected slot is scheduled: converter failures shrink
    /// the fiber's conversion scheme (dropping in-flight connections the
    /// narrow range cannot realise), recovery restores the baseline, an
    /// outage takes the fiber dark, and rejoin brings it back cold.
    ///
    /// An outage also cancels every pending reservation booked toward the
    /// dark fiber; each cancelled hold's client is answered *now* with a
    /// [`DenyReason::CapacityExhausted`] deny appended to `out` — the
    /// ledger entry is gone, and a silent cancellation would strand the
    /// client forever.
    pub fn apply_disruption(
        &mut self,
        event: &DisruptionEvent,
        out: &mut Vec<Reply>,
    ) -> Result<DisruptionImpact, Error> {
        let slot = self.engine.slot();
        let impact = match event.change {
            DisruptionChange::ConverterFailure { conversion, .. } => {
                self.engine.shrink_conversion(event.fiber, conversion)?
            }
            DisruptionChange::ConverterRecovery => self.engine.restore_conversion(event.fiber)?,
            DisruptionChange::Outage => {
                let impact = self.engine.fail_fiber(event.fiber)?;
                let mut cancelled = 0usize;
                let mut i = 0;
                while i < self.holds.len() {
                    if self.holds[i].dst_fiber == event.fiber {
                        let hold = self.holds.swap_remove(i);
                        cancelled += 1;
                        if let Some(trace) = &mut self.trace {
                            trace.record_release(hold.rid);
                        }
                        out.push(Reply {
                            conn: hold.conn,
                            id: hold.id,
                            slot,
                            verdict: Verdict::Denied {
                                reason: DenyReason::CapacityExhausted,
                                retry_after_slots: 0,
                            },
                        });
                    } else {
                        i += 1;
                    }
                }
                debug_assert_eq!(
                    cancelled, impact.cancelled_reservations,
                    "every ledger cancellation answers exactly one registered hold"
                );
                impact
            }
            DisruptionChange::Rejoin => self.engine.rejoin_fiber(event.fiber)?,
        };
        Ok(impact)
    }

    /// Swaps the scheduling policy on every fiber — the degraded-mode
    /// fallback path (all-or-nothing, validated against every fiber's
    /// current conversion kind first; see
    /// [`Interconnect::set_policy_all`]).
    pub fn set_policy_all(&mut self, policy: Policy) -> Result<(), Error> {
        self.engine.set_policy_all(policy)?;
        self.policy = policy;
        Ok(())
    }
}

/// Unwraps a result whose error leg is precluded by an engine invariant;
/// the message names the invariant. Out-of-line so each precluded panic
/// rides on this one audited suppression while `run_slot`'s own body keeps
/// its panic_free obligation.
#[allow_reach(
    panic_free,
    reason = "the error legs restate invariants validated at submit()/construction time: queued requests were admitted against the engine's dimensions and k fits in u32"
)]
fn expect_invariant<T, E>(result: Result<T, E>, invariant: &'static str) -> T {
    match result {
        Ok(v) => v,
        Err(_) => unreachable!("{invariant}"),
    }
}

/// Maps an activated reservation back to the (conn, id) tag registered at
/// admission, consuming the hold entry. Exhaustive: the engine activates
/// every registered reservation exactly once.
#[allow_reach(
    panic_free,
    reason = "the engine activates every registered reservation exactly once (ledger invariant, covered by the serve round-trip tests); a missing hold is unrecoverable state corruption"
)]
fn claim_hold(holds: &mut Vec<Hold>, reservation: u64) -> (u64, u64) {
    let Some(pos) = holds.iter().position(|h| h.rid == reservation) else {
        unreachable!("engine activated a reservation that was never registered")
    };
    let hold = holds.swap_remove(pos);
    (hold.conn, hold.id)
}

/// Maps an engine grant/rejection back to the (conn, id) tag of the first
/// unconsumed batch entry carrying the same request. Exhaustive: the engine
/// answers every admitted request exactly once per slot.
#[allow_reach(
    panic_free,
    reason = "consumed and tags are resized to batch.len() every slot and the engine answers every admitted request exactly once; an unmatched reply is unrecoverable state corruption"
)]
fn claim_tag(
    batch: &[ConnectionRequest],
    consumed: &mut [bool],
    tags: &[(u64, u64)],
    request: &ConnectionRequest,
) -> (u64, u64) {
    for (j, b) in batch.iter().enumerate() {
        if !consumed[j] && b == request {
            consumed[j] = true;
            return tags[j];
        }
    }
    unreachable!("engine replied to a request that was never admitted")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(record: bool) -> SlotEngine {
        let conversion = Conversion::symmetric_circular(6, 3).unwrap();
        let mut config = EngineConfig::new(4, conversion, Policy::Auto).with_queue_capacity(4);
        if record {
            config = config.with_trace();
        }
        SlotEngine::new(config).unwrap()
    }

    fn req(id: u64, src_fiber: u32, w: u32, dst: u32, duration: u32) -> SubmitRequest {
        SubmitRequest { id, src_fiber, src_wavelength: w, dst_fiber: dst, duration }
    }

    #[test]
    fn grant_and_deny_replies_carry_tags() {
        let mut e = engine(false);
        assert!(e.submit(1, req(10, 0, 0, 0, 1)).is_none());
        assert!(e.submit(2, req(20, 1, 0, 0, 3)).is_none());
        // Same input channel as id 10: engine denies one as SourceBusy.
        assert!(e.submit(1, req(11, 0, 0, 1, 1)).is_none());
        let mut out = Vec::new();
        let summary = e.run_slot(&mut out);
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.grants, 2);
        assert_eq!(summary.denies, 1);
        assert_eq!(out.len(), 3);
        let granted: Vec<u64> = out
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Granted { .. }))
            .map(|r| r.id)
            .collect();
        assert_eq!(granted, vec![10, 20]);
        let denied = out.iter().find(|r| matches!(r.verdict, Verdict::Denied { .. })).unwrap();
        assert_eq!(denied.id, 11);
        assert_eq!(denied.conn, 1);
        assert!(matches!(denied.verdict, Verdict::Denied { reason: DenyReason::SourceBusy, .. }));
    }

    #[test]
    fn invalid_requests_denied_at_admission() {
        let mut e = engine(false);
        for bad in [
            req(1, 4, 0, 0, 1), // src fiber out of range
            req(2, 0, 6, 0, 1), // wavelength out of range
            req(3, 0, 0, 4, 1), // dst fiber out of range
            req(4, 0, 0, 0, 0), // zero duration
        ] {
            let reply = e.submit(0, bad).unwrap();
            assert!(matches!(
                reply.verdict,
                Verdict::Denied { reason: DenyReason::InvalidRequest, retry_after_slots: 0 }
            ));
        }
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn full_queue_denies_with_retry_hint() {
        let mut e = engine(false);
        for id in 0..4 {
            assert!(e.submit(0, req(id, 0, id as u32, 2, 1)).is_none());
        }
        let reply = e.submit(0, req(9, 1, 0, 2, 1)).unwrap();
        assert!(matches!(
            reply.verdict,
            Verdict::Denied { reason: DenyReason::QueueFull, retry_after_slots: 1 }
        ));
        // Other shards are unaffected by one full queue.
        assert!(e.submit(0, req(10, 1, 0, 3, 1)).is_none());
        // The queue drains next slot, reopening admission.
        let mut out = Vec::new();
        let _ = e.run_slot(&mut out);
        assert_eq!(e.pending(), 0);
        assert!(e.submit(0, req(11, 1, 1, 2, 1)).is_none());
    }

    #[test]
    fn multi_slot_connections_hold_and_complete() {
        let mut e = engine(false);
        assert!(e.submit(0, req(1, 0, 2, 0, 3)).is_none());
        let mut out = Vec::new();
        let s = e.run_slot(&mut out);
        assert_eq!(s.grants, 1);
        assert_eq!(e.active_connections(), 1);
        out.clear();
        // The same input channel is busy while the burst holds.
        assert!(e.submit(0, req(2, 0, 2, 1, 1)).is_none());
        let s = e.run_slot(&mut out);
        assert_eq!(s.denies, 1);
        out.clear();
        let s = e.run_slot(&mut out);
        assert_eq!(s.completed, 0);
        let s = e.run_slot(&mut out);
        assert_eq!(s.completed, 1);
        assert!(e.is_idle());
    }

    #[test]
    fn recorded_trace_replays_bit_identically() {
        let mut e = engine(true);
        let mut out = Vec::new();
        for slot in 0..30u64 {
            for i in 0..8u64 {
                let h = slot * 7 + i * 3;
                let _ = e.submit(
                    i % 2,
                    req(
                        slot * 100 + i,
                        (h % 4) as u32,
                        (h % 6) as u32,
                        ((h / 5) % 4) as u32,
                        1 + (h % 3) as u32,
                    ),
                );
            }
            out.clear();
            let _ = e.run_slot(&mut out);
        }
        let trace = e.take_trace().unwrap();
        assert!(trace.grant_count() > 0);
        let report = trace.replay().unwrap();
        assert_eq!(report.slots, 30);
    }

    fn rsv(
        id: u64,
        src_fiber: u32,
        w: u32,
        dst: u32,
        start_in: u32,
        duration: u32,
    ) -> ReserveRequest {
        ReserveRequest { id, src_fiber, src_wavelength: w, dst_fiber: dst, start_in, duration }
    }

    #[test]
    fn reservation_acks_then_grants_at_start_slot() {
        let mut e = engine(false);
        let reply = e.reserve(3, rsv(40, 0, 1, 2, 2, 3));
        let Verdict::Reserved { reservation, start_slot } = reply.verdict else {
            panic!("expected Reserved, got {reply:?}")
        };
        assert_eq!(start_slot, 2);
        assert_eq!((reply.conn, reply.id), (3, 40));
        assert_eq!(e.pending_reservations(), 1);
        assert!(!e.is_idle(), "a pending reservation keeps the engine live");
        let mut out = Vec::new();
        let s0 = e.run_slot(&mut out);
        let s1 = e.run_slot(&mut out);
        assert_eq!((s0.reservation_grants, s1.reservation_grants), (0, 0));
        assert!(out.is_empty());
        let s2 = e.run_slot(&mut out);
        assert_eq!(s2.reservation_grants, 1);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].conn, out[0].id, out[0].slot), (3, 40, 2));
        assert!(matches!(out[0].verdict, Verdict::Granted { seq: 0, .. }));
        assert_eq!(e.pending_reservations(), 0);
        assert_eq!(e.active_connections(), 1);
        let _ = reservation;
    }

    #[test]
    fn released_reservation_never_activates() {
        let mut e = engine(false);
        let reply = e.reserve(3, rsv(40, 0, 1, 2, 1, 2));
        let Verdict::Reserved { reservation, .. } = reply.verdict else { panic!() };
        // Owner check: a different connection cannot release it.
        assert!(!e.release(4, reservation));
        assert!(e.release(3, reservation));
        assert!(!e.release(3, reservation), "double release is a no-op");
        assert!(e.is_idle());
        let mut out = Vec::new();
        let s = e.run_slot(&mut out);
        let s1 = e.run_slot(&mut out);
        assert_eq!(s.reservation_grants + s1.reservation_grants, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn reservation_denials_are_typed() {
        let mut e = engine(false);
        let bad = e.reserve(0, rsv(1, 9, 0, 0, 0, 1));
        assert!(matches!(bad.verdict, Verdict::Denied { reason: DenyReason::InvalidRequest, .. }));
        let far = e.reserve(0, rsv(2, 0, 0, 0, u32::MAX, 4));
        assert!(matches!(far.verdict, Verdict::Denied { reason: DenyReason::HorizonExceeded, .. }));
        // k = 6 per fiber: the seventh overlapping hold on one fiber slot
        // exhausts bookable capacity.
        for i in 0..6u32 {
            let r = e.reserve(0, rsv(10 + u64::from(i), i % 4, i, 1, 3, 2));
            assert!(matches!(r.verdict, Verdict::Reserved { .. }), "{r:?}");
        }
        let full = e.reserve(0, rsv(99, 3, 5, 1, 3, 2));
        assert!(matches!(
            full.verdict,
            Verdict::Denied { reason: DenyReason::CapacityExhausted, .. }
        ));
    }

    #[test]
    fn expired_reservation_reports_source_busy() {
        let mut e = engine(false);
        // Book input channel (0, 1) from slot 2. Cell admission is
        // best-effort and does not consult the ledger, so a later cell
        // burst can still occupy the channel under the reservation...
        let reply = e.reserve(2, rsv(50, 0, 1, 2, 2, 2));
        assert!(matches!(reply.verdict, Verdict::Reserved { .. }));
        assert!(e.submit(1, req(7, 0, 1, 3, 3)).is_none());
        let mut out = Vec::new();
        let s = e.run_slot(&mut out);
        assert_eq!(s.grants, 1);
        out.clear();
        // ...and the reservation expires at its start slot, source-busy.
        let _ = e.run_slot(&mut out);
        out.clear();
        let s = e.run_slot(&mut out);
        assert_eq!(s.reservation_expiries, 1);
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].conn, out[0].id), (2, 50));
        assert!(matches!(
            out[0].verdict,
            Verdict::Denied { reason: DenyReason::SourceBusy, retry_after_slots: 0 }
        ));
        assert_eq!(e.pending_reservations(), 0);
    }

    #[test]
    fn mixed_session_trace_replays_bit_identically() {
        let conversion = Conversion::symmetric_circular(6, 3).unwrap();
        let config = EngineConfig::new(4, conversion, Policy::Auto).with_trace();
        let mut e = SlotEngine::new(config).unwrap();
        let mut out = Vec::new();
        let mut rid_pool: Vec<u64> = Vec::new();
        for slot in 0..40u64 {
            if slot % 3 == 0 {
                let r = e.reserve(
                    9,
                    rsv(
                        slot * 10,
                        (slot % 4) as u32,
                        (slot % 6) as u32,
                        ((slot / 2) % 4) as u32,
                        2 + (slot % 5) as u32,
                        1 + (slot % 3) as u32,
                    ),
                );
                if let Verdict::Reserved { reservation, .. } = r.verdict {
                    rid_pool.push(reservation);
                }
            }
            if slot % 7 == 0 {
                if let Some(rid) = rid_pool.pop() {
                    let _ = e.release(9, rid);
                }
            }
            for i in 0..4u64 {
                let h = slot * 5 + i * 3;
                let _ = e.submit(
                    i % 2,
                    req(
                        slot * 100 + i,
                        (h % 4) as u32,
                        (h % 6) as u32,
                        ((h / 3) % 4) as u32,
                        1 + (h % 2) as u32,
                    ),
                );
            }
            out.clear();
            let _ = e.run_slot(&mut out);
        }
        let trace = e.take_trace().unwrap();
        assert!(trace.slots.iter().any(|s| !s.reservation_grants.is_empty()));
        let report = trace.replay().unwrap();
        assert_eq!(report.slots, 40);
        assert!(report.reservation_grants > 0);
    }

    #[test]
    fn reply_slot_and_seq_are_dense() {
        let mut e = engine(false);
        let mut out = Vec::new();
        for id in 0..3 {
            assert!(e.submit(0, req(id, id as u32, id as u32, 0, 1)).is_none());
        }
        let _ = e.run_slot(&mut out);
        let seqs: Vec<u64> = out
            .iter()
            .filter_map(|r| match r.verdict {
                Verdict::Granted { seq, .. } => Some(seq),
                Verdict::Denied { .. } | Verdict::Reserved { .. } => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(out.iter().all(|r| r.slot == 0));
    }
}
