//! Scenario-driven daemon runtime: applies a compiled plan's disruption
//! timeline and degraded-mode fallback to a live [`SlotEngine`].
//!
//! The daemon and the offline simulator consume the *same*
//! [`wdm_scenario::CompiledPlan`]: `wdm-loadgen --scenario` drives the
//! request stream while this runtime fires the plan's converter failures,
//! fiber outages, recoveries, and policy fallback at their planned slots —
//! all through the engine's existing configuration path, with no wire
//! format change. Each slot the coordinator calls
//! [`ScenarioRuntime::before_slot`] once, *before*
//! [`SlotEngine::run_slot`], so a disruption at slot `s` is in force when
//! slot `s` is scheduled, exactly as in the offline run.
//!
//! The fallback controller is [`wdm_scenario::FallbackRule::decide`] — the
//! same edge-triggered hysteresis the simulator uses — but here the lag
//! trigger is live: the coordinator feeds in how many slot boundaries the
//! [`crate::SlotClock`] is currently overdue by.

use std::sync::Arc;

use wdm_core::Policy;
use wdm_scenario::CompiledPlan;

use crate::engine::{Reply, SlotEngine};
use crate::protocol::ProtocolError;

/// Aggregate of what a scenario runtime did over a run, reported in
/// [`crate::server::ServerReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use]
pub struct ScenarioSummary {
    /// Disruption events applied (strike and recovery edges both count).
    pub events_applied: usize,
    /// In-flight connections dropped by converter failures and outages.
    pub dropped_connections: usize,
    /// Pending reservations cancelled by outages (each one's client was
    /// answered with a capacity deny at cancellation time).
    pub cancelled_reservations: usize,
    /// Times the fallback controller engaged the degraded policy.
    pub fallback_engagements: u64,
    /// Times it reverted to the baseline policy.
    pub fallback_reverts: u64,
    /// Slots executed with the fallback policy in force.
    pub engaged_slots: u64,
}

/// Drives one [`CompiledPlan`] against a live [`SlotEngine`]: a cursor
/// over the plan's slot-sorted disruption events plus the fallback
/// controller's engaged/baseline state.
#[derive(Debug)]
pub struct ScenarioRuntime {
    plan: Arc<CompiledPlan>,
    cursor: usize,
    engaged: bool,
    base_policy: Policy,
    summary: ScenarioSummary,
}

impl ScenarioRuntime {
    /// Attaches a plan to an engine, validating that the plan was compiled
    /// for this topology — every event names a fiber index and every
    /// shrunk conversion a wavelength count that must exist here.
    pub fn new(
        plan: Arc<CompiledPlan>,
        engine: &SlotEngine,
    ) -> Result<ScenarioRuntime, ProtocolError> {
        if plan.n() != engine.n() || plan.k() != engine.k() {
            return Err(ProtocolError::Scenario {
                message: format!(
                    "plan is for n={} k={} but the engine serves n={} k={}",
                    plan.n(),
                    plan.k(),
                    engine.n(),
                    engine.k()
                ),
            });
        }
        let base_policy = engine.policy();
        Ok(ScenarioRuntime {
            plan,
            cursor: 0,
            engaged: false,
            summary: ScenarioSummary::default(),
            base_policy,
        })
    }

    /// The plan being driven.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    /// What the runtime has done so far.
    pub fn summary(&self) -> ScenarioSummary {
        self.summary
    }

    /// Whether the fallback policy is currently in force.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Applies everything the plan schedules at (or before) the engine's
    /// current slot: pending disruption events, then one fallback
    /// decision. Call exactly once per executed slot, immediately before
    /// [`SlotEngine::run_slot`]; replies to clients whose reservations an
    /// outage cancelled are appended to `out`.
    pub fn before_slot(&mut self, engine: &mut SlotEngine, lag_slots: u64, out: &mut Vec<Reply>) {
        let slot = engine.slot();
        while let Some(event) = self.plan.events().get(self.cursor) {
            if event.slot > slot {
                break;
            }
            self.cursor += 1;
            let Ok(impact) = engine.apply_disruption(event, out) else {
                unreachable!("the plan was validated against this engine at attach")
            };
            self.summary.events_applied += 1;
            self.summary.dropped_connections += impact.dropped_connections;
            self.summary.cancelled_reservations += impact.cancelled_reservations;
        }
        if let Some(rule) = self.plan.fallback() {
            let load = self.plan.offered_load(slot);
            let disrupted = self.plan.is_disrupted(slot);
            let want = rule.decide(self.engaged, load, disrupted, lag_slots);
            if want != self.engaged {
                let target = if want { rule.policy } else { self.base_policy };
                match engine.set_policy_all(target) {
                    Ok(()) => {}
                    Err(_) => unreachable!(
                        "compile() validated the fallback policy against the baseline and every shrunk conversion"
                    ),
                }
                self.engaged = want;
                if want {
                    self.summary.fallback_engagements += 1;
                } else {
                    self.summary.fallback_reverts += 1;
                }
            }
        }
        if self.engaged {
            self.summary.engaged_slots += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Verdict};
    use crate::protocol::{DenyReason, ReserveRequest, SubmitRequest};
    use wdm_core::Conversion;

    const PLAN: &str = r#"
schema = 1
name = "daemon-storm"

[interconnect]
n = 4
k = 8
degree = 5
kind = "circular"
policy = "bfa"

[run]
slots = 40
seed = 9

[traffic]
load = 0.5
duration = { model = "deterministic", slots = 2 }

[[disruptions]]
at = 4
fiber = 1
kind = "converter-failure"
degree = 1
until = 8

[[disruptions]]
at = 12
fiber = 2
kind = "outage"
until = 16

[fallback]
policy = "approx"
on_disruption = true
"#;

    fn plan() -> Arc<CompiledPlan> {
        Arc::new(wdm_scenario::load_plan(PLAN).unwrap())
    }

    fn engine_for(plan: &CompiledPlan) -> SlotEngine {
        SlotEngine::new(EngineConfig::new(plan.n(), plan.conversion(), plan.policy())).unwrap()
    }

    fn sub(id: u64, src_fiber: u32, sw: u32, dst_fiber: u32, duration: u32) -> SubmitRequest {
        SubmitRequest { id, src_fiber, src_wavelength: sw, dst_fiber, duration }
    }

    #[test]
    fn topology_mismatch_is_rejected_at_attach() {
        let plan = plan();
        let conversion = Conversion::symmetric_circular(8, 5).unwrap();
        let other = SlotEngine::new(EngineConfig::new(6, conversion, Policy::Auto)).unwrap();
        let err = ScenarioRuntime::new(Arc::clone(&plan), &other).unwrap_err();
        assert!(matches!(err, ProtocolError::Scenario { .. }), "{err}");
    }

    #[test]
    fn events_fire_at_their_slots_and_fallback_tracks_disruption() {
        let plan = plan();
        let mut engine = engine_for(&plan);
        let mut rt = ScenarioRuntime::new(Arc::clone(&plan), &engine).unwrap();
        let mut out = Vec::new();
        for slot in 0..plan.total_slots() {
            assert_eq!(engine.slot(), slot);
            out.clear();
            rt.before_slot(&mut engine, 0, &mut out);
            // Degraded policy exactly while a disruption window is open.
            let in_window = (4..8).contains(&slot) || (12..16).contains(&slot);
            assert_eq!(rt.engaged(), in_window, "slot {slot}");
            let expected =
                if in_window { Policy::Approximate } else { Policy::BreakFirstAvailable };
            assert_eq!(engine.policy(), expected, "slot {slot}");
            let _ = engine.run_slot(&mut out);
        }
        let s = rt.summary();
        assert_eq!(s.events_applied, plan.events().len());
        assert_eq!(s.fallback_engagements, 2);
        assert_eq!(s.fallback_reverts, 2);
        assert_eq!(s.engaged_slots, 8);
    }

    #[test]
    fn outage_answers_every_cancelled_hold() {
        let plan = plan();
        let mut engine = engine_for(&plan);
        let mut rt = ScenarioRuntime::new(Arc::clone(&plan), &engine).unwrap();
        let mut out = Vec::new();
        // Book two reservations toward fiber 2 (the outage target) and one
        // toward fiber 3, all starting after the outage at slot 12.
        for (id, sw, dst) in [(100, 0, 2), (101, 1, 2), (102, 2, 3)] {
            let reply = engine.reserve(
                7,
                ReserveRequest {
                    id,
                    src_fiber: 0,
                    src_wavelength: sw,
                    dst_fiber: dst,
                    start_in: 20,
                    duration: 2,
                },
            );
            assert!(matches!(reply.verdict, Verdict::Reserved { .. }), "{reply:?}");
        }
        assert_eq!(engine.pending_reservations(), 3);
        for _ in 0..12 {
            out.clear();
            rt.before_slot(&mut engine, 0, &mut out);
            let _ = engine.run_slot(&mut out);
        }
        // Slot 12 applies the outage: both fiber-2 holds are cancelled and
        // answered before the slot's own replies.
        out.clear();
        rt.before_slot(&mut engine, 0, &mut out);
        let denies: Vec<u64> = out
            .iter()
            .filter(|r| {
                matches!(r.verdict, Verdict::Denied { reason: DenyReason::CapacityExhausted, .. })
            })
            .map(|r| r.id)
            .collect();
        assert_eq!(denies, vec![100, 101]);
        assert_eq!(engine.pending_reservations(), 1);
        assert_eq!(rt.summary().cancelled_reservations, 2);
        // While dark, cell traffic toward fiber 2 loses output contention.
        assert!(engine.submit(7, sub(1, 0, 0, 2, 1)).is_none());
        let _ = engine.run_slot(&mut out);
        let denied = out.iter().any(|r| {
            r.id == 1
                && matches!(r.verdict, Verdict::Denied { reason: DenyReason::OutputContention, .. })
        });
        assert!(denied, "requests toward a dark fiber must lose contention: {out:?}");
        // Run through the rejoin at slot 16; the surviving fiber-3 hold
        // activates at its start slot and the fiber serves traffic again.
        while engine.slot() < 22 {
            out.clear();
            rt.before_slot(&mut engine, 0, &mut out);
            let _ = engine.run_slot(&mut out);
        }
        assert_eq!(engine.pending_reservations(), 0);
        out.clear();
        assert!(engine.submit(7, sub(2, 1, 0, 2, 1)).is_none());
        rt.before_slot(&mut engine, 0, &mut out);
        let _ = engine.run_slot(&mut out);
        let granted = out.iter().any(|r| r.id == 2 && matches!(r.verdict, Verdict::Granted { .. }));
        assert!(granted, "a rejoined fiber serves traffic: {out:?}");
    }

    #[test]
    fn lag_trigger_engages_without_a_disruption() {
        let doc = r#"
schema = 1

[interconnect]
n = 2
k = 4
degree = 3
kind = "circular"
policy = "bfa"

[run]
slots = 10
seed = 1

[traffic]
load = 0.2
duration = { model = "deterministic", slots = 1 }

[fallback]
policy = "approx"
lag_threshold = 3
"#;
        let plan = Arc::new(wdm_scenario::load_plan(doc).unwrap());
        let mut engine = engine_for(&plan);
        let mut rt = ScenarioRuntime::new(Arc::clone(&plan), &engine).unwrap();
        let mut out = Vec::new();
        rt.before_slot(&mut engine, 0, &mut out);
        assert!(!rt.engaged());
        let _ = engine.run_slot(&mut out);
        rt.before_slot(&mut engine, 5, &mut out);
        assert!(rt.engaged(), "lag >= threshold engages");
        let _ = engine.run_slot(&mut out);
        rt.before_slot(&mut engine, 1, &mut out);
        assert!(rt.engaged(), "hysteresis: still lagging, stay engaged");
        let _ = engine.run_slot(&mut out);
        rt.before_slot(&mut engine, 0, &mut out);
        assert!(!rt.engaged(), "lag cleared, revert");
        let s = rt.summary();
        assert_eq!(s.fallback_engagements, 1);
        assert_eq!(s.fallback_reverts, 1);
        assert_eq!(s.engaged_slots, 2);
    }
}
