//! Offline drop-in subset of the `criterion` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of the Criterion API its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly, then
//! runs timed batches for a fixed wall-clock budget and reports the mean time
//! per iteration (plus derived element throughput when declared). No
//! statistics, plots, or baselines — enough to compare the growth trends the
//! benches exist to demonstrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark measures after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's budget is wall-clock based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Work performed by one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also sizes the batch so each timed batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP_BUDGET.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20);

        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(f());
            }
            self.iters_done += batch;
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { iters_done: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters_done == 0 {
        println!("bench {label:<48} (no iterations recorded)");
        return;
    }
    let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / ns_per_iter * 1e9),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / ns_per_iter * 1e9),
    });
    println!(
        "bench {label:<48} {ns_per_iter:>12.1} ns/iter ({} iters){}",
        b.iters_done,
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
