//! Offline shim of the `loom` model checker.
//!
//! The build environment has no crates.io access, so — like the other
//! `shims/` crates — this is a minimal API-compatible stand-in for the parts
//! of `loom` the workspace uses: [`model`], `sync::atomic::AtomicUsize`,
//! `sync::Mutex`, and `thread::{spawn, JoinHandle}`.
//!
//! # How it explores
//!
//! [`model`] runs the closure repeatedly under a quiescence scheduler.
//! Every shared-memory operation (an atomic op, a mutex acquisition)
//! *parks* its thread; when every live thread is parked, the scheduler
//! picks one parked thread to perform its pending operation and run until
//! it parks again. Whenever two or more threads sit parked at a pending
//! operation, that choice is a branch; the scheduler records the decision
//! path and, across iterations, backtracks depth-first until **every** path
//! has been executed — one decision per shared operation, so joins, exits,
//! and mutex releases cost the tree nothing. Blocked threads (waiting on a
//! held mutex or an unfinished join target) are not choosable, so the
//! explored tree stays finite, and quiescence where no thread is choosable
//! but some are blocked is reported as a deadlock.
//!
//! # Scope (honest differences from real loom)
//!
//! * **Sequential consistency only.** Exhaustive operation interleaving
//!   explores every SC execution; it cannot produce the additional
//!   weak-memory behaviors `Relaxed`/`Acquire`/`Release` allow on real
//!   hardware. The workspace compensates by also running ThreadSanitizer
//!   over the real `std` atomics in CI (`cargo xtask tsan`).
//! * **Condvar notifies must hold the lock.** `sync::Condvar` models
//!   wait/notify without making `notify_all` a decision point, which is
//!   sound only when notifiers hold the associated mutex (see its docs).
//! * **No partial-order reduction.** Interleavings that differ only in the
//!   order of commuting operations are re-run rather than pruned, so keep
//!   modeled protocols small (the sweep model is ~11 operations across
//!   3 workers — on the order of 10⁴ interleavings).
//! * Only the types the sweep protocol needs are provided.
//!
//! Like real loom, the shimmed primitives also work *outside* [`model`]
//! (they fall through to plain `std` operations), so library code compiled
//! with `--cfg loom` but executed without a model — e.g. doctests — does
//! not hang.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod scheduler;

pub use scheduler::model;

/// Shimmed `loom::sync`.
pub mod sync {
    pub use crate::scheduler::{Condvar, Mutex, MutexGuard};

    /// Shimmed `loom::sync::atomic`.
    pub mod atomic {
        pub use crate::scheduler::AtomicUsize;
        pub use std::sync::atomic::Ordering;
    }
}

/// Shimmed `loom::thread`.
pub mod thread {
    pub use crate::scheduler::{spawn, JoinHandle};
}
