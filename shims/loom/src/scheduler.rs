//! The exhaustive quiescence scheduler behind [`model`], plus the modeled
//! primitives (`AtomicUsize`, `Mutex`, `spawn`/`JoinHandle`).
//!
//! # The park/choose discipline
//!
//! Model threads are real OS threads, but at most one executes user code at
//! a time (freshly spawned threads may run their closure prologue
//! concurrently — it cannot touch modeled state). Every modeled shared
//! operation calls [`Scheduler::pre_op`] first, which **parks** the thread.
//! When the last live thread parks (quiescence), one parked thread is
//! *chosen* to perform its pending operation; it runs — operation plus any
//! thread-local code after it — until it parks at its next operation, and
//! the cycle repeats.
//!
//! Choices replay a recorded decision path, then extend it depth-first;
//! [`model`] re-runs its closure until the whole tree is explored. Because a
//! decision is recorded *only* when ≥ 2 threads sit parked at a pending
//! operation, the tree has exactly one decision per shared operation — the
//! minimum for an exhaustive explorer. Non-operations never branch:
//! thread exit, a join on a finished thread, and mutex release just update
//! scheduler state, so joining or finishing threads cost nothing. (Real
//! loom additionally prunes *commuting* operation orders with DPOR; this
//! shim re-runs them, so keep modeled protocols to a few dozen operations.)
//!
//! Blocked threads (waiting on a held mutex or an unfinished join target)
//! are not choosable; quiescence with no pending thread but blocked ones is
//! reported as a deadlock.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, LockResult, OnceLock, PoisonError};

/// Hard cap on explored interleavings — a runaway-model backstop far above
/// anything the in-tree models need.
const MAX_ITERATIONS: u64 = 2_000_000;

/// One recorded scheduling decision: at a quiescence point with `options`
/// parked pending threads, the `chosen`-th (in slot order) was picked.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

/// What a blocked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOn {
    /// A mutex (keyed by address) that is currently held.
    Mutex(usize),
    /// Another model thread (by slot) that has not finished.
    Join(usize),
    /// A condition variable (keyed by address) awaiting a notify.
    Condvar(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Executing user code (counted in `State::unparked`).
    Running,
    /// Parked at `pre_op`, waiting to be chosen to perform its operation.
    Pending,
    /// Waiting on a mutex or join; not choosable until freed.
    Blocked(BlockOn),
    Finished,
}

#[derive(Debug, Default)]
struct State {
    /// A model iteration is executing.
    active: bool,
    /// Per-slot thread states for the current iteration.
    threads: Vec<ThreadState>,
    /// Number of `Running` threads; a choice is made only at zero.
    unparked: usize,
    /// DFS decision path: replay prefix + extensions made this iteration.
    schedule: Vec<Decision>,
    /// Next decision index to replay/extend.
    depth: usize,
    /// Held-state of every modeled mutex touched this iteration, by address.
    mutexes: HashMap<usize, bool>,
    /// Iterations completed so far in this [`model`] call.
    iterations: u64,
}

#[derive(Debug, Default)]
struct Scheduler {
    state: std::sync::Mutex<State>,
    cv: StdCondvar,
}

fn scheduler() -> &'static Scheduler {
    static SCHED: OnceLock<Scheduler> = OnceLock::new();
    SCHED.get_or_init(Scheduler::default)
}

thread_local! {
    /// This OS thread's model slot, when it is a model thread.
    static SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

type Guard<'a> = std::sync::MutexGuard<'a, State>;

impl Scheduler {
    fn lock_state(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// At quiescence (no running thread), chooses the next pending thread —
    /// replaying the decision prefix, then extending it depth-first — and
    /// sets it running. No-op while any thread still runs.
    ///
    /// Quiescence with nothing pending means the iteration is over (all
    /// threads finished) or the model deadlocked; a deadlock deactivates the
    /// iteration (so parked threads drain instead of hanging) and panics.
    fn try_choose(&self, st: &mut State) {
        if st.unparked > 0 {
            return;
        }
        let pending: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == ThreadState::Pending)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            let all_finished = st.threads.iter().all(|t| *t == ThreadState::Finished);
            if !all_finished {
                st.active = false;
                self.cv.notify_all();
            }
            assert!(
                all_finished,
                "loom model deadlock: every live thread is blocked ({:?})",
                st.threads
            );
            // Iteration complete; model() is woken by the caller's notify.
            return;
        }
        let pick = if pending.len() == 1 {
            pending[0]
        } else {
            if st.depth == st.schedule.len() {
                st.schedule.push(Decision { chosen: 0, options: pending.len() });
            }
            let decision = st.schedule[st.depth];
            debug_assert_eq!(
                decision.options,
                pending.len(),
                "non-deterministic model: replay diverged at depth {}",
                st.depth
            );
            st.depth += 1;
            pending[decision.chosen]
        };
        st.threads[pick] = ThreadState::Running;
        st.unparked += 1;
    }

    /// Parks this thread before a shared operation and blocks until it is
    /// chosen to perform it. No-op for threads outside a model.
    fn pre_op(&self) {
        let Some(me) = SLOT.with(Cell::get) else { return };
        let mut st = self.lock_state();
        if !st.active {
            return;
        }
        st.threads[me] = ThreadState::Pending;
        st.unparked -= 1;
        self.try_choose(&mut st);
        self.wait_until_running(st, me);
    }

    /// Parks this thread as blocked on `on` and returns once it is freed
    /// *and* running again (join waiters are freed straight to `Running` by
    /// the exiting thread; mutex waiters are freed to `Pending` on release
    /// and re-chosen, so contended acquisition order is explored).
    fn block_on(&self, mut st: Guard<'_>, me: usize, on: BlockOn) {
        st.threads[me] = ThreadState::Blocked(on);
        st.unparked -= 1;
        self.try_choose(&mut st);
        self.wait_until_running(st, me);
    }

    fn wait_until_running(&self, mut st: Guard<'_>, me: usize) {
        self.cv.notify_all();
        while st.active && st.threads[me] != ThreadState::Running {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `me` finished and sets its joiners running. Not a decision
    /// point: an exit performs no shared operation.
    fn finish_thread(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me] = ThreadState::Finished;
        if st.active {
            let mut freed = 0;
            for t in &mut st.threads {
                if *t == ThreadState::Blocked(BlockOn::Join(me)) {
                    *t = ThreadState::Running;
                    freed += 1;
                }
            }
            st.unparked += freed;
            st.unparked -= 1;
            self.try_choose(&mut st);
        }
        self.cv.notify_all();
    }
}

/// Runs `f` under the exhaustive scheduler, once per distinct interleaving,
/// until the whole decision tree is explored, and returns how many
/// interleavings were executed (so model tests can record and assert their
/// coverage). Panics from any model thread (a failed assertion in some
/// interleaving) are propagated to the caller with the schedule already torn
/// down.
///
/// The closure is `Fn` (not `FnOnce`) because it runs many times; shared
/// state must be created *inside* it so every iteration starts fresh.
pub fn model<F>(f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = scheduler();
    {
        let mut st = sched.lock_state();
        assert!(SLOT.with(Cell::get).is_none() && !st.active, "loom::model cannot be nested");
        st.schedule.clear();
        st.iterations = 0;
    }
    loop {
        // Fresh iteration: slot 0 is this thread, replaying st.schedule.
        {
            let mut st = sched.lock_state();
            assert!(st.iterations < MAX_ITERATIONS, "loom model too large: {MAX_ITERATIONS} interleavings explored without exhausting the schedule tree");
            st.active = true;
            st.threads = vec![ThreadState::Running];
            st.unparked = 1;
            st.depth = 0;
            st.mutexes.clear();
        }
        SLOT.with(|s| s.set(Some(0)));
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        sched.finish_thread(0);
        // Wait for every spawned thread to finish before judging the
        // iteration (they keep choosing among themselves).
        let mut st = sched.lock_state();
        while !st.threads.iter().all(|t| *t == ThreadState::Finished) {
            st = sched.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.active = false;
        st.iterations += 1;
        SLOT.with(|s| s.set(None));
        if let Err(panic) = outcome {
            let iterations = st.iterations;
            let path: Vec<usize> = st.schedule.iter().map(|d| d.chosen).collect();
            st.schedule.clear();
            drop(st);
            eprintln!("loom: model failed on iteration {iterations} (decision path {path:?})");
            resume_unwind(panic);
        }
        if !backtrack(&mut st.schedule) {
            eprintln!("loom: model complete, {} interleavings explored", st.iterations);
            return st.iterations;
        }
    }
}

/// Advances the decision path to the next unexplored branch (depth-first):
/// drops exhausted trailing decisions and bumps the deepest one that still
/// has an untried option. Returns `false` when the tree is exhausted.
fn backtrack(schedule: &mut Vec<Decision>) -> bool {
    while let Some(d) = schedule.pop() {
        if d.chosen + 1 < d.options {
            schedule.push(Decision { chosen: d.chosen + 1, options: d.options });
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Modeled primitives
// ---------------------------------------------------------------------------

/// Modeled `AtomicUsize`: every operation parks at the scheduler. The
/// `Ordering` argument is accepted for API compatibility but the shim
/// explores sequentially consistent interleavings regardless (see the crate
/// docs for why that is sound here and what TSan adds).
#[derive(Debug, Default)]
pub struct AtomicUsize {
    value: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// A new modeled atomic.
    pub const fn new(value: usize) -> AtomicUsize {
        AtomicUsize { value: std::sync::atomic::AtomicUsize::new(value) }
    }

    /// Modeled `load`.
    pub fn load(&self, _order: Ordering) -> usize {
        scheduler().pre_op();
        self.value.load(Ordering::SeqCst)
    }

    /// Modeled `store`.
    pub fn store(&self, value: usize, _order: Ordering) {
        scheduler().pre_op();
        self.value.store(value, Ordering::SeqCst);
    }

    /// Modeled `fetch_add`.
    pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
        scheduler().pre_op();
        self.value.fetch_add(value, Ordering::SeqCst)
    }

    /// Modeled `swap`.
    pub fn swap(&self, value: usize, _order: Ordering) -> usize {
        scheduler().pre_op();
        self.value.swap(value, Ordering::SeqCst)
    }

    /// Modeled `compare_exchange`.
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        scheduler().pre_op();
        self.value.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Modeled mutex. Acquisition is a scheduling point; contended acquisition
/// blocks the model thread at the scheduler level (it is simply not
/// choosable until the holder releases), so the explored tree never
/// contains busy-wait schedules.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard for a modeled [`Mutex`]; releases the scheduler-level hold on drop.
/// Holds the mutex itself (not just its address) so [`Condvar::wait`] can
/// re-acquire the same lock after being woken.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

/// Releases the logical (scheduler-level) hold on mutex `addr` and frees its
/// waiters back to `Pending`, so their retried acquisitions are re-chosen
/// like any pending operation (contended acquisition order is explored).
fn release_logical(st: &mut State, addr: usize) {
    st.mutexes.insert(addr, false);
    for t in &mut st.threads {
        if *t == ThreadState::Blocked(BlockOn::Mutex(addr)) {
            *t = ThreadState::Pending;
        }
    }
}

impl<T> Mutex<T> {
    /// A new modeled mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Takes the scheduler-level (logical) lock for model thread `me`,
    /// blocking at the scheduler while it is held. The *caller* supplies the
    /// scheduling point: [`Mutex::lock`] parks at `pre_op` first, while a
    /// [`Condvar::wait`] relock uses the wakeup choice itself.
    fn logical_acquire(&self, me: usize) {
        let sched = scheduler();
        let addr = self.addr();
        // Loop: a release frees every waiter back to Pending, and a later
        // choice may let another waiter win.
        loop {
            let mut st = sched.lock_state();
            if !st.active {
                break;
            }
            let held = st.mutexes.entry(addr).or_insert(false);
            if !*held {
                *held = true;
                break;
            }
            sched.block_on(st, me, BlockOn::Mutex(addr));
        }
    }

    /// Takes the std lock (guaranteed uncontended while the logical lock is
    /// held) and wraps it in the modeled guard.
    fn std_lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.inner.lock() {
            Ok(guard) => Ok(MutexGuard { inner: Some(guard), mutex: self }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                inner: Some(poisoned.into_inner()),
                mutex: self,
            })),
        }
    }

    /// Modeled `lock`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(me) = SLOT.with(Cell::get) {
            // The acquisition is the shared operation: park, get chosen,
            // then take the logical lock.
            scheduler().pre_op();
            self.logical_acquire(me);
        }
        self.std_lock()
    }

    /// Modeled `into_inner` (no scheduling: exclusive access is static).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        let Some(inner) = self.inner.as_deref() else { unreachable!("guard accessed after drop") };
        inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        let Some(inner) = self.inner.as_deref_mut() else {
            unreachable!("guard accessed after drop")
        };
        inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the logical lock so the next logical
        // holder can never find the std lock still taken.
        self.inner = None;
        if SLOT.with(Cell::get).is_some() {
            let sched = scheduler();
            let mut st = sched.lock_state();
            if st.active {
                // Releasing itself is not a decision point.
                release_logical(&mut st, self.mutex.addr());
            }
        }
    }
}

/// Modeled condition variable.
///
/// `wait` atomically (under the scheduler's state lock) releases the guard's
/// mutex and parks the thread as `Blocked(Condvar)`; [`Condvar::notify_all`]
/// frees every such waiter back to `Pending`, and the scheduler's choice of
/// *which* freed waiter runs first is the explored decision. The relock after
/// wakeup reuses that choice as its scheduling point, so an uncontended
/// wait/notify pair costs the decision tree exactly one branch.
///
/// # Soundness requirement
///
/// `notify_all` is **not** itself a decision point. That is sound only when
/// every notify is issued *while holding the mutex* associated with the
/// waiters' condition (as `serve_sync`'s channel does): the notify is then
/// ordered against every waiter by the mutex itself, and a waiter can never
/// be parked "between" its predicate check and its wait — the shim makes
/// release-and-park atomic, so modeled wakeups are never lost. Notifying
/// without the lock held would let the shim miss interleavings a real
/// condvar allows; don't do it in modeled code.
///
/// Like the other primitives, a `Condvar` used outside [`model`] falls
/// through to `std::sync::Condvar` (which may wake spuriously — callers must
/// loop on their predicate either way). `notify_one` is deliberately not
/// provided: modeled code uses `notify_all` so no wakeup-targeting bug can
/// hide behind a lucky scheduler.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new modeled condvar.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Modeled `wait`: atomically releases `guard`'s mutex and blocks until
    /// a `notify_all`, then re-acquires the mutex and returns a fresh guard.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        let std_guard = guard.inner.take();
        // The logical release is performed manually below (model path) or
        // not needed (std path); the guard must not release it again.
        std::mem::forget(guard);
        if let Some(me) = SLOT.with(Cell::get) {
            let sched = scheduler();
            let st = sched.lock_state();
            // After a deadlock tears the iteration down, a free-running
            // drain thread that waits again would hang forever (no modeled
            // notifier is coming) — fail fast instead; the spawn wrapper
            // still marks the thread finished so `model` can report the
            // primary deadlock.
            assert!(st.active, "loom: Condvar::wait during model teardown");
            // Atomically (under the scheduler state lock): drop the std
            // lock, release the logical lock, park on the condvar.
            drop(std_guard);
            let mut st = st;
            release_logical(&mut st, mutex.addr());
            sched.block_on(st, me, BlockOn::Condvar(self.addr()));
            // Woken: re-acquire. The wakeup choice was the scheduling
            // point, so no extra pre_op here.
            mutex.logical_acquire(me);
            mutex.std_lock()
        } else {
            let Some(std_guard) = std_guard else { unreachable!("guard accessed after drop") };
            match self.inner.wait(std_guard) {
                Ok(g) => Ok(MutexGuard { inner: Some(g), mutex }),
                Err(poisoned) => {
                    Err(PoisonError::new(MutexGuard { inner: Some(poisoned.into_inner()), mutex }))
                }
            }
        }
    }

    /// Modeled `notify_all`: frees every waiter parked on this condvar back
    /// to `Pending`. Not a decision point (see the soundness note above).
    pub fn notify_all(&self) {
        if SLOT.with(Cell::get).is_some() {
            let sched = scheduler();
            let mut st = sched.lock_state();
            if st.active {
                let addr = self.addr();
                for t in &mut st.threads {
                    if *t == ThreadState::Blocked(BlockOn::Condvar(addr)) {
                        *t = ThreadState::Pending;
                    }
                }
                return;
            }
        }
        self.inner.notify_all();
    }
}

/// Modeled `thread::spawn`. The child starts running immediately (its
/// closure prologue cannot touch modeled state) and parks at its first
/// shared operation like any other model thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let sched = scheduler();
    let slot = {
        let mut st = sched.lock_state();
        assert!(
            st.active && SLOT.with(Cell::get).is_some(),
            "loom::thread::spawn outside loom::model"
        );
        st.threads.push(ThreadState::Running);
        st.unparked += 1;
        st.threads.len() - 1
    };
    let handle = std::thread::spawn(move || {
        SLOT.with(|s| s.set(Some(slot)));
        let outcome = catch_unwind(AssertUnwindSafe(f));
        scheduler().finish_thread(slot);
        SLOT.with(|s| s.set(None));
        match outcome {
            Ok(value) => value,
            Err(panic) => resume_unwind(panic),
        }
    });
    JoinHandle { handle, slot }
}

/// Handle to a modeled thread.
#[derive(Debug)]
pub struct JoinHandle<T> {
    handle: std::thread::JoinHandle<T>,
    slot: usize,
}

impl<T> JoinHandle<T> {
    /// Modeled `join`: blocks at the scheduler level until the target
    /// finishes, then collects its result from the OS thread.
    ///
    /// Deliberately *not* a decision point: a join reads only the target's
    /// monotonic finished flag, so it commutes with every shared operation —
    /// the joining thread (typically the model root, joining every worker)
    /// costs the decision tree nothing.
    pub fn join(self) -> std::thread::Result<T> {
        let sched = scheduler();
        if let Some(me) = SLOT.with(Cell::get) {
            let st = sched.lock_state();
            if st.active && st.threads[self.slot] != ThreadState::Finished {
                sched.block_on(st, me, BlockOn::Join(self.slot));
            }
        }
        self.handle.join()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use super::{model, spawn, AtomicUsize, Condvar, Mutex};

    #[test]
    fn single_thread_model_runs_once() {
        model(|| {
            let a = AtomicUsize::new(0);
            a.store(7, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 7);
        });
    }

    #[test]
    fn fetch_add_is_atomic_in_every_interleaving() {
        model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    spawn(move || a.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            let mut seen: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1], "both increments must be distinct");
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    spawn(move || {
                        let mut g = m.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(m.lock().map(|g| *g).unwrap(), 2);
        });
    }

    #[test]
    fn exploration_visits_both_orders_of_two_stores() {
        // Across all interleavings, a race of two distinct stores must be
        // observed in both final states — i.e. the explorer really branches.
        use std::sync::Mutex as StdMutex;
        static FINALS: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        FINALS.lock().unwrap().clear();
        model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let h1 = {
                let a = Arc::clone(&a);
                spawn(move || a.store(1, Ordering::SeqCst))
            };
            let h2 = {
                let a = Arc::clone(&a);
                spawn(move || a.store(2, Ordering::SeqCst))
            };
            h1.join().unwrap();
            h2.join().unwrap();
            FINALS.lock().unwrap().push(a.load(Ordering::SeqCst));
        });
        let finals = FINALS.lock().unwrap();
        assert!(finals.contains(&1), "store(1)-last interleaving explored");
        assert!(finals.contains(&2), "store(2)-last interleaving explored");
    }

    #[test]
    fn condvar_handoff_is_never_lost() {
        // Producer sets the flag and notifies while holding the mutex; the
        // consumer loops on wait. Every interleaving must hand the value
        // over — a lost wakeup would surface as a modeled deadlock.
        let interleavings = model(|| {
            let shared = Arc::new((Mutex::new(false), Condvar::new()));
            let producer = {
                let shared = Arc::clone(&shared);
                spawn(move || {
                    let (lock, cv) = &*shared;
                    let mut ready = lock.lock().unwrap();
                    *ready = true;
                    cv.notify_all();
                })
            };
            let (lock, cv) = &*shared;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            producer.join().unwrap();
        });
        assert!(interleavings >= 2, "wait-first and notify-first orders both explored");
    }

    #[test]
    fn model_reports_interleaving_count() {
        let count = model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let h1 = {
                let a = Arc::clone(&a);
                spawn(move || a.store(1, Ordering::SeqCst))
            };
            let h2 = {
                let a = Arc::clone(&a);
                spawn(move || a.store(2, Ordering::SeqCst))
            };
            h1.join().unwrap();
            h2.join().unwrap();
        });
        assert!(count >= 2, "two racing stores need at least two interleavings, got {count}");
    }

    #[test]
    fn panicking_interleaving_is_reported() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let h = {
                    let a = Arc::clone(&a);
                    spawn(move || a.store(1, Ordering::SeqCst))
                };
                let seen = a.load(Ordering::SeqCst);
                h.join().unwrap();
                // Fails only in the interleaving where the child ran first.
                assert_eq!(seen, 0, "child store observed before join");
            });
        });
        assert!(result.is_err(), "the failing interleaving must surface");
    }
}
