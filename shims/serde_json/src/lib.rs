//! Offline drop-in subset of the `serde_json` crate.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! `serde` shim's tree-based data model. The emitted JSON matches upstream
//! serde_json for the types this workspace serializes (numbers use Rust's
//! shortest round-trippable `Display` form; map keys keep insertion order).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        out.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Error {
        Error(err.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("non-finite float {x} cannot be JSON")));
            }
            let text = x.to_string();
            out.push_str(&text);
            // serde_json always distinguishes floats from integers.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(out, &items[i], indent, d)
            })?;
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                let (key, item) = &entries[i];
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, d)
            })?;
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    count: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if count == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..count {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i, depth + 1)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
    Ok(())
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = digits.parse::<u64>().map(|u| -(u as i64)) {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Map(vec![
            ("n".to_string(), Value::UInt(8)),
            ("load".to_string(), Value::Float(0.75)),
            ("label".to_string(), Value::Str("a \"quoted\"\nline".to_string())),
            ("neg".to_string(), Value::Int(-3)),
            ("seq".to_string(), Value::Seq(vec![Value::Bool(true), Value::Null, Value::UInt(2)])),
            ("empty".to_string(), Value::Seq(Vec::new())),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn from_value(value: &Value) -> Result<Raw, serde::DeError> {
                Ok(Raw(value.clone()))
            }
        }
        let text = to_string(&Raw(v.clone())).expect("serializes");
        let back: Raw = from_str(&text).expect("parses");
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&Raw(v.clone())).expect("serializes");
        let back: Raw = from_str(&pretty).expect("parses pretty");
        assert_eq!(back.0, v);
    }

    #[test]
    fn floats_keep_float_syntax() {
        let text = to_string(&2.0f64).expect("serializes");
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).expect("parses");
        assert!((back - 2.0).abs() < 1e-12);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<f64>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
