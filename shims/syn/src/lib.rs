//! Offline drop-in subset of the `syn` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of a Rust-parsing API that the `xtask` AST lint pass needs:
//! [`parse_file`] producing a [`File`] of item-level AST nodes
//! ([`Item::Fn`], [`Item::Mod`], [`Item::Impl`], [`Item::Struct`], …) with
//! attributes (doc comments included, exactly as rustc desugars them to
//! `#[doc = "…"]`), visibility, and line-accurate [`Span`]s, over a lossless
//! token-tree layer ([`TokenStream`], [`TokenTree`], [`Group`]).
//!
//! Differences from upstream: expressions and types inside function bodies,
//! signatures, and initializers are kept as raw token trees rather than
//! parsed into `Expr`/`Type` nodes — the lint pass walks tokens with
//! structural context (which item, which attributes, test or library code)
//! instead of pattern-matching strings. Items the parser does not model
//! (`use`, `static`, macro definitions/invocations, …) are preserved as
//! [`Item::Other`] with their full token stream so lints still see inside
//! them. The lexer is complete over the constructs that defeat line-based
//! scanning: nested block comments, raw strings/identifiers, byte and char
//! literals versus lifetimes, and doc comments.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod lexer;
mod parser;

pub use lexer::lex_to_stream;

/// A source location: 1-based line number in the parsed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the first character of the spanned token.
    pub line: usize,
}

/// A parse error with the line it was detected on.
#[derive(Debug, Clone)]
pub struct Error {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// The delimiter of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( … )`
    Parenthesis,
    /// `{ … }`
    Brace,
    /// `[ … ]`
    Bracket,
}

/// One node of the token-tree layer.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited subtree.
    Group(Group),
    /// An identifier or keyword (keywords are not distinguished).
    Ident(Ident),
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive `Punct`s, e.g. `->` is `-` then `>`).
    Punct(Punct),
    /// A literal: string (raw or not), char, byte, or number.
    Literal(Literal),
}

impl TokenTree {
    /// The token's source span.
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span,
            TokenTree::Ident(i) => i.span,
            TokenTree::Punct(p) => p.span,
            TokenTree::Literal(l) => l.span,
        }
    }

    /// The identifier text, if this token is an [`Ident`].
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenTree::Ident(i) => Some(&i.text),
            _ => None,
        }
    }

    /// The punctuation character, if this token is a [`Punct`].
    pub fn as_punct(&self) -> Option<char> {
        match self {
            TokenTree::Punct(p) => Some(p.ch),
            _ => None,
        }
    }
}

/// A delimited token subtree.
#[derive(Debug, Clone)]
pub struct Group {
    /// The surrounding delimiter.
    pub delimiter: Delimiter,
    /// The tokens between the delimiters.
    pub stream: TokenStream,
    /// Span of the opening delimiter.
    pub span: Span,
}

/// An identifier (or keyword) token.
#[derive(Debug, Clone)]
pub struct Ident {
    /// The identifier text (raw identifiers arrive without the `r#`).
    pub text: String,
    /// Source location.
    pub span: Span,
}

/// A single punctuation character.
#[derive(Debug, Clone)]
pub struct Punct {
    /// The character.
    pub ch: char,
    /// Source location.
    pub span: Span,
}

/// What kind of literal a [`Literal`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// String, raw string, byte string, or C string.
    Str,
    /// Char or byte literal.
    Char,
    /// Integer or float literal.
    Num,
}

/// A literal token. `text` is the contents (for strings: without the quotes
/// and raw-string hashes, escapes left unprocessed).
#[derive(Debug, Clone)]
pub struct Literal {
    /// Literal kind.
    pub kind: LitKind,
    /// Literal contents, see type-level docs.
    pub text: String,
    /// Source location.
    pub span: Span,
}

/// A sequence of token trees.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    /// The top-level trees in order.
    pub trees: Vec<TokenTree>,
}

impl TokenStream {
    /// Calls `f` on every token tree, depth-first, including group members.
    pub fn walk(&self, f: &mut impl FnMut(&TokenTree)) {
        for tree in &self.trees {
            f(tree);
            if let TokenTree::Group(g) = tree {
                g.stream.walk(f);
            }
        }
    }

    /// Whether any identifier token (at any depth) equals `name`.
    pub fn contains_ident(&self, name: &str) -> bool {
        let mut found = false;
        self.walk(&mut |t| {
            if t.as_ident() == Some(name) {
                found = true;
            }
        });
        found
    }
}

/// One attribute, e.g. `#[cfg(test)]` or a doc comment (desugared to
/// `#[doc = "…"]` exactly as rustc does).
#[derive(Debug, Clone)]
pub struct Attribute {
    /// First path segment inside the brackets: `cfg`, `doc`, `must_use`,
    /// `allow`, `derive`, `cfg_attr`, ….
    pub path: String,
    /// The full token stream between the brackets (including the path).
    pub tokens: TokenStream,
    /// `true` for inner attributes (`#![…]`, `//!`, `/*! … */`).
    pub inner: bool,
    /// Source location.
    pub span: Span,
}

impl Attribute {
    /// For `#[doc = "…"]` attributes: the doc text. `None` otherwise.
    pub fn doc_text(&self) -> Option<&str> {
        if self.path != "doc" {
            return None;
        }
        self.tokens.trees.iter().find_map(|t| match t {
            TokenTree::Literal(l) if l.kind == LitKind::Str => Some(l.text.as_str()),
            _ => None,
        })
    }

    /// Whether any identifier inside the attribute arguments equals `name`
    /// (e.g. `test` in `#[cfg(test)]` or `#[cfg(any(test, fuzzing))]`).
    pub fn contains_ident(&self, name: &str) -> bool {
        self.tokens.contains_ident(name)
    }
}

/// Item visibility. Only the distinction "public at module level" matters to
/// the lint pass; `pub(crate)` and friends are [`Visibility::Restricted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub`
    Public,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`
    Restricted,
    /// No `pub`.
    Inherited,
}

/// A function signature: name, raw argument tokens, raw return-type tokens.
#[derive(Debug, Clone)]
pub struct Signature {
    /// The function name.
    pub ident: Ident,
    /// The parenthesized argument list, unparsed.
    pub inputs: Group,
    /// The tokens after `->` up to the body / `where` clause; empty when the
    /// function returns `()`.
    pub output: TokenStream,
    /// `const fn`.
    pub is_const: bool,
    /// `unsafe fn`.
    pub is_unsafe: bool,
    /// `async fn`.
    pub is_async: bool,
}

/// A `fn` item (free function, or associated function inside an `impl` /
/// `trait` body).
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Attributes, doc comments included.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// Signature.
    pub sig: Signature,
    /// The body block; `None` for trait-method declarations.
    pub block: Option<Group>,
    /// Source location of the `fn` keyword.
    pub span: Span,
}

/// A `mod` item.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Attributes, doc comments included.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// The module name.
    pub ident: Ident,
    /// `Some(items)` for inline modules, `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
    /// Source location.
    pub span: Span,
}

/// An `impl` block; associated items are parsed with the same item parser.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the block is `unsafe impl`.
    pub is_unsafe: bool,
    /// The tokens between `impl` and the body (generics, trait, self type).
    pub self_tokens: TokenStream,
    /// The associated items.
    pub items: Vec<Item>,
    /// Source location.
    pub span: Span,
}

/// A `struct`, `enum`, or `union` declaration.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Attributes, doc comments included.
    pub attrs: Vec<Attribute>,
    /// Visibility.
    pub vis: Visibility,
    /// Which keyword declared it: `struct`, `enum`, or `union`.
    pub keyword: String,
    /// The type name.
    pub ident: Ident,
    /// Everything after the name (generics, fields / variants), unparsed.
    pub body: TokenStream,
    /// Source location.
    pub span: Span,
}

/// A `trait` declaration; methods are parsed with the same item parser.
#[derive(Debug, Clone)]
pub struct ItemTrait {
    /// Attributes.
    pub attrs: Vec<Attribute>,
    /// Whether the declaration is `unsafe trait`.
    pub is_unsafe: bool,
    /// Visibility.
    pub vis: Visibility,
    /// The trait name.
    pub ident: Ident,
    /// The associated items (methods may have no body).
    pub items: Vec<Item>,
    /// Source location.
    pub span: Span,
}

/// Any item the parser does not model structurally (`use`, `static`,
/// `const`, `type`, macro definitions and invocations, `extern` blocks, …),
/// preserved as its raw token stream so lints can still walk inside.
#[derive(Debug, Clone)]
pub struct ItemOther {
    /// Attributes.
    pub attrs: Vec<Attribute>,
    /// The item's full token stream.
    pub tokens: TokenStream,
    /// Source location.
    pub span: Span,
}

/// One item of a file, module, `impl`, or `trait` body.
#[derive(Debug, Clone)]
pub enum Item {
    /// A function.
    Fn(ItemFn),
    /// A module.
    Mod(ItemMod),
    /// An `impl` block.
    Impl(ItemImpl),
    /// A `struct` / `enum` / `union`.
    Struct(ItemStruct),
    /// A `trait`.
    Trait(ItemTrait),
    /// Anything else, kept as tokens.
    Other(ItemOther),
}

impl Item {
    /// The item's attributes.
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Mod(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Struct(i) => &i.attrs,
            Item::Trait(i) => &i.attrs,
            Item::Other(i) => &i.attrs,
        }
    }

    /// The item's source location.
    pub fn span(&self) -> Span {
        match self {
            Item::Fn(i) => i.span,
            Item::Mod(i) => i.span,
            Item::Impl(i) => i.span,
            Item::Struct(i) => i.span,
            Item::Trait(i) => i.span,
            Item::Other(i) => i.span,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner attributes (`#![…]`, `//!`).
    pub attrs: Vec<Attribute>,
    /// The top-level items.
    pub items: Vec<Item>,
}

/// Parses a Rust source file into items. See the crate docs for the exact
/// subset modeled; this never panics on valid Rust — constructs outside the
/// subset degrade to [`Item::Other`] with their tokens preserved.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let stream = lexer::lex_to_stream(src)?;
    parser::parse_items_toplevel(&stream)
}
