//! The lossless lexer: source text to a [`TokenStream`] of grouped token
//! trees.
//!
//! This layer is where the old line-based scanner's blind spots are closed
//! for good: nested `/* */` block comments, raw strings (`r#"…"#` at any
//! hash depth), byte/C strings, char literals versus lifetimes, raw
//! identifiers, and doc comments (kept, desugared to `#[doc = "…"]` tokens
//! exactly as rustc does, so the parser can treat them as attributes).

use crate::{
    Delimiter, Error, Group, Ident, LitKind, Literal, Punct, Span, TokenStream, TokenTree,
};

/// Lexes `src` into a grouped token stream. Fails on unbalanced delimiters
/// and unterminated comments/strings, with the offending line.
pub fn lex_to_stream(src: &str) -> Result<TokenStream, Error> {
    let mut lexer = Lexer { chars: src.chars().collect(), pos: 0, line: 1 };
    let mut stack: Vec<(Delimiter, Span, Vec<TokenTree>)> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        match tok {
            RawTok::Open(delimiter, span) => {
                stack.push((delimiter, span, std::mem::take(&mut current)));
            }
            RawTok::Close(delimiter, span) => {
                let Some((open_delim, open_span, parent)) = stack.pop() else {
                    return Err(Error {
                        line: span.line,
                        message: format!("unmatched closing {delimiter:?}"),
                    });
                };
                if open_delim != delimiter {
                    return Err(Error {
                        line: span.line,
                        message: format!(
                            "mismatched delimiters: {open_delim:?} opened on line {} closed as {delimiter:?}",
                            open_span.line
                        ),
                    });
                }
                let group = Group {
                    delimiter,
                    stream: TokenStream { trees: std::mem::replace(&mut current, parent) },
                    span: open_span,
                };
                current.push(TokenTree::Group(group));
            }
            RawTok::Tree(tree) => current.push(tree),
            RawTok::Doc { text, inner, span } => {
                // Desugar to `#[doc = "…"]` / `#![doc = "…"]` tokens.
                current.push(TokenTree::Punct(Punct { ch: '#', span }));
                if inner {
                    current.push(TokenTree::Punct(Punct { ch: '!', span }));
                }
                let doc_tokens = vec![
                    TokenTree::Ident(Ident { text: "doc".to_string(), span }),
                    TokenTree::Punct(Punct { ch: '=', span }),
                    TokenTree::Literal(Literal { kind: LitKind::Str, text, span }),
                ];
                current.push(TokenTree::Group(Group {
                    delimiter: Delimiter::Bracket,
                    stream: TokenStream { trees: doc_tokens },
                    span,
                }));
            }
        }
    }
    if let Some((delimiter, span, _)) = stack.pop() {
        return Err(Error {
            line: span.line,
            message: format!("unclosed {delimiter:?} opened here"),
        });
    }
    Ok(TokenStream { trees: current })
}

enum RawTok {
    Open(Delimiter, Span),
    Close(Delimiter, Span),
    Tree(TokenTree),
    Doc { text: String, inner: bool, span: Span },
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn span(&self) -> Span {
        Span { line: self.line }
    }

    fn next_token(&mut self) -> Result<Option<RawTok>, Error> {
        loop {
            let Some(c) = self.peek(0) else { return Ok(None) };
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            if c == '/' && self.peek(1) == Some('/') {
                return match self.line_comment()? {
                    Some(doc) => Ok(Some(doc)),
                    None => continue,
                };
            }
            if c == '/' && self.peek(1) == Some('*') {
                return match self.block_comment()? {
                    Some(doc) => Ok(Some(doc)),
                    None => continue,
                };
            }
            return self.lex_concrete(c).map(Some);
        }
    }

    /// Consumes `//…` to end of line. Returns the doc token for `///` and
    /// `//!` forms (`////…` is a plain comment, matching rustc).
    fn line_comment(&mut self) -> Result<Option<RawTok>, Error> {
        let span = self.span();
        self.bump();
        self.bump();
        let (is_doc, inner) = match (self.peek(0), self.peek(1)) {
            (Some('/'), Some('/')) => (false, false),
            (Some('/'), _) => (true, false),
            (Some('!'), _) => (true, true),
            _ => (false, false),
        };
        if is_doc {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
            text.push(c);
        }
        Ok(is_doc.then(|| RawTok::Doc { text, inner, span }))
    }

    /// Consumes a (nested) `/* … */` comment. Returns the doc token for
    /// `/** … */` and `/*! … */` forms (`/***` and the empty `/**/` are
    /// plain comments, matching rustc).
    fn block_comment(&mut self) -> Result<Option<RawTok>, Error> {
        let span = self.span();
        self.bump();
        self.bump();
        let (is_doc, inner) = match (self.peek(0), self.peek(1)) {
            (Some('*'), Some('*' | '/')) => (false, false),
            (Some('*'), _) => (true, false),
            (Some('!'), _) => (true, true),
            _ => (false, false),
        };
        if is_doc {
            self.bump();
        }
        let mut depth = 1usize;
        let mut text = String::new();
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                }
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                    text.push_str("/*");
                }
                (Some(c), _) => {
                    self.bump();
                    text.push(c);
                }
                (None, _) => {
                    return Err(Error {
                        line: span.line,
                        message: "unterminated block comment".to_string(),
                    });
                }
            }
        }
        Ok(is_doc.then(|| RawTok::Doc { text, inner, span }))
    }

    fn lex_concrete(&mut self, c: char) -> Result<RawTok, Error> {
        let span = self.span();
        match c {
            '(' | '[' | '{' => {
                self.bump();
                Ok(RawTok::Open(delimiter_of(c), span))
            }
            ')' | ']' | '}' => {
                self.bump();
                Ok(RawTok::Close(delimiter_of(c), span))
            }
            '"' => {
                let text = self.string_literal()?;
                Ok(RawTok::Tree(TokenTree::Literal(Literal { kind: LitKind::Str, text, span })))
            }
            '\'' => self.char_or_lifetime(span),
            c if c.is_ascii_digit() => {
                let text = self.number();
                Ok(RawTok::Tree(TokenTree::Literal(Literal { kind: LitKind::Num, text, span })))
            }
            c if is_ident_start(c) => self.ident_or_prefixed_literal(span),
            other => {
                self.bump();
                Ok(RawTok::Tree(TokenTree::Punct(Punct { ch: other, span })))
            }
        }
    }

    /// Consumes a `"…"` literal (opening quote at the cursor), handling
    /// escapes; returns the contents.
    fn string_literal(&mut self) -> Result<String, Error> {
        let start_line = self.line;
        self.bump();
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => return Ok(text),
                Some(c) => text.push(c),
                None => {
                    return Err(Error {
                        line: start_line,
                        message: "unterminated string literal".to_string(),
                    });
                }
            }
        }
    }

    /// Consumes a raw string `r#…#"…"#…#` with `hashes` hashes; the cursor
    /// is on the opening quote. Returns the contents.
    fn raw_string_literal(&mut self, hashes: usize) -> Result<String, Error> {
        let start_line = self.line;
        self.bump();
        let mut text = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(Error {
                    line: start_line,
                    message: "unterminated raw string literal".to_string(),
                });
            };
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                return Ok(text);
            }
            text.push(c);
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, span: Span) -> Result<RawTok, Error> {
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            // `'a'` is a char; `'a` followed by anything else is a lifetime.
            // `''` never occurs in valid Rust.
            Some(c) if is_ident_start(c) => self.peek(2) == Some('\''),
            Some(_) => true,
            None => false,
        };
        if !is_char {
            // Lifetime: emit the quote as punct; the ident lexes next.
            self.bump();
            return Ok(RawTok::Tree(TokenTree::Punct(Punct { ch: '\'', span })));
        }
        self.bump();
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('\\') => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('\'') => {
                    return Ok(RawTok::Tree(TokenTree::Literal(Literal {
                        kind: LitKind::Char,
                        text,
                        span,
                    })))
                }
                Some(c) => text.push(c),
                None => {
                    return Err(Error {
                        line: span.line,
                        message: "unterminated char literal".to_string(),
                    });
                }
            }
        }
    }

    fn number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
                text.push(c);
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                self.bump();
                text.push('.');
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e' | 'E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                self.bump();
                text.push(c);
            } else {
                break;
            }
        }
        text
    }

    /// An identifier, or one of the literal prefixes `r"`, `r#"`, `b"`,
    /// `b'`, `br"`, `c"`, `cr"`, or a raw identifier `r#name`.
    fn ident_or_prefixed_literal(&mut self, span: Span) -> Result<RawTok, Error> {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
                text.push(c);
            } else {
                break;
            }
        }
        let raw_capable = matches!(text.as_str(), "r" | "br" | "cr");
        let str_capable = matches!(text.as_str(), "b" | "c") || raw_capable;
        match self.peek(0) {
            Some('"') if str_capable => {
                let contents =
                    if raw_capable { self.raw_string_literal(0)? } else { self.string_literal()? };
                Ok(RawTok::Tree(TokenTree::Literal(Literal {
                    kind: LitKind::Str,
                    text: contents,
                    span,
                })))
            }
            Some('#') if raw_capable => {
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    let contents = self.raw_string_literal(hashes)?;
                    Ok(RawTok::Tree(TokenTree::Literal(Literal {
                        kind: LitKind::Str,
                        text: contents,
                        span,
                    })))
                } else if text == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier `r#name`: emit the ident without `r#`.
                    self.bump();
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            self.bump();
                            name.push(c);
                        } else {
                            break;
                        }
                    }
                    Ok(RawTok::Tree(TokenTree::Ident(Ident { text: name, span })))
                } else {
                    Ok(RawTok::Tree(TokenTree::Ident(Ident { text, span })))
                }
            }
            // Byte literal `b'x'` / `b'\n'`: reuse the char path.
            Some('\'') if text == "b" => self.char_or_lifetime(span),
            _ => Ok(RawTok::Tree(TokenTree::Ident(Ident { text, span }))),
        }
    }
}

fn delimiter_of(c: char) -> Delimiter {
    match c {
        '(' | ')' => Delimiter::Parenthesis,
        '[' | ']' => Delimiter::Bracket,
        _ => Delimiter::Brace,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let stream = lex_to_stream(src).unwrap();
        let mut out = Vec::new();
        stream.walk(&mut |t| {
            if let Some(i) = t.as_ident() {
                out.push(i.to_string());
            }
        });
        out
    }

    #[test]
    fn block_comments_are_skipped_even_nested() {
        let ids = idents("fn a() { /* x.unwrap() /* nested */ still comment */ b() }");
        assert_eq!(ids, vec!["fn", "a", "b"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let ids = idents(r##"fn a() { let s = r#"x.unwrap() "quoted" "#; }"##);
        assert_eq!(ids, vec!["fn", "a", "let", "s"]);
        let ids = idents(r###"let s = r##"one "# deep"##;"###);
        assert_eq!(ids, vec!["let", "s"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"a".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_including_quote_and_escape() {
        let ids = idents("if c == '\"' { x() } else if c == '\\n' { y() }");
        assert_eq!(ids, vec!["if", "c", "x", "else", "if", "c", "y"]);
    }

    #[test]
    fn doc_comments_become_doc_attributes() {
        let stream = lex_to_stream("/// Paper: Lemma 2\nfn f() {}").unwrap();
        assert!(matches!(stream.trees[0], TokenTree::Punct(Punct { ch: '#', .. })));
        assert!(stream.contains_ident("doc"));
        let mut doc = None;
        stream.walk(&mut |t| {
            if let TokenTree::Literal(l) = t {
                doc = Some(l.text.clone());
            }
        });
        assert_eq!(doc.as_deref(), Some(" Paper: Lemma 2"));
    }

    #[test]
    fn unsafe_without_trailing_space_is_an_ident() {
        // The old line scanner matched the string "unsafe " and missed this.
        let ids = idents("fn f() { unsafe{ danger() } }");
        assert!(ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn unbalanced_delimiters_error_with_line() {
        let err = lex_to_stream("fn f() {\n  (\n}").unwrap_err();
        assert!(err.message.contains("mismatched") || err.message.contains("unclosed"));
    }

    #[test]
    fn raw_identifiers_drop_the_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_and_c_strings_lex_as_literals() {
        assert_eq!(
            idents(r#"let x = b"ab"; let y = c"cd"; let z = br"ef";"#),
            vec!["let", "x", "let", "y", "let", "z"]
        );
    }

    #[test]
    fn numbers_with_suffixes_and_floats() {
        assert_eq!(idents("let x = 1_000u64 + 2.5e-3f64;"), vec!["let", "x"]);
    }
}
