//! The item-level parser: a grouped [`TokenStream`] to [`File`] items.
//!
//! Parses enough structure for the lint pass — functions (with name,
//! visibility, attributes, raw signature tokens, body group), modules
//! (recursing into inline bodies), `impl`/`trait` blocks (associated items
//! parsed with the same machinery), and type declarations. Anything else is
//! preserved as [`Item::Other`] with its tokens, never dropped, so
//! token-walking lints still see inside `use`/`static`/macro items.

use crate::{
    Attribute, Delimiter, Error, File, Item, ItemFn, ItemImpl, ItemMod, ItemOther, ItemStruct,
    ItemTrait, Signature, Span, TokenStream, TokenTree, Visibility,
};

/// Parses the top level of a file.
pub fn parse_items_toplevel(stream: &TokenStream) -> Result<File, Error> {
    let (attrs, items) = parse_items(&stream.trees)?;
    Ok(File { attrs, items })
}

/// Parses a brace-delimited body (file, module, `impl`, or `trait` level).
/// Returns `(inner_attrs, items)`.
fn parse_items(trees: &[TokenTree]) -> Result<(Vec<Attribute>, Vec<Item>), Error> {
    let mut parser = Parser { trees, pos: 0 };
    let mut inner_attrs = Vec::new();
    let mut items = Vec::new();
    while !parser.at_end() {
        let mut attrs = parser.take_attributes(&mut inner_attrs);
        if parser.at_end() {
            // Trailing attributes with no item: keep them visible as Other.
            if !attrs.is_empty() {
                let span = attrs[0].span;
                items.push(Item::Other(ItemOther { attrs, tokens: TokenStream::default(), span }));
            }
            break;
        }
        let vis = parser.take_visibility();
        let item = parser.take_item(std::mem::take(&mut attrs), vis)?;
        items.push(item);
    }
    Ok((inner_attrs, items))
}

struct Parser<'a> {
    trees: &'a [TokenTree],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.trees.len()
    }

    fn peek(&self, ahead: usize) -> Option<&'a TokenTree> {
        self.trees.get(self.pos + ahead)
    }

    fn peek_ident(&self, ahead: usize) -> Option<&'a str> {
        self.peek(ahead).and_then(TokenTree::as_ident)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.trees.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn span_here(&self) -> Span {
        self.peek(0).map_or(Span { line: 0 }, TokenTree::span)
    }

    /// Collects leading `#[…]` (outer) attributes; `#![…]` inner attributes
    /// are appended to `inner` instead.
    fn take_attributes(&mut self, inner: &mut Vec<Attribute>) -> Vec<Attribute> {
        let mut attrs = Vec::new();
        while self.peek(0).and_then(TokenTree::as_punct) == Some('#') {
            let is_inner = self.peek(1).and_then(TokenTree::as_punct) == Some('!');
            let group_at = if is_inner { 2 } else { 1 };
            let Some(TokenTree::Group(g)) = self.peek(group_at) else { break };
            if g.delimiter != Delimiter::Bracket {
                break;
            }
            let path =
                g.stream.trees.first().and_then(TokenTree::as_ident).unwrap_or("").to_string();
            let attr = Attribute { path, tokens: g.stream.clone(), inner: is_inner, span: g.span };
            self.pos += group_at + 1;
            if is_inner {
                inner.push(attr);
            } else {
                attrs.push(attr);
            }
        }
        attrs
    }

    fn take_visibility(&mut self) -> Visibility {
        if self.peek_ident(0) != Some("pub") {
            return Visibility::Inherited;
        }
        self.bump();
        if let Some(TokenTree::Group(g)) = self.peek(0) {
            if g.delimiter == Delimiter::Parenthesis {
                self.bump();
                return Visibility::Restricted;
            }
        }
        Visibility::Public
    }

    fn take_item(&mut self, attrs: Vec<Attribute>, vis: Visibility) -> Result<Item, Error> {
        let span = self.span_here();
        // Function modifiers: `const? async? unsafe? (extern "…"?)? fn`.
        let mut is_const = false;
        let mut is_async = false;
        let mut is_unsafe = false;
        let mut ahead = 0;
        loop {
            match self.peek_ident(ahead) {
                Some("const") if self.peek_ident(ahead + 1).is_some() => {
                    is_const = true;
                    ahead += 1;
                }
                Some("async") => {
                    is_async = true;
                    ahead += 1;
                }
                Some("unsafe") => {
                    is_unsafe = true;
                    ahead += 1;
                }
                Some("extern") => {
                    ahead += 1;
                    if matches!(self.peek(ahead), Some(TokenTree::Literal(_))) {
                        ahead += 1;
                    }
                }
                _ => break,
            }
        }
        if self.peek_ident(ahead) == Some("fn") {
            self.pos += ahead;
            return self.take_fn(attrs, vis, span, is_const, is_unsafe, is_async);
        }
        // Not a function: the modifier scan is abandoned, dispatch on the
        // first token (`unsafe impl`, `unsafe trait`, `const NAME: …`, …).
        let dispatch_at = if self.peek_ident(0) == Some("unsafe") { 1 } else { 0 };
        match self.peek_ident(dispatch_at) {
            Some("mod") => {
                self.pos += dispatch_at;
                self.take_mod(attrs, vis, span)
            }
            Some("impl") => {
                self.pos += dispatch_at;
                self.take_impl(attrs, span, dispatch_at == 1)
            }
            Some("trait") => {
                self.pos += dispatch_at;
                self.take_trait(attrs, vis, span, dispatch_at == 1)
            }
            Some(kw @ ("struct" | "enum" | "union")) => {
                self.pos += dispatch_at;
                self.take_struct(attrs, vis, span, kw)
            }
            Some("use" | "static" | "const" | "type" | "extern" | "macro") => {
                Ok(self.take_other_until_semi(attrs, span))
            }
            _ => Ok(self.take_other_fallback(attrs, span)),
        }
    }

    fn take_fn(
        &mut self,
        attrs: Vec<Attribute>,
        vis: Visibility,
        span: Span,
        is_const: bool,
        is_unsafe: bool,
        is_async: bool,
    ) -> Result<Item, Error> {
        self.bump(); // `fn`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: "expected function name after `fn`".to_string(),
            });
        };
        // Optional generics `<…>`: depth-counted over single-char puncts.
        if self.peek(0).and_then(TokenTree::as_punct) == Some('<') {
            let mut depth = 0usize;
            let mut prev_dash = false;
            while let Some(t) = self.bump() {
                match t.as_punct() {
                    Some('<') => depth += 1,
                    // `->` inside generic bounds (`F: Fn() -> U`) is not a
                    // closing angle bracket.
                    Some('>') if !prev_dash => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                prev_dash = t.as_punct() == Some('-');
            }
        }
        let Some(TokenTree::Group(inputs)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: format!("expected argument list after `fn {}`", name.text),
            });
        };
        // Return type: tokens after `->`, up to `where` / body / `;`.
        let mut output = TokenStream::default();
        if self.peek(0).and_then(TokenTree::as_punct) == Some('-')
            && self.peek(1).and_then(TokenTree::as_punct) == Some('>')
        {
            self.bump();
            self.bump();
            while let Some(t) = self.peek(0) {
                if t.as_punct() == Some(';')
                    || t.as_ident() == Some("where")
                    || matches!(t, TokenTree::Group(g) if g.delimiter == Delimiter::Brace)
                {
                    break;
                }
                output.trees.push(t.clone());
                self.pos += 1;
            }
        }
        // Where clause: skip to body or `;`.
        while let Some(t) = self.peek(0) {
            if t.as_punct() == Some(';')
                || matches!(t, TokenTree::Group(g) if g.delimiter == Delimiter::Brace)
            {
                break;
            }
            self.pos += 1;
        }
        let block = match self.bump() {
            Some(TokenTree::Group(g)) => Some(g.clone()),
            _ => None, // `;` — trait method declaration
        };
        Ok(Item::Fn(ItemFn {
            attrs,
            vis,
            sig: Signature {
                ident: name.clone(),
                inputs: inputs.clone(),
                output,
                is_const,
                is_unsafe,
                is_async,
            },
            block,
            span,
        }))
    }

    fn take_mod(
        &mut self,
        mut attrs: Vec<Attribute>,
        vis: Visibility,
        span: Span,
    ) -> Result<Item, Error> {
        self.bump(); // `mod`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: "expected module name after `mod`".to_string(),
            });
        };
        let content = match self.bump() {
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                let (inner, items) = parse_items(&g.stream.trees)?;
                attrs.extend(inner);
                Some(items)
            }
            _ => None, // `mod name;`
        };
        Ok(Item::Mod(ItemMod { attrs, vis, ident: name.clone(), content, span }))
    }

    fn take_impl(
        &mut self,
        mut attrs: Vec<Attribute>,
        span: Span,
        is_unsafe: bool,
    ) -> Result<Item, Error> {
        self.bump(); // `impl`
        let mut self_tokens = TokenStream::default();
        loop {
            match self.peek(0) {
                Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => break,
                Some(t) => {
                    self_tokens.trees.push(t.clone());
                    self.pos += 1;
                }
                None => {
                    return Err(Error {
                        line: span.line,
                        message: "`impl` block without a body".to_string(),
                    });
                }
            }
        }
        let Some(TokenTree::Group(body)) = self.bump() else {
            return Err(Error { line: span.line, message: "`impl` body vanished".to_string() });
        };
        let (inner, items) = parse_items(&body.stream.trees)?;
        attrs.extend(inner);
        Ok(Item::Impl(ItemImpl { attrs, is_unsafe, self_tokens, items, span }))
    }

    fn take_trait(
        &mut self,
        mut attrs: Vec<Attribute>,
        vis: Visibility,
        span: Span,
        is_unsafe: bool,
    ) -> Result<Item, Error> {
        self.bump(); // `trait`
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: "expected trait name after `trait`".to_string(),
            });
        };
        // Skip generics / supertraits / where clause up to the body.
        while let Some(t) = self.peek(0) {
            if matches!(t, TokenTree::Group(g) if g.delimiter == Delimiter::Brace) {
                break;
            }
            self.pos += 1;
        }
        let Some(TokenTree::Group(body)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: format!("`trait {}` without a body", name.text),
            });
        };
        let (inner, items) = parse_items(&body.stream.trees)?;
        attrs.extend(inner);
        Ok(Item::Trait(ItemTrait { attrs, is_unsafe, vis, ident: name.clone(), items, span }))
    }

    fn take_struct(
        &mut self,
        attrs: Vec<Attribute>,
        vis: Visibility,
        span: Span,
        keyword: &str,
    ) -> Result<Item, Error> {
        self.bump(); // keyword
        let Some(TokenTree::Ident(name)) = self.bump() else {
            return Err(Error {
                line: span.line,
                message: format!("expected type name after `{keyword}`"),
            });
        };
        // Body: everything up to and including the brace group (fields /
        // variants) or the terminating `;` (unit / tuple structs).
        let mut body = TokenStream::default();
        while let Some(t) = self.peek(0) {
            match t {
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                    body.trees.push(t.clone());
                    self.pos += 1;
                    break;
                }
                TokenTree::Punct(p) if p.ch == ';' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    body.trees.push(t.clone());
                    self.pos += 1;
                }
            }
        }
        Ok(Item::Struct(ItemStruct {
            attrs,
            vis,
            keyword: keyword.to_string(),
            ident: name.clone(),
            body,
            span,
        }))
    }

    /// `use` / `static` / `const NAME` / `type` / `extern` / `macro` items:
    /// consume to the terminating `;`, or — for block forms such as
    /// `extern "C" { … }` and `macro_rules! name { … }` — through the final
    /// brace group. Groups are atomic trees, so initializer braces inside a
    /// `static`'s expression never end the item early.
    fn take_other_until_semi(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        let mut tokens = TokenStream::default();
        let mut saw_eq = false;
        while let Some(t) = self.bump() {
            match t {
                TokenTree::Punct(p) if p.ch == ';' => break,
                TokenTree::Punct(p) if p.ch == '=' => {
                    saw_eq = true;
                    tokens.trees.push(t.clone());
                }
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace && !saw_eq => {
                    // Before any `=`, a brace group terminates block items
                    // (`extern { … }`, `macro_rules! m { … }`); after one it
                    // is part of an initializer expression and `;` ends the
                    // item.
                    tokens.trees.push(t.clone());
                    break;
                }
                _ => tokens.trees.push(t.clone()),
            }
        }
        Item::Other(ItemOther { attrs, tokens, span })
    }

    /// Unknown leading token: consume to `;` or through the first brace
    /// group, whichever comes first, so parsing always makes progress.
    fn take_other_fallback(&mut self, attrs: Vec<Attribute>, span: Span) -> Item {
        let mut tokens = TokenStream::default();
        while let Some(t) = self.bump() {
            match t {
                TokenTree::Punct(p) if p.ch == ';' => break,
                TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                    tokens.trees.push(t.clone());
                    break;
                }
                _ => tokens.trees.push(t.clone()),
            }
        }
        Item::Other(ItemOther { attrs, tokens, span })
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_file, Item, Visibility};

    #[test]
    fn parses_functions_with_attrs_vis_and_bodies() {
        let file = parse_file(
            "/// Paper: Lemma 2.\n#[must_use]\npub fn f(x: usize) -> usize { x + 1 }\nfn g() {}",
        )
        .unwrap();
        assert_eq!(file.items.len(), 2);
        let Item::Fn(f) = &file.items[0] else { panic!("expected fn") };
        assert_eq!(f.sig.ident.text, "f");
        assert_eq!(f.vis, Visibility::Public);
        assert_eq!(f.attrs.len(), 2);
        assert_eq!(f.attrs[0].doc_text(), Some(" Paper: Lemma 2."));
        assert_eq!(f.attrs[1].path, "must_use");
        assert!(f.sig.output.contains_ident("usize"));
        assert_eq!(f.span.line, 3);
    }

    #[test]
    fn parses_cfg_test_modules_recursively() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        let file = parse_file(src).unwrap();
        let Item::Mod(m) = &file.items[1] else { panic!("expected mod") };
        assert_eq!(m.ident.text, "tests");
        assert!(m.attrs[0].path == "cfg" && m.attrs[0].contains_ident("test"));
        let items = m.content.as_ref().unwrap();
        let Item::Fn(t) = &items[0] else { panic!("expected fn in mod") };
        assert_eq!(t.attrs[0].path, "test");
    }

    #[test]
    fn parses_impl_blocks_with_associated_fns() {
        let src = "impl<'a> Foo<'a> {\n    pub fn new() -> Foo<'a> { Foo { x: 1 } }\n    fn helper(&self) {}\n}";
        let file = parse_file(src).unwrap();
        let Item::Impl(i) = &file.items[0] else { panic!("expected impl") };
        assert!(i.self_tokens.contains_ident("Foo"));
        assert_eq!(i.items.len(), 2);
        let Item::Fn(new) = &i.items[0] else { panic!("expected fn") };
        assert_eq!(new.sig.ident.text, "new");
        assert_eq!(new.vis, Visibility::Public);
    }

    #[test]
    fn parses_struct_enum_and_keeps_statics_as_other() {
        let src = "#[must_use]\npub struct S { x: usize }\npub enum E { A, B }\nstatic X: S = S { x: 1 };\nuse std::fmt;";
        let file = parse_file(src).unwrap();
        assert_eq!(file.items.len(), 4);
        let Item::Struct(s) = &file.items[0] else { panic!("expected struct") };
        assert_eq!(s.ident.text, "S");
        assert_eq!(s.attrs[0].path, "must_use");
        let Item::Struct(e) = &file.items[1] else { panic!("expected enum") };
        assert_eq!(e.keyword, "enum");
        assert!(matches!(&file.items[2], Item::Other(_)));
        assert!(matches!(&file.items[3], Item::Other(_)));
    }

    #[test]
    fn trait_methods_without_bodies() {
        let src = "pub trait T {\n    fn required(&self) -> usize;\n    fn provided(&self) {}\n}";
        let file = parse_file(src).unwrap();
        let Item::Trait(t) = &file.items[0] else { panic!("expected trait") };
        let Item::Fn(req) = &t.items[0] else { panic!("expected fn") };
        assert!(req.block.is_none());
        let Item::Fn(prov) = &t.items[1] else { panic!("expected fn") };
        assert!(prov.block.is_some());
    }

    #[test]
    fn const_fn_and_generic_fn_with_where_clause() {
        let src = "pub const fn k() -> usize { 1 }\npub fn g<T: Clone>(x: T) -> Vec<T> where T: Send { vec![x] }";
        let file = parse_file(src).unwrap();
        let Item::Fn(k) = &file.items[0] else { panic!("expected fn") };
        assert!(k.sig.is_const);
        let Item::Fn(g) = &file.items[1] else { panic!("expected fn") };
        assert_eq!(g.sig.ident.text, "g");
        assert!(g.sig.output.contains_ident("Vec"));
        assert!(g.block.is_some());
    }

    #[test]
    fn macro_definitions_keep_their_tokens_visible() {
        let src = "macro_rules! bad {\n    () => { x.unwrap() };\n}";
        let file = parse_file(src).unwrap();
        let Item::Other(o) = &file.items[0] else { panic!("expected other") };
        assert!(o.tokens.contains_ident("unwrap"));
    }

    #[test]
    fn inner_attrs_are_separated() {
        let file = parse_file("#![warn(missing_docs)]\n//! Crate docs.\nfn f() {}").unwrap();
        assert_eq!(file.attrs.len(), 2);
        assert!(file.attrs[0].contains_ident("missing_docs"));
        assert_eq!(file.attrs[1].doc_text(), Some(" Crate docs."));
        assert_eq!(file.items.len(), 1);
    }
}
