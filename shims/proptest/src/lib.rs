//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of the proptest API its property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool::weighted`] / [`bool::ANY`],
//! [`Just`], and the [`proptest!`] macro with `#![proptest_config(..)]`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case number; the generator is seeded deterministically from the test path,
//! so failures reproduce exactly), and filter rejections simply resample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// The generator handed to strategies. Deterministic per test.
pub type TestRng = StdRng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic generator for one named test.
///
/// Used by the [`proptest!`] expansion; FNV-1a over the test path keeps
/// different tests on different streams while every run of the same test
/// replays the same cases.
pub fn rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of an associated type.
///
/// `try_sample` returns `None` when a `prop_filter` rejected the draw; the
/// runner resamples until it has the configured number of accepted cases.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`; `reason` labels the filter.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn try_sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.try_sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let outer = self.inner.try_sample(rng)?;
        (self.f)(outer).try_sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_sample(rng).filter(|v| (self.pred)(v))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn try_sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.try_sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng as _;

    /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// A strategy yielding `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn try_sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.try_sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A strategy yielding `true` with the given probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn try_sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool(self.0))
        }
    }

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn try_sample(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool(0.5))
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $args:tt $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name $args $body $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= u64::from(config.cases) * 200 + 10_000,
                    "{}: too many filter rejections ({} attempts for {} cases)",
                    stringify!($name), attempts, config.cases
                );
                // Sample every argument; restart the case on any rejection.
                $(
                    #[allow(unused_parens)]
                    let sampled = $crate::Strategy::try_sample(&($strat), &mut rng);
                    let Some($arg) = sampled else { continue };
                )+
                accepted += 1;
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vec_filter_map_compose() {
        let strat = (1usize..=8).prop_flat_map(|k| {
            let reach = (0..k, 0..k).prop_filter("sum < k", move |(e, f)| e + f < k);
            (Just(k), reach, crate::collection::vec(0usize..=3, k))
                .prop_map(|(k, (e, f), counts)| (k, e, f, counts))
        });
        let mut rng = crate::rng_for("shim::self_test");
        let mut got = 0;
        for _ in 0..10_000 {
            if let Some((k, e, f, counts)) = strat.try_sample(&mut rng) {
                assert!(e + f < k);
                assert_eq!(counts.len(), k);
                got += 1;
            }
        }
        assert!(got > 5_000, "filter rejected too much: {got}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: generated values respect their strategies.
        #[test]
        fn macro_generates_in_range(x in 3usize..10, flag in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert_ne!(v.iter().copied().max().unwrap_or(0), 5);
        }
    }
}
