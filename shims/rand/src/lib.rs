//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships the small slice of the `rand` API it actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic across platforms, which is all the simulations and
//! benchmarks require (they never need cryptographic strength).
//!
//! The numeric streams differ from upstream `rand`; everything in this
//! workspace treats seeds as opaque reproducibility handles, not as a
//! contract on the exact sample sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use core::ops::{Range, RangeInclusive};

/// A source of randomness: the subset of `rand::RngCore` the workspace uses.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Samples uniformly from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as $u).wrapping_sub(low as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low <= high, "gen_range called with empty range");
        low + (high - low) * unit_f64(rng)
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection on the high bits.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the result exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let raw = rng.next_u64();
        let (hi, lo) = widening_mul(raw, bound);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a sample from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface: the subset of `rand::Rng` used here.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. `p` outside `[0, 1]` saturates.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable deterministic generators: the subset of `rand::SeedableRng`
/// used here.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
