//! Offline drop-in subset of the `serde` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal serde replacement built around an owned tree ([`Value`]) instead
//! of upstream's streaming serializer/deserializer pair: [`Serialize`]
//! renders into a [`Value`], [`Deserialize`] reads back out of one, and the
//! companion `serde_json` shim converts [`Value`] to and from JSON text.
//! The `derive` feature provides `#[derive(Serialize, Deserialize)]` for
//! plain structs and enums via the `serde_derive` shim, emitting upstream
//! serde's externally-tagged enum representation so the JSON shape matches
//! what real serde would produce for these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if `self` is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if `self` is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a preformatted message.
    pub fn message(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, context: &str, found: &Value) -> DeError {
        DeError(format!("expected {what} while deserializing {context}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        out.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` back out of a data tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a required field of a derived struct.
pub fn struct_field<'v>(
    entries: &'v [(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {type_name}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::try_from(*self).unwrap_or(u64::MAX))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let raw = match *value {
                    Value::UInt(u) => Ok(u),
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| DeError(format!("negative value for {}", stringify!($t)))),
                    ref other => Err(DeError::expected("integer", stringify!($t), other)),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self as i64);
                if wide < 0 { Value::Int(wide) } else { Value::UInt(wide as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                let raw: i64 = match *value {
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => Ok(i),
                    ref other => Err(DeError::expected("integer", stringify!($t), other)),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<f64, DeError> {
        match *value {
            Value::Float(x) => Ok(x),
            Value::UInt(u) => Ok(u as f64),
            Value::Int(i) => Ok(i as f64),
            ref other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<f32, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Box<T>, DeError> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(usize::from_value(&7usize.to_value()), Ok(7));
        assert_eq!(i32::from_value(&(-5i32).to_value()), Ok(-5));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_string().to_value()), Ok("hi".to_string()));
        assert_eq!(Vec::<u32>::from_value(&vec![1u32, 2].to_value()), Ok(vec![1, 2]));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)), Ok(Some(3)));
    }

    #[test]
    fn type_errors_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        let err = struct_field(&[], "missing", "T").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
