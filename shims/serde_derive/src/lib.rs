//! Offline drop-in subset of `serde_derive`.
//!
//! The build environment has no network access, so `syn`/`quote` are not
//! available; this crate parses the derive input token stream directly. It
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (including private fields),
//! * enums whose variants are unit, single-field tuple, multi-field tuple,
//!   or struct-like,
//!
//! and emits impls of the tree-based `serde` shim traits using upstream
//! serde's externally-tagged enum representation. Generic types and
//! `#[serde(...)]` attributes are rejected with a compile error rather than
//! silently mishandled.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    data: Data,
}

#[derive(Debug)]
enum Data {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the serde shim's `Serialize` for a plain struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.data {
        Data::Struct(fields) => serialize_struct_body(&input.name, fields),
        Data::Enum(variants) => serialize_enum_body(&input.name, variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n",
        name = input.name,
    );
    parse_generated(&code)
}

/// Derives the serde shim's `Deserialize` for a plain struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.data {
        Data::Struct(fields) => deserialize_struct_body(&input.name, fields),
        Data::Enum(variants) => deserialize_enum_body(&input.name, variants),
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n",
        name = input.name,
    );
    parse_generated(&code)
}

fn parse_generated(code: &str) -> TokenStream {
    match code.parse() {
        Ok(ts) => ts,
        Err(err) => panic!("serde_derive shim produced unparseable code: {err}\n{code}"),
    }
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let group = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!(
                    "serde_derive shim: only named-field structs are supported for `{name}`, \
                     got {other:?}"
                ),
            };
            Input { name, data: Data::Struct(parse_named_fields(group.stream())) }
        }
        "enum" => {
            let group = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
            };
            Input { name, data: Data::Enum(parse_variants(group.stream())) }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

type Tokens = core::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`) and a `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, tracking `<...>` depth so commas
/// inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{field}`, got {other:?}"),
        }
        fields.push(field);
        skip_type_until_comma(&mut tokens);
    }
    fields
}

fn skip_type_until_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to the next variant (past discriminants and the comma).
        let mut angle_depth = 0usize;
        while let Some(token) = tokens.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => {
                        tokens.next();
                        break;
                    }
                    _ => {}
                }
            }
            tokens.next();
        }
    }
    variants
}

/// Counts the fields of a tuple variant: top-level commas + 1 (ignoring a
/// trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut fields = 0usize;
    let mut saw_tokens_since_comma = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    fields += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if saw_tokens_since_comma {
        fields += 1;
    }
    fields
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::Value";
const STRING_FROM: &str = "::std::string::String::from";

fn map_expr(entries: &[(String, String)]) -> String {
    if entries.is_empty() {
        return format!("{VALUE}::Map(::std::vec::Vec::<(::std::string::String, {VALUE})>::new())");
    }
    let body: Vec<String> =
        entries.iter().map(|(key, value)| format!("({STRING_FROM}(\"{key}\"), {value})")).collect();
    format!("{VALUE}::Map(::std::vec::Vec::from([{}]))", body.join(", "))
}

fn seq_expr(items: &[String]) -> String {
    if items.is_empty() {
        return format!("{VALUE}::Seq(::std::vec::Vec::<{VALUE}>::new())");
    }
    format!("{VALUE}::Seq(::std::vec::Vec::from([{}]))", items.join(", "))
}

fn serialize_struct_body(_name: &str, fields: &[String]) -> String {
    let entries: Vec<(String, String)> = fields
        .iter()
        .map(|f| (f.clone(), format!("::serde::Serialize::to_value(&self.{f})")))
        .collect();
    map_expr(&entries)
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.kind {
            VariantKind::Unit => {
                format!("{name}::{vname} => {VALUE}::Str({STRING_FROM}(\"{vname}\")),")
            }
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                let payload = if *arity == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    seq_expr(&items)
                };
                format!(
                    "{name}::{vname}({binds}) => {map},",
                    binds = binders.join(", "),
                    map = map_expr(&[(vname.clone(), payload)]),
                )
            }
            VariantKind::Struct(fields) => {
                let entries: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => {map},",
                    binds = fields.join(", "),
                    map = map_expr(&[(vname.clone(), map_expr(&entries))]),
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_struct_body(name: &str, fields: &[String]) -> String {
    let field_inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     ::serde::struct_field(entries, \"{f}\", \"{name}\")?)?,"
            )
        })
        .collect();
    format!(
        "let entries = match value {{\n\
             {VALUE}::Map(entries) => entries,\n\
             other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"map\", \"{name}\", other)),\n\
         }};\n\
         ::std::result::Result::Ok({name} {{\n{fields}\n}})",
        fields = field_inits.join("\n"),
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms
                .push(format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")),
            VariantKind::Tuple(1) => tagged_arms.push(format!(
                "\"{vname}\" => ::std::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
            )),
            VariantKind::Tuple(arity) => {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let items = payload.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\
                                 \"sequence\", \"{name}::{vname}\", payload))?;\n\
                         if items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::message(\
                                 \"wrong tuple arity for {name}::{vname}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                     }}",
                    elems = elems.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let field_inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::struct_field(fields, \"{f}\", \"{name}::{vname}\")?)?,"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "\"{vname}\" => {{\n\
                         let fields = payload.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}::{vname}\", payload))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{field_inits}\n}})\n\
                     }}",
                    field_inits = field_inits.join("\n"),
                ));
            }
        }
    }
    format!(
        "match value {{\n\
             {VALUE}::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::message(\
                     ::std::format!(\"unknown unit variant `{{other}}` of {name}\"))),\n\
             }},\n\
             {VALUE}::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload; // unused when every variant is a unit variant\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::message(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"variant\", \"{name}\", other)),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}
